//! The discrete-event engine itself.
//!
//! # Execution model
//!
//! Time is a [`Tick`] counter. Nodes are *passive* between events: a node
//! only costs work when one of its events fires. The event kinds are
//! wake-ups (scheduled by the node's own behavior), reception resolution
//! (scheduled lazily, once per tick with transmissions), message
//! deliveries (scheduled by resolution, possibly delayed by the latency
//! model), and churn steps. Within a tick events fire in that fixed
//! class order, with insertion order breaking ties — the total ordering
//! that makes runs bit-reproducible from a seed.
//!
//! Transmissions within one tick contend exactly as slot-synchronous
//! `decay-netsim` slots do: a listener captures the strongest incoming
//! signal iff its SINR against the other transmissions (plus noise)
//! clears `β`. The difference is cost: a tick costs `O(active)` work, not
//! `O(n)`, and the decay matrix behind it may be lazy.

use std::cmp::Ordering as CmpOrdering;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;
use std::sync::{Arc, OnceLock};

use decay_core::telemetry::{Counter, Counters, Ring, SpanEvent, Timer};
use decay_core::NodeId;
use decay_netsim::{FaultPlan, ReceptionModel};
use decay_sinr::SinrParams;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::backend::DecayBackend;
use crate::codec::{Codec, CodecError};
use crate::event::{Event, QueuedEvent, Tick};
use crate::rng::EngineRng;
use crate::shard::ShardPool;

/// Reserved RNG stream ids; per-node streams start after these.
const STREAM_CHURN: u64 = 0;
const STREAM_FADING: u64 = 1;
const STREAM_JITTER: u64 = 2;
const STREAM_JAM: u64 = 3;
const STREAM_NODE_BASE: u64 = 4;

/// A node's radio mode between events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeMode {
    /// Radio on: the node is a reception candidate.
    Listening,
    /// Radio off: transmissions never reach this node.
    Sleeping,
    /// The node has left (churn); it neither acts nor receives until it
    /// rejoins.
    Down,
}

/// What a behavior asked the engine to do, buffered during a callback and
/// applied when the callback returns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum Command {
    Transmit { power: f64, message: u64 },
    Listen,
    Sleep,
    WakeAt { tick: Tick },
}

/// The engine-side view a behavior gets during any callback.
///
/// All effects are *commands*: they buffer inside the context and the
/// engine applies them after the callback returns, so behaviors can never
/// observe (or corrupt) mid-event engine state.
pub struct NodeCtx<'a> {
    /// This node's id.
    pub node: NodeId,
    /// Total number of nodes (alive or not).
    pub nodes: usize,
    /// The current tick.
    pub now: Tick,
    /// This node's private serializable RNG stream.
    pub rng: &'a mut EngineRng,
    commands: &'a mut Vec<Command>,
}

impl NodeCtx<'_> {
    /// Transmits `message` at `power` in the current tick. The node still
    /// cannot receive during a tick in which it transmits.
    ///
    /// # Panics
    ///
    /// Panics unless `power` is positive and finite.
    pub fn transmit(&mut self, power: f64, message: u64) {
        assert!(
            power.is_finite() && power > 0.0,
            "node {} transmitted with non-positive power",
            self.node
        );
        self.commands.push(Command::Transmit { power, message });
    }

    /// Turns the radio on: the node becomes a standing reception
    /// candidate until it sleeps or goes down. Unlike the slot simulator
    /// there is no per-slot listen decision — listening is a mode, which
    /// is what lets idle listeners cost nothing.
    pub fn listen(&mut self) {
        self.commands.push(Command::Listen);
    }

    /// Turns the radio off.
    pub fn sleep(&mut self) {
        self.commands.push(Command::Sleep);
    }

    /// Schedules a wake-up at the absolute tick `tick` (`≥ now`).
    ///
    /// # Panics
    ///
    /// Panics if `tick` is in the past.
    pub fn wake_at(&mut self, tick: Tick) {
        assert!(tick >= self.now, "cannot schedule a wake in the past");
        self.commands.push(Command::WakeAt { tick });
    }

    /// Schedules a wake-up `dt` ticks from now.
    pub fn wake_in(&mut self, dt: Tick) {
        self.commands.push(Command::WakeAt {
            tick: self.now + dt,
        });
    }
}

impl fmt::Debug for NodeCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeCtx")
            .field("node", &self.node)
            .field("nodes", &self.nodes)
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

/// A node's protocol logic in the event-driven model.
///
/// Behaviors schedule their own wake-ups; a node with nothing scheduled
/// is free. For running unmodified slot-synchronous
/// [`decay_netsim::NodeBehavior`] protocols, see
/// [`crate::SlotAdapter`].
pub trait EventBehavior {
    /// Called once when the node enters the simulation: at tick 0 for the
    /// initial population, and again (with state preserved) each time the
    /// node rejoins after churn. Typical implementations call
    /// [`NodeCtx::listen`] and schedule a first wake.
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>);

    /// Called at a wake-up the behavior scheduled.
    fn on_wake(&mut self, ctx: &mut NodeCtx<'_>) {
        let _ = ctx;
    }

    /// Called when a message is delivered to this node. `power` is the
    /// received signal power (transmit power over decay, after fading).
    fn on_receive(&mut self, ctx: &mut NodeCtx<'_>, from: NodeId, message: u64, power: f64) {
        let _ = (ctx, from, message, power);
    }

    /// Called at resolution time for a tick in which this node
    /// transmitted, with the listeners that captured the transmission
    /// (deliveries are *scheduled* for them; latency may still delay, and
    /// churn may still drop, the actual arrival). An acknowledgment-style
    /// oracle, as in the slot simulator.
    fn on_transmit_result(&mut self, ctx: &mut NodeCtx<'_>, receivers: &[NodeId]) {
        let _ = (ctx, receivers);
    }
}

/// Node churn: the engine flips at most one node per churn step.
///
/// Every `interval` ticks one node is drawn uniformly; if it is up it
/// leaves with probability `leave_prob`, if it is down it rejoins with
/// probability `join_prob`. A rejoining node keeps its behavior state
/// (crash-recovery semantics, matching [`decay_netsim::FaultPlan`]) but
/// gets a fresh incarnation: wake-ups and deliveries scheduled for its
/// previous life are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Ticks between churn steps (≥ 1).
    pub interval: Tick,
    /// Probability that the drawn node leaves, when up.
    pub leave_prob: f64,
    /// Probability that the drawn node rejoins, when down.
    pub join_prob: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            interval: 1,
            leave_prob: 0.5,
            join_prob: 0.5,
        }
    }
}

/// Latency applied to each scheduled delivery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LatencyModel {
    /// Deliveries arrive in the tick they were resolved (slot semantics).
    #[default]
    Immediate,
    /// Every delivery is delayed by a fixed number of ticks.
    Fixed {
        /// The delay in ticks.
        ticks: Tick,
    },
    /// Deliveries are delayed by `base` plus a uniform draw from
    /// `[0, jitter]` ticks (drawn per delivery from the jitter stream).
    Jittered {
        /// Minimum delay in ticks.
        base: Tick,
        /// Maximum extra delay in ticks.
        jitter: Tick,
    },
}

/// When the jammer blankets the channel, killing every reception in the
/// affected tick. The schedule kinds mirror
/// `decay_distributed::adversarial::JammingModel` so adversarial
/// experiments port directly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum JamSchedule {
    /// No jamming.
    #[default]
    None,
    /// Every `period`-th tick (ticks ≡ 0 mod `period`) is jammed.
    Periodic {
        /// The period in ticks (≥ 1).
        period: Tick,
    },
    /// Each tick with transmissions is jammed independently with
    /// probability `prob`.
    Random {
        /// Per-tick jamming probability.
        prob: f64,
    },
}

/// Engine configuration: physics, dynamics, and instrumentation.
///
/// # Codec / equality split
///
/// [`threads`](Self::threads) is an *execution* knob, not a
/// trace-defining one: any thread count produces bit-identical traces
/// (see [`Engine`]'s determinism contract), so — exactly like
/// [`EngineStats::queue_high_water`] — it is excluded from the
/// checkpoint [`Codec`] (format v4 stays frozen; restored engines
/// default to 1 and the caller re-applies its preference via
/// [`Engine::set_threads`]) **and** from `PartialEq` (two configs that
/// differ only in thread count describe the same run).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Decay beyond which a signal is treated as unreceivable. `None`
    /// considers every node a candidate (`O(n)` per transmission —
    /// correct but slow at scale). Set it to the decay at which received
    /// power drops below any detectable level for your powers and noise.
    pub reach_decay: Option<f64>,
    /// Top-k affectance pruning: each listener's SINR denominator keeps
    /// only its `k` strongest concurrent signals; weaker interferers are
    /// dropped. `None` sums all concurrent transmissions (exact).
    pub top_k: Option<usize>,
    /// Reception model, shared with the slot simulator.
    pub reception: ReceptionModel,
    /// Delivery latency model.
    pub latency: LatencyModel,
    /// Node churn, if any.
    pub churn: Option<ChurnConfig>,
    /// Jamming schedule.
    pub jamming: JamSchedule,
    /// Scheduled per-node outages, reusing the slot simulator's plan
    /// type; ticks index slots. A node inside an outage window neither
    /// wakes nor receives; pending wakes resume at the window's end.
    pub faults: FaultPlan,
    /// Whether to record the full delivery trace (the rolling
    /// [`Engine::trace_hash`] is always maintained).
    pub record_trace: bool,
    /// Resolution lanes: `1` (the default) resolves SINR serially; `N`
    /// splits each resolution round across `N` spatial shards backed by
    /// a persistent worker pool. Purely an execution knob — traces,
    /// digests, and checkpoints are bit-identical at every value (see
    /// the struct docs for why it sits outside the codec and equality).
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            reach_decay: None,
            top_k: None,
            reception: ReceptionModel::Threshold,
            latency: LatencyModel::Immediate,
            churn: None,
            jamming: JamSchedule::None,
            faults: FaultPlan::none(),
            record_trace: false,
            threads: 1,
        }
    }
}

impl PartialEq for EngineConfig {
    fn eq(&self, other: &Self) -> bool {
        // `threads` is deliberately ignored — see struct docs.
        self.reach_decay == other.reach_decay
            && self.top_k == other.top_k
            && self.reception == other.reception
            && self.latency == other.latency
            && self.churn == other.churn
            && self.jamming == other.jamming
            && self.faults == other.faults
            && self.record_trace == other.record_trace
    }
}

impl EngineConfig {
    fn validate(&self) -> Result<(), EngineError> {
        let bad = |reason: &str| {
            Err(EngineError::InvalidConfig {
                reason: reason.to_string(),
            })
        };
        if let Some(r) = self.reach_decay {
            if !(r.is_finite() && r > 0.0) {
                return bad("reach_decay must be positive and finite");
            }
        }
        if self.top_k == Some(0) {
            return bad("top_k must keep at least one signal");
        }
        if self.threads == 0 {
            return bad("threads must be at least 1");
        }
        if let Some(churn) = &self.churn {
            if churn.interval == 0 {
                return bad("churn interval must be at least one tick");
            }
            if !(0.0..=1.0).contains(&churn.leave_prob) || !(0.0..=1.0).contains(&churn.join_prob) {
                return bad("churn probabilities must be in [0, 1]");
            }
        }
        match self.jamming {
            JamSchedule::Periodic { period: 0 } => {
                return bad("jamming period must be at least one tick");
            }
            JamSchedule::Random { prob } if !(0.0..=1.0).contains(&prob) => {
                return bad("jamming probability must be in [0, 1]");
            }
            _ => {}
        }
        Ok(())
    }
}

/// One recorded delivery (when [`EngineConfig::record_trace`] is on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveryRecord {
    /// Tick the message arrived (resolution tick plus latency).
    pub tick: Tick,
    /// Tick the transmission was resolved; `tick - sent` is the delivery
    /// latency imposed by the [`LatencyModel`].
    pub sent: Tick,
    /// The transmitter.
    pub from: NodeId,
    /// The receiver.
    pub to: NodeId,
    /// The payload.
    pub message: u64,
}

impl DeliveryRecord {
    /// Ticks this delivery spent in flight.
    pub fn latency(&self) -> Tick {
        self.tick - self.sent
    }
}

/// Cumulative counters over a run.
///
/// # Codec / equality split
///
/// [`queue_high_water`](Self::queue_high_water) is *display-only*
/// telemetry: it is excluded from the checkpoint [`Codec`] (so format
/// v4 and the pinned golden digests stay byte-stable) **and** from
/// `PartialEq` (so digests compare equal across resume splits, where a
/// restored engine rebuilds its queue and restarts the high-water mark
/// from the restore point). Every trace-defining counter participates
/// in both.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct EngineStats {
    /// Events dispatched.
    pub events: u64,
    /// Wake-ups delivered to behaviors.
    pub wakes: u64,
    /// Transmissions attempted.
    pub transmissions: u64,
    /// Messages delivered (callback fired).
    pub deliveries: u64,
    /// Scheduled deliveries dropped in flight (receiver down, asleep, or
    /// reincarnated before arrival).
    pub dropped_deliveries: u64,
    /// Ticks with transmissions that the jammer blanked.
    pub jammed_ticks: u64,
    /// Churn departures.
    pub churn_leaves: u64,
    /// Churn rejoins.
    pub churn_joins: u64,
    /// Deepest the event queue has been (display-only; see the struct
    /// docs for why it is outside the codec and equality).
    pub queue_high_water: u64,
}

impl PartialEq for EngineStats {
    fn eq(&self, other: &Self) -> bool {
        // `queue_high_water` is deliberately ignored — see struct docs.
        self.events == other.events
            && self.wakes == other.wakes
            && self.transmissions == other.transmissions
            && self.deliveries == other.deliveries
            && self.dropped_deliveries == other.dropped_deliveries
            && self.jammed_ticks == other.jammed_ticks
            && self.churn_leaves == other.churn_leaves
            && self.churn_joins == other.churn_joins
    }
}

impl Eq for EngineStats {}

/// Errors constructing or restoring an engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Behavior count does not match the backend's node count.
    BehaviorCountMismatch {
        /// Nodes in the backend.
        nodes: usize,
        /// Behaviors supplied.
        behaviors: usize,
    },
    /// A configuration value is out of range.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// The backend supplied to [`Engine::restore`] declares a different
    /// channel configuration than the one the checkpoint was taken under
    /// (see [`DecayBackend::channel_signature`]).
    ChannelMismatch {
        /// The signature recorded in the checkpoint.
        expected: u64,
        /// The signature of the supplied backend.
        found: u64,
    },
    /// The controller supplied to [`Engine::restore_with_controller`]
    /// declares a different signature than the one the checkpoint was
    /// taken under (see
    /// [`crate::probe::Controller::signature`]) — resuming under a
    /// different controller would silently change the trace.
    ControllerMismatch {
        /// The signature recorded in the checkpoint.
        expected: u64,
        /// The signature of the supplied controller.
        found: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BehaviorCountMismatch { nodes, behaviors } => write!(
                f,
                "expected {nodes} behaviors for {nodes} nodes, got {behaviors}"
            ),
            EngineError::InvalidConfig { reason } => write!(f, "invalid engine config: {reason}"),
            EngineError::ChannelMismatch { expected, found } => write!(
                f,
                "checkpoint was taken under channel signature {expected:#x}, \
                 but the supplied backend declares {found:#x}"
            ),
            EngineError::ControllerMismatch { expected, found } => write!(
                f,
                "checkpoint was taken under controller signature {expected:#x}, \
                 but the supplied controller declares {found:#x}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// A complete, serializable snapshot of engine state (everything except
/// the backend, which is re-supplied on [`Engine::restore`] — backends
/// are deterministic pure functions of node pairs, so they carry no run
/// state).
///
/// Restoring a checkpoint and continuing produces a *bit-identical*
/// trace to the uninterrupted run: the event queue, every RNG stream's
/// mid-state, node modes and incarnations, behavior state, and the
/// rolling trace hash are all captured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(bound(
    serialize = "B: Serialize",
    deserialize = "B: serde::de::DeserializeOwned"
))]
pub struct Checkpoint<B> {
    /// Snapshot format version.
    pub version: u32,
    /// The channel signature of the backend the snapshot was taken over
    /// (0 for static backends); [`Engine::restore`] verifies it.
    channel: u64,
    /// The signature of the [`crate::probe::Controller`] steering the
    /// run (0 when none); [`Engine::restore_with_controller`] verifies
    /// it — controller identity is part of the trace-defining
    /// configuration, exactly like the channel.
    controller: u64,
    now: Tick,
    seq: u64,
    queue: Vec<QueuedEvent>,
    pending_tx: Vec<(NodeId, f64, u64)>,
    resolve_scheduled: bool,
    modes: Vec<NodeMode>,
    incarnations: Vec<u32>,
    rngs: Vec<EngineRng>,
    churn_rng: EngineRng,
    fading_rng: EngineRng,
    jitter_rng: EngineRng,
    jam_rng: EngineRng,
    stats: EngineStats,
    trace_hash: u64,
    trace: Vec<DeliveryRecord>,
    behaviors: Vec<B>,
    params: SinrParams,
    config: EngineConfig,
}

/// Format history: v1 had no `sent` tick in deliveries, v2 added it,
/// v3 added the channel signature (temporal backends), v4 added the
/// controller signature (probe/controller API).
const CHECKPOINT_VERSION: u32 = 4;

/// Magic bytes opening a serialized checkpoint.
const CHECKPOINT_MAGIC: u32 = 0xDECA_E001;

impl Codec for NodeMode {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            NodeMode::Listening => 0,
            NodeMode::Sleeping => 1,
            NodeMode::Down => 2,
        });
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(input)? {
            0 => Ok(NodeMode::Listening),
            1 => Ok(NodeMode::Sleeping),
            2 => Ok(NodeMode::Down),
            tag => Err(CodecError::InvalidTag {
                tag,
                ty: "NodeMode",
            }),
        }
    }
}

impl Codec for ChurnConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.interval.encode(out);
        self.leave_prob.encode(out);
        self.join_prob.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(ChurnConfig {
            interval: Tick::decode(input)?,
            leave_prob: f64::decode(input)?,
            join_prob: f64::decode(input)?,
        })
    }
}

impl Codec for LatencyModel {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            LatencyModel::Immediate => out.push(0),
            LatencyModel::Fixed { ticks } => {
                out.push(1);
                ticks.encode(out);
            }
            LatencyModel::Jittered { base, jitter } => {
                out.push(2);
                base.encode(out);
                jitter.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(input)? {
            0 => Ok(LatencyModel::Immediate),
            1 => Ok(LatencyModel::Fixed {
                ticks: Tick::decode(input)?,
            }),
            2 => Ok(LatencyModel::Jittered {
                base: Tick::decode(input)?,
                jitter: Tick::decode(input)?,
            }),
            tag => Err(CodecError::InvalidTag {
                tag,
                ty: "LatencyModel",
            }),
        }
    }
}

impl Codec for JamSchedule {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            JamSchedule::None => out.push(0),
            JamSchedule::Periodic { period } => {
                out.push(1);
                period.encode(out);
            }
            JamSchedule::Random { prob } => {
                out.push(2);
                prob.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(input)? {
            0 => Ok(JamSchedule::None),
            1 => Ok(JamSchedule::Periodic {
                period: Tick::decode(input)?,
            }),
            2 => Ok(JamSchedule::Random {
                prob: f64::decode(input)?,
            }),
            tag => Err(CodecError::InvalidTag {
                tag,
                ty: "JamSchedule",
            }),
        }
    }
}

impl Codec for EngineConfig {
    // `threads` stays out of the wire format: checkpoint format v4
    // encodes exactly the trace-defining knobs (see the struct docs).
    // Decode leaves it at 1; callers re-apply their preference through
    // `Engine::set_threads` after a restore.
    fn encode(&self, out: &mut Vec<u8>) {
        self.reach_decay.encode(out);
        self.top_k.encode(out);
        self.reception.encode(out);
        self.latency.encode(out);
        self.churn.encode(out);
        self.jamming.encode(out);
        self.faults.encode(out);
        self.record_trace.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(EngineConfig {
            reach_decay: Option::<f64>::decode(input)?,
            top_k: Option::<usize>::decode(input)?,
            reception: Codec::decode(input)?,
            latency: LatencyModel::decode(input)?,
            churn: Option::<ChurnConfig>::decode(input)?,
            jamming: JamSchedule::decode(input)?,
            faults: Codec::decode(input)?,
            record_trace: bool::decode(input)?,
            threads: 1,
        })
    }
}

impl Codec for DeliveryRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tick.encode(out);
        self.sent.encode(out);
        self.from.encode(out);
        self.to.encode(out);
        self.message.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(DeliveryRecord {
            tick: Tick::decode(input)?,
            sent: Tick::decode(input)?,
            from: Codec::decode(input)?,
            to: Codec::decode(input)?,
            message: u64::decode(input)?,
        })
    }
}

impl Codec for EngineStats {
    // `queue_high_water` stays out of the wire format: checkpoint
    // format v4 encodes exactly these eight trace-defining counters
    // (see the struct docs). Decode leaves it at zero; `restore`
    // re-seeds it from the rebuilt queue.
    fn encode(&self, out: &mut Vec<u8>) {
        for field in [
            self.events,
            self.wakes,
            self.transmissions,
            self.deliveries,
            self.dropped_deliveries,
            self.jammed_ticks,
            self.churn_leaves,
            self.churn_joins,
        ] {
            field.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(EngineStats {
            events: u64::decode(input)?,
            wakes: u64::decode(input)?,
            transmissions: u64::decode(input)?,
            deliveries: u64::decode(input)?,
            dropped_deliveries: u64::decode(input)?,
            jammed_ticks: u64::decode(input)?,
            churn_leaves: u64::decode(input)?,
            churn_joins: u64::decode(input)?,
            queue_high_water: 0,
        })
    }
}

impl<B: Codec> Codec for Checkpoint<B> {
    fn encode(&self, out: &mut Vec<u8>) {
        CHECKPOINT_MAGIC.encode(out);
        self.version.encode(out);
        self.channel.encode(out);
        self.controller.encode(out);
        self.now.encode(out);
        self.seq.encode(out);
        self.queue.encode(out);
        self.pending_tx.encode(out);
        self.resolve_scheduled.encode(out);
        self.modes.encode(out);
        self.incarnations.encode(out);
        self.rngs.encode(out);
        self.churn_rng.encode(out);
        self.fading_rng.encode(out);
        self.jitter_rng.encode(out);
        self.jam_rng.encode(out);
        self.stats.encode(out);
        self.trace_hash.encode(out);
        self.trace.encode(out);
        self.behaviors.encode(out);
        self.params.encode(out);
        self.config.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        if u32::decode(input)? != CHECKPOINT_MAGIC {
            return Err(CodecError::Invalid("checkpoint magic"));
        }
        let version = u32::decode(input)?;
        if version != CHECKPOINT_VERSION {
            return Err(CodecError::Invalid("checkpoint version"));
        }
        Ok(Checkpoint {
            version,
            channel: u64::decode(input)?,
            controller: u64::decode(input)?,
            now: Tick::decode(input)?,
            seq: u64::decode(input)?,
            queue: Codec::decode(input)?,
            pending_tx: Codec::decode(input)?,
            resolve_scheduled: bool::decode(input)?,
            modes: Codec::decode(input)?,
            incarnations: Vec::<u32>::decode(input)?,
            rngs: Codec::decode(input)?,
            churn_rng: Codec::decode(input)?,
            fading_rng: Codec::decode(input)?,
            jitter_rng: Codec::decode(input)?,
            jam_rng: Codec::decode(input)?,
            stats: Codec::decode(input)?,
            trace_hash: u64::decode(input)?,
            trace: Codec::decode(input)?,
            behaviors: Codec::decode(input)?,
            params: Codec::decode(input)?,
            config: Codec::decode(input)?,
        })
    }
}

impl<B> Checkpoint<B> {
    /// The channel signature recorded when the snapshot was taken (0 for
    /// static backends).
    pub fn channel_signature(&self) -> u64 {
        self.channel
    }

    /// The controller signature recorded when the snapshot was taken (0
    /// when no controller was steering the run).
    pub fn controller_signature(&self) -> u64 {
        self.controller
    }
}

impl<B: Codec> Checkpoint<B> {
    /// Serializes the checkpoint to bytes (the offline serde stand-in
    /// cannot; this hand-rolled codec can — see [`crate::codec`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        crate::codec::to_bytes(self)
    }

    /// Deserializes a checkpoint from bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated, corrupt, or
    /// version-mismatched input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        crate::codec::from_bytes(bytes)
    }
}

/// The deterministic discrete-event simulation engine.
///
/// See the [module docs](self) for the execution model and the crate
/// docs for a quickstart.
pub struct Engine<B> {
    backend: Box<dyn DecayBackend>,
    behaviors: Vec<B>,
    params: SinrParams,
    config: EngineConfig,
    now: Tick,
    seq: u64,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    /// Transmissions of the current tick, awaiting resolution.
    pending_tx: Vec<(NodeId, f64, u64)>,
    resolve_scheduled: bool,
    modes: Vec<NodeMode>,
    incarnations: Vec<u32>,
    rngs: Vec<EngineRng>,
    churn_rng: EngineRng,
    fading_rng: EngineRng,
    jitter_rng: EngineRng,
    jam_rng: EngineRng,
    stats: EngineStats,
    trace_hash: u64,
    trace: Vec<DeliveryRecord>,
    /// Signature of the controller steering this run (0 = none);
    /// recorded into checkpoints.
    controller: u64,
    /// Scratch command buffer, reused across callbacks.
    scratch: Vec<Command>,
    /// Hot-path telemetry sink (always-on relaxed counters; strictly
    /// observational, never checkpointed — see [`crate::telemetry`]).
    telemetry: Arc<Counters>,
    /// Flight-recorder event ring (off by default; see
    /// [`Self::enable_event_log`]). Runtime state, not configuration:
    /// deliberately outside [`EngineConfig`] so checkpoint format v4
    /// is untouched.
    event_log: Option<Ring<crate::telemetry::EventRecord>>,
    /// The persistent shard worker pool, spun up lazily on the first
    /// parallel resolution round (`config.threads > 1`) so serial
    /// engines never spawn a thread. Runtime state, never checkpointed.
    pool: Option<ShardPool>,
}

impl<B> fmt::Debug for Engine<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("nodes", &self.modes.len())
            .field("now", &self.now)
            .field("queued", &self.queue.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// Compile-time `Send` audit: an engine is one self-contained unit of
/// work that a serving layer parks, resumes, and migrates across worker
/// threads, so `Engine<B>` must be `Send` whenever its behaviors are.
/// If a field ever regresses (an `Rc`, a non-`Send` trait object, a
/// thread-pinned cache), this stops compiling.
#[allow(dead_code)]
fn _assert_engine_is_send<B: Send>() {
    fn assert_send<T: Send>() {}
    assert_send::<Engine<B>>();
    assert_send::<Checkpoint<B>>();
}

/// The immutable per-tick state every resolution lane reads: the
/// tick's transmissions, the radio modes, the fault plan, and the SINR
/// constants. Built once per resolution round from field borrows, so
/// shards share it without touching the engine.
struct ResolveView<'a> {
    txs: &'a [(NodeId, f64, u64)],
    modes: &'a [NodeMode],
    faults: &'a FaultPlan,
    // decay-lint: allow(hash-iteration) — lookup-only: shards only call
    // `.contains`; nothing ever iterates the set.
    transmitting: &'a HashSet<NodeId>,
    now: Tick,
    reception: ReceptionModel,
    top_k: Option<usize>,
    noise: f64,
    beta: f64,
}

impl ResolveView<'_> {
    /// Whether listener `v`'s whole candidate group is skipped this
    /// tick. One predicate shared by the fade pass and the shard
    /// resolvers — the two walks must agree on which groups consume
    /// fading draws, or the Rayleigh stream would de-synchronize.
    fn group_skipped(&self, v: NodeId) -> bool {
        self.modes[v.index()] != NodeMode::Listening
            || fault_until_in(self.faults, v, self.now).is_some()
            || self.transmitting.contains(&v)
    }
}

/// One shard's resolution output, merged on the main thread in fixed
/// shard order.
#[derive(Default)]
struct ShardOut {
    /// Won receptions as `(listener, tx index, received power)`, in
    /// ascending listener order within the shard.
    deliveries: Vec<(NodeId, usize, f64)>,
    /// Backend `decay_at` evaluations this shard issued.
    decay_calls: u64,
}

/// The (listener, transmitter-index) pairs whose listener falls in
/// `[lo, hi)`, sorted by (listener, tx order). Shards cover contiguous
/// listener ranges, so concatenating their pair lists in shard order
/// reproduces the serial path's single globally sorted list — the
/// ordering the whole determinism contract hangs off.
fn collect_shard_pairs(recv: &[Vec<NodeId>], lo: usize, hi: usize) -> Vec<(NodeId, usize)> {
    let mut pairs = Vec::new();
    for (k, list) in recv.iter().enumerate() {
        for &v in list {
            if (lo..hi).contains(&v.index()) {
                pairs.push((v, k));
            }
        }
    }
    pairs.sort_unstable_by_key(|&(v, k)| (v.index(), k));
    pairs
}

/// Resolves one shard's pair list under SINR. `fades` holds this
/// shard's pre-drawn Rayleigh fades (empty under `Threshold`), one per
/// non-skipped pair in group order — drawn ahead of time on the main
/// thread so the fading stream stays a single serial sequence at any
/// thread count.
fn resolve_shard(
    view: &ResolveView<'_>,
    backend: &dyn DecayBackend,
    pairs: &[(NodeId, usize)],
    fades: &[f64],
) -> ShardOut {
    let mut out = ShardOut::default();
    let mut fade_cursor = 0;
    let mut i = 0;
    while i < pairs.len() {
        let v = pairs[i].0;
        let mut end = i;
        while end < pairs.len() && pairs[end].0 == v {
            end += 1;
        }
        let group = &pairs[i..end];
        i = end;
        if view.group_skipped(v) {
            continue;
        }
        // Received power from each in-reach concurrent transmitter
        // (out-of-reach interference is below the reach cutoff by
        // construction).
        let mut rx: Vec<(usize, f64)> = Vec::with_capacity(group.len());
        out.decay_calls += group.len() as u64;
        for &(_, k) in group {
            let (t, power, _) = view.txs[k];
            let fade = match view.reception {
                ReceptionModel::Threshold => 1.0,
                ReceptionModel::Rayleigh => {
                    let f = fades[fade_cursor];
                    fade_cursor += 1;
                    f
                }
            };
            rx.push((k, fade * power / backend.decay_at(view.now, t, v)));
        }
        // Top-k affectance pruning: keep only the k strongest signals
        // in the SINR denominator. Stable sort keeps the earliest
        // transmitter first among ties.
        if let Some(k) = view.top_k {
            if rx.len() > k {
                rx.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(CmpOrdering::Equal));
                rx.truncate(k);
            }
        }
        // First strict maximum wins ties, as in the slot simulator.
        let (mut best_k, mut best_p) = rx[0];
        let mut total = 0.0;
        for &(k, p) in &rx {
            total += p;
            if p > best_p {
                best_k = k;
                best_p = p;
            }
        }
        let interference = total - best_p + view.noise;
        let sinr = if interference > 0.0 {
            best_p / interference
        } else {
            f64::INFINITY
        };
        if sinr >= view.beta * (1.0 - 1e-12) {
            out.deliveries.push((v, best_k, best_p));
        }
    }
    out
}

/// [`Engine::fault_until`] as a free function over the plan, so shard
/// workers (which only hold field borrows, never `&self`) can evaluate
/// the identical predicate.
fn fault_until_in(faults: &FaultPlan, node: NodeId, tick: Tick) -> Option<Tick> {
    let slot = usize::try_from(tick).unwrap_or(usize::MAX);
    faults
        .outages()
        .iter()
        .filter(|o| o.node == node && o.covers(slot))
        .map(|o| {
            if o.until_slot == usize::MAX {
                Tick::MAX
            } else {
                o.until_slot as Tick
            }
        })
        .max()
}

/// FNV-1a over one delivery tuple, folded into the rolling hash.
fn fold_delivery(hash: u64, tick: Tick, sent: Tick, from: NodeId, to: NodeId, message: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = hash;
    for word in [tick, sent, from.index() as u64, to.index() as u64, message] {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

impl<B: EventBehavior> Engine<B> {
    /// Creates an engine; `behaviors[i]` drives node `i`. Every node
    /// starts up (mode [`NodeMode::Sleeping`] until its `on_start` says
    /// otherwise); `on_start` runs immediately, at tick 0.
    ///
    /// # Errors
    ///
    /// Returns an error if the behavior count does not match the backend
    /// or the configuration is degenerate.
    pub fn new(
        backend: impl DecayBackend + 'static,
        behaviors: Vec<B>,
        params: SinrParams,
        config: EngineConfig,
        seed: u64,
    ) -> Result<Self, EngineError> {
        config.validate()?;
        let n = backend.len();
        if behaviors.len() != n {
            return Err(EngineError::BehaviorCountMismatch {
                nodes: n,
                behaviors: behaviors.len(),
            });
        }
        let mut engine = Engine {
            backend: Box::new(backend),
            behaviors,
            params,
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            pending_tx: Vec::new(),
            resolve_scheduled: false,
            modes: vec![NodeMode::Sleeping; n],
            incarnations: vec![0; n],
            rngs: (0..n)
                .map(|i| EngineRng::for_stream(seed, STREAM_NODE_BASE + i as u64))
                .collect(),
            churn_rng: EngineRng::for_stream(seed, STREAM_CHURN),
            fading_rng: EngineRng::for_stream(seed, STREAM_FADING),
            jitter_rng: EngineRng::for_stream(seed, STREAM_JITTER),
            jam_rng: EngineRng::for_stream(seed, STREAM_JAM),
            stats: EngineStats::default(),
            trace_hash: 0xCBF2_9CE4_8422_2325, // FNV-1a offset basis
            trace: Vec::new(),
            controller: 0,
            scratch: Vec::new(),
            telemetry: Arc::new(Counters::new()),
            event_log: None,
            pool: None,
            config,
        };
        for i in 0..n {
            engine.with_ctx(i, |b, ctx| b.on_start(ctx));
        }
        if let Some(churn) = engine.config.churn {
            engine.push_event(churn.interval, Event::ChurnStep);
        }
        Ok(engine)
    }

    /// Restores an engine from a checkpoint; the backend must describe
    /// the same space the checkpoint was taken over (same node count and
    /// channel signature at minimum — decay values are the caller's
    /// responsibility, since backends are not serializable).
    ///
    /// A checkpoint taken under a [`crate::probe::Controller`] carries
    /// that controller's signature; callers resuming such a run should
    /// use [`Self::restore_with_controller`] so the identity is
    /// verified, not just carried along.
    ///
    /// # Errors
    ///
    /// Returns an error if the backend's node count or channel signature
    /// does not match the checkpoint.
    pub fn restore(
        backend: impl DecayBackend + 'static,
        checkpoint: Checkpoint<B>,
    ) -> Result<Self, EngineError> {
        if backend.len() != checkpoint.modes.len() {
            return Err(EngineError::BehaviorCountMismatch {
                nodes: backend.len(),
                behaviors: checkpoint.modes.len(),
            });
        }
        if backend.channel_signature() != checkpoint.channel {
            return Err(EngineError::ChannelMismatch {
                expected: checkpoint.channel,
                found: backend.channel_signature(),
            });
        }
        let mut engine = Engine {
            backend: Box::new(backend),
            behaviors: checkpoint.behaviors,
            params: checkpoint.params,
            config: checkpoint.config,
            now: checkpoint.now,
            seq: checkpoint.seq,
            queue: checkpoint.queue.into_iter().map(Reverse).collect(),
            pending_tx: checkpoint.pending_tx,
            resolve_scheduled: checkpoint.resolve_scheduled,
            modes: checkpoint.modes,
            incarnations: checkpoint.incarnations,
            rngs: checkpoint.rngs,
            churn_rng: checkpoint.churn_rng,
            fading_rng: checkpoint.fading_rng,
            jitter_rng: checkpoint.jitter_rng,
            jam_rng: checkpoint.jam_rng,
            stats: checkpoint.stats,
            trace_hash: checkpoint.trace_hash,
            trace: checkpoint.trace,
            controller: checkpoint.controller,
            scratch: Vec::new(),
            // Telemetry restarts from zero at a restore: counters are
            // observational, not checkpointed. The high-water mark
            // keeps whatever the checkpoint carried (zero after a byte
            // round-trip — the codec drops it) but never reads below
            // the rebuilt queue's current depth.
            telemetry: Arc::new(Counters::new()),
            event_log: None,
            pool: None,
        };
        engine.stats.queue_high_water =
            engine.stats.queue_high_water.max(engine.queue.len() as u64);
        Ok(engine)
    }

    /// [`Self::restore`], additionally verifying that the checkpoint was
    /// taken under a controller with signature `controller_signature`
    /// (0 = no controller). Controller decisions are part of the
    /// trace-defining configuration, so resuming under a different one
    /// would silently diverge — this refuses instead.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ControllerMismatch`] on a signature
    /// mismatch, plus every error [`Self::restore`] can return.
    pub fn restore_with_controller(
        backend: impl DecayBackend + 'static,
        checkpoint: Checkpoint<B>,
        controller_signature: u64,
    ) -> Result<Self, EngineError> {
        if checkpoint.controller != controller_signature {
            return Err(EngineError::ControllerMismatch {
                expected: checkpoint.controller,
                found: controller_signature,
            });
        }
        Self::restore(backend, checkpoint)
    }

    /// Snapshots the complete engine state. Call between [`Self::run_until`]
    /// calls; the snapshot is self-contained modulo the backend.
    pub fn checkpoint(&self) -> Checkpoint<B>
    where
        B: Clone,
    {
        let mut queue: Vec<QueuedEvent> = self.queue.iter().map(|Reverse(qe)| qe.clone()).collect();
        queue.sort();
        Checkpoint {
            version: CHECKPOINT_VERSION,
            channel: self.backend.channel_signature(),
            controller: self.controller,
            now: self.now,
            seq: self.seq,
            queue,
            pending_tx: self.pending_tx.clone(),
            resolve_scheduled: self.resolve_scheduled,
            modes: self.modes.clone(),
            incarnations: self.incarnations.clone(),
            rngs: self.rngs.clone(),
            churn_rng: self.churn_rng.clone(),
            fading_rng: self.fading_rng.clone(),
            jitter_rng: self.jitter_rng.clone(),
            jam_rng: self.jam_rng.clone(),
            stats: self.stats,
            trace_hash: self.trace_hash,
            trace: self.trace.clone(),
            behaviors: self.behaviors.clone(),
            params: self.params,
            config: self.config.clone(),
        }
    }

    /// Processes every event with firing tick `≤ end`, then advances the
    /// clock to `end`. Returns the cumulative stats.
    pub fn run_until(&mut self, end: Tick) -> EngineStats {
        let mut dispatched = 0u64;
        // Timers at batch granularity only: one Dispatch span per drive
        // step (resolve time nested inside it) and one Resolve span per
        // resolution round. Per-event clock reads would cost ~25% of
        // the 3.8M ev/s static path; this costs two reads per rare
        // event kind and keeps the enabled-timing overhead within the
        // CI budget.
        let drive = self.telemetry.timer_start();
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.tick > end {
                break;
            }
            let Reverse(qe) = self.queue.pop().expect("peeked");
            self.now = qe.tick;
            self.stats.events += 1;
            dispatched += 1;
            if let Some(log) = self.event_log.as_mut() {
                log.push(crate::telemetry::EventRecord::of(qe.tick, &qe.event));
            }
            if matches!(qe.event, Event::Resolve) {
                let timer = self.telemetry.timer_start();
                self.dispatch(qe.event);
                self.telemetry.timer_stop(Timer::Resolve, timer);
            } else {
                self.dispatch(qe.event);
            }
        }
        self.telemetry.timer_stop(Timer::Dispatch, drive);
        // One batched add per drive step keeps the telemetry cost off
        // the per-event path.
        self.telemetry.add(Counter::Events, dispatched);
        self.now = self.now.max(end);
        self.stats
    }

    /// Runs `dt` more ticks (see [`Self::run_until`]).
    pub fn run_for(&mut self, dt: Tick) -> EngineStats {
        self.run_until(self.now + dt)
    }

    /// The current tick.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.modes.len()
    }

    /// Whether the engine has no nodes (never true for constructed
    /// engines; for API completeness).
    pub fn is_empty(&self) -> bool {
        self.modes.is_empty()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Read access to a node's behavior.
    pub fn behavior(&self, node: NodeId) -> &B {
        &self.behaviors[node.index()]
    }

    /// Write access to a node's behavior — the hook
    /// [`crate::probe::Directive`]s are applied through.
    ///
    /// Mutating behaviors between [`Self::run_until`] calls is part of
    /// the trace-defining configuration: the change is captured by
    /// subsequent checkpoints (behavior state is serialized), but
    /// reproducing the run from scratch requires re-applying the same
    /// mutations at the same ticks — which is exactly what a
    /// grid-aligned [`crate::probe::Controller`] guarantees.
    pub fn behavior_mut(&mut self, node: NodeId) -> &mut B {
        &mut self.behaviors[node.index()]
    }

    /// Declares the signature of the controller steering this run (see
    /// [`crate::probe::Controller::signature`]); recorded into every
    /// subsequent checkpoint. Call once, before running.
    pub fn set_controller_signature(&mut self, signature: u64) {
        self.controller = signature;
    }

    /// The controller signature this run was declared under (0 = none).
    pub fn controller_signature(&self) -> u64 {
        self.controller
    }

    /// Sets the number of resolution lanes (see [`EngineConfig::threads`]).
    /// Safe to call at any pause: thread count never affects the trace,
    /// so switching mid-run cannot diverge a run. The worker pool is
    /// (re)built lazily at the next parallel resolution round.
    ///
    /// The knob is excluded from the checkpoint codec, so callers that
    /// resume from bytes re-apply their preference with this method.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn set_threads(&mut self, threads: usize) {
        assert!(threads >= 1, "threads must be at least 1");
        self.config.threads = threads;
        if self.pool.as_ref().map(|p| p.lanes()) != Some(threads) {
            self.pool = None;
        }
    }

    /// Raises the queue high-water mark to at least `prior`. The mark is
    /// display-only and outside the checkpoint codec, so a resumed run
    /// restarts it from the restore point; callers that know the
    /// pre-split peak (e.g. a scenario runner cycling through bytes)
    /// carry it across with this method.
    pub fn note_queue_high_water(&mut self, prior: u64) {
        self.stats.queue_high_water = self.stats.queue_high_water.max(prior);
    }

    /// A node's current radio mode.
    pub fn mode(&self, node: NodeId) -> NodeMode {
        self.modes[node.index()]
    }

    /// Whether the node is currently up (not churned out).
    pub fn is_up(&self, node: NodeId) -> bool {
        self.modes[node.index()] != NodeMode::Down
    }

    /// The rolling FNV-1a hash over every delivery
    /// `(tick, from, to, message)` so far — equal hashes mean equal
    /// delivery traces, without storing them.
    pub fn trace_hash(&self) -> u64 {
        self.trace_hash
    }

    /// The recorded deliveries (empty unless
    /// [`EngineConfig::record_trace`] is set).
    pub fn trace(&self) -> &[DeliveryRecord] {
        &self.trace
    }

    /// Takes the recorded deliveries accumulated since construction (or
    /// the last drain), leaving the buffer empty — the streaming hook for
    /// metrics collectors on runs too long to hold a full trace. The
    /// rolling [`Self::trace_hash`] is unaffected; note that a
    /// [`Checkpoint`] only captures records not yet drained.
    pub fn drain_trace(&mut self) -> Vec<DeliveryRecord> {
        std::mem::take(&mut self.trace)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The SINR parameters in force.
    pub fn params(&self) -> SinrParams {
        self.params
    }

    /// The backend being simulated.
    pub fn backend(&self) -> &dyn DecayBackend {
        &*self.backend
    }

    /// Pending events (diagnostic).
    pub fn queued_events(&self) -> usize {
        self.queue.len()
    }

    /// The engine's hot-path telemetry sink. Per-instance (parallel
    /// runs never share counters) and strictly observational: nothing
    /// here feeds back into the trace. Backend-side counters live in
    /// the backend's own sink (see [`DecayBackend::telemetry`]).
    pub fn telemetry(&self) -> &Arc<Counters> {
        &self.telemetry
    }

    /// Arms wall-clock timeline-span recording on the engine's sink and
    /// the backend's (when it has one). Spans only actually record in
    /// `telemetry-timing` builds; like the event log, arming is runtime
    /// state that cannot change checkpoints, traces, or digests.
    pub fn arm_span_recording(&self) {
        self.telemetry.arm_spans();
        if let Some(t) = self.backend.telemetry() {
            t.arm_spans();
        }
    }

    /// Drains every recorded timeline span from the engine's and the
    /// backend's sinks, merged in start order. Always empty unless
    /// [`Self::arm_span_recording`] ran on a `telemetry-timing` build.
    pub fn take_spans(&self) -> Vec<SpanEvent> {
        let mut spans = self.telemetry.take_spans();
        if let Some(t) = self.backend.telemetry() {
            spans.extend(t.take_spans());
        }
        spans.sort_by_key(|s| (s.start_ns, s.tid));
        spans
    }

    /// Turns on the flight-recorder event ring: the last `capacity`
    /// dispatched events are retained for [`Self::recent_events`].
    /// Runtime state, deliberately not an [`EngineConfig`] field —
    /// enabling it cannot change checkpoints, traces, or digests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_event_log(&mut self, capacity: usize) {
        self.event_log = Some(Ring::new(capacity));
    }

    /// The most recent dispatched events, oldest first (empty unless
    /// [`Self::enable_event_log`] was called).
    pub fn recent_events(&self) -> Vec<crate::telemetry::EventRecord> {
        self.event_log
            .as_ref()
            .map(|log| log.iter().copied().collect())
            .unwrap_or_default()
    }

    fn push_event(&mut self, tick: Tick, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent::new(tick, seq, event)));
        let depth = self.queue.len() as u64;
        if depth > self.stats.queue_high_water {
            self.stats.queue_high_water = depth;
        }
    }

    /// Runs a behavior callback for node `i` with a fresh context, then
    /// applies the buffered commands.
    fn with_ctx<F: FnOnce(&mut B, &mut NodeCtx<'_>)>(&mut self, i: usize, f: F) {
        let mut cmds = std::mem::take(&mut self.scratch);
        {
            let mut ctx = NodeCtx {
                node: NodeId::new(i),
                nodes: self.modes.len(),
                now: self.now,
                rng: &mut self.rngs[i],
                commands: &mut cmds,
            };
            f(&mut self.behaviors[i], &mut ctx);
        }
        self.apply_commands(NodeId::new(i), &mut cmds);
        cmds.clear();
        self.scratch = cmds;
    }

    fn apply_commands(&mut self, node: NodeId, cmds: &mut Vec<Command>) {
        for cmd in cmds.drain(..) {
            match cmd {
                Command::Transmit { power, message } => {
                    if !self.resolve_scheduled {
                        self.push_event(self.now, Event::Resolve);
                        self.resolve_scheduled = true;
                    }
                    self.pending_tx.push((node, power, message));
                }
                Command::Listen => self.modes[node.index()] = NodeMode::Listening,
                Command::Sleep => self.modes[node.index()] = NodeMode::Sleeping,
                Command::WakeAt { tick } => {
                    let incarnation = self.incarnations[node.index()];
                    self.push_event(tick, Event::Wake { node, incarnation });
                }
            }
        }
    }

    /// The tick until which `node` is down per the fault plan, if it is
    /// down at `tick`; `None` when it is up. `Tick::MAX` means a
    /// permanent crash.
    fn fault_until(&self, node: NodeId, tick: Tick) -> Option<Tick> {
        fault_until_in(&self.config.faults, node, tick)
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Wake { node, incarnation } => {
                let i = node.index();
                if self.incarnations[i] != incarnation || self.modes[i] == NodeMode::Down {
                    return;
                }
                if let Some(until) = self.fault_until(node, self.now) {
                    // Frozen by the fault plan: resume at the outage end
                    // (drop permanently for a crash).
                    if until != Tick::MAX {
                        self.push_event(until, Event::Wake { node, incarnation });
                    }
                    return;
                }
                self.stats.wakes += 1;
                self.with_ctx(i, |b, ctx| b.on_wake(ctx));
            }
            Event::Resolve => self.resolve_tick(),
            Event::Deliver {
                to,
                from,
                message,
                power,
                incarnation,
                sent,
            } => {
                let i = to.index();
                if self.incarnations[i] != incarnation
                    || self.modes[i] != NodeMode::Listening
                    || self.fault_until(to, self.now).is_some()
                {
                    self.stats.dropped_deliveries += 1;
                    return;
                }
                self.stats.deliveries += 1;
                self.trace_hash = fold_delivery(self.trace_hash, self.now, sent, from, to, message);
                if self.config.record_trace {
                    self.trace.push(DeliveryRecord {
                        tick: self.now,
                        sent,
                        from,
                        to,
                        message,
                    });
                }
                self.with_ctx(i, |b, ctx| b.on_receive(ctx, from, message, power));
            }
            Event::ChurnStep => {
                let Some(churn) = self.config.churn else {
                    return;
                };
                let n = self.modes.len();
                let i = self.churn_rng.gen_range(0..n);
                let u: f64 = self.churn_rng.gen_range(0.0..1.0);
                if self.modes[i] == NodeMode::Down {
                    if u < churn.join_prob {
                        self.incarnations[i] += 1;
                        self.modes[i] = NodeMode::Sleeping;
                        self.stats.churn_joins += 1;
                        self.with_ctx(i, |b, ctx| b.on_start(ctx));
                    }
                } else if u < churn.leave_prob {
                    self.modes[i] = NodeMode::Down;
                    self.stats.churn_leaves += 1;
                }
                self.push_event(self.now + churn.interval, Event::ChurnStep);
            }
        }
    }

    /// Resolves all transmissions of the current tick under SINR and
    /// schedules the resulting deliveries.
    fn resolve_tick(&mut self) {
        self.resolve_scheduled = false;
        let txs = std::mem::take(&mut self.pending_tx);
        if txs.is_empty() {
            return;
        }
        self.stats.transmissions += txs.len() as u64;
        self.telemetry.add(Counter::ResolveTicks, 1);
        let jammed = match self.config.jamming {
            JamSchedule::None => false,
            JamSchedule::Periodic { period } => self.now.is_multiple_of(period),
            JamSchedule::Random { prob } => self.jam_rng.gen_range(0.0..1.0) < prob,
        };
        let mut per_tx_receivers: Vec<Vec<NodeId>> = vec![Vec::new(); txs.len()];
        if jammed {
            self.stats.jammed_ticks += 1;
        } else {
            self.resolve_pairs(&txs, &mut per_tx_receivers);
        }
        // Transmit-result callbacks, in transmission order.
        for (k, &(t, _, _)) in txs.iter().enumerate() {
            let receivers = std::mem::take(&mut per_tx_receivers[k]);
            if self.modes[t.index()] == NodeMode::Down {
                continue;
            }
            self.with_ctx(t.index(), |b, ctx| {
                b.on_transmit_result(ctx, &receivers);
            });
        }
    }

    /// SINR resolution for one tick's transmissions, sharded across
    /// `config.threads` contiguous listener-index ranges. One code path
    /// at every thread count — with one lane everything runs inline and
    /// no pool exists — structured so the trace cannot depend on the
    /// lane count:
    ///
    /// 1. **Reach scans** (parallel over transmitters): per-tx receiver
    ///    lists, landed in per-tx slots — no merge order to get wrong.
    /// 2. **Shard pair lists** (parallel over shards): each shard keeps
    ///    the pairs whose listener falls in its range, sorted by
    ///    (listener, tx order); contiguous ranges concatenate to the
    ///    serial path's single sorted list.
    /// 3. **Fade pass** (main thread, Rayleigh only): fades for every
    ///    non-skipped pair, drawn from the one fading stream in global
    ///    group order — identical to the serial draw sequence.
    /// 4. **Shard resolution** (parallel over shards): pure SINR over
    ///    immutable state into per-shard scratch.
    /// 5. **Merge** (main thread, fixed shard order = ascending
    ///    listener id): latency draws and event scheduling, exactly the
    ///    serial path's delivery order.
    fn resolve_pairs(&mut self, txs: &[(NodeId, f64, u64)], per_tx_receivers: &mut [Vec<NodeId>]) {
        // A single transmission has nothing to shard; skip the pool.
        let lanes = if txs.len() > 1 {
            self.config.threads
        } else {
            1
        };

        // Phase 1: per-transmitter receiver lists (lanes stride the tx
        // index so uneven list sizes balance).
        let recv: Vec<Vec<NodeId>> = if lanes > 1 {
            if self.pool.as_ref().map(ShardPool::lanes) != Some(lanes) {
                self.pool = Some(ShardPool::new(lanes));
            }
            let pool = self.pool.as_ref().expect("pool just built");
            let backend = &*self.backend;
            let now = self.now;
            let reach = self.config.reach_decay;
            let telemetry = &self.telemetry;
            let cells: Vec<OnceLock<Vec<NodeId>>> =
                (0..txs.len()).map(|_| OnceLock::new()).collect();
            pool.broadcast(&|lane| {
                let span = telemetry.spans_armed().then(|| telemetry.timer_start());
                let mut k = lane;
                while k < txs.len() {
                    let (t, _, _) = txs[k];
                    let _ = cells[k].set(backend.potential_receivers_at(now, t, reach));
                    k += lanes;
                }
                if let Some(t0) = span {
                    telemetry.span_record("shard_scan", Some(lane as u32), t0);
                }
            });
            cells
                .into_iter()
                .map(|c| c.into_inner().unwrap_or_default())
                .collect()
        } else {
            txs.iter()
                .map(|&(t, _, _)| {
                    self.backend
                        .potential_receivers_at(self.now, t, self.config.reach_decay)
                })
                .collect()
        };
        self.telemetry.add(Counter::ReachScans, txs.len() as u64);
        self.telemetry.add(
            Counter::SinrPairs,
            // decay-lint: allow(unordered-reduce) — integer addition over
            // u64 counts is order-free; no floats involved.
            recv.iter().map(|r| r.len() as u64).sum(),
        );

        // Phase 2: per-shard sorted pair lists over contiguous listener
        // ranges.
        let n = self.modes.len();
        let bounds: Vec<(usize, usize)> = (0..lanes)
            .map(|s| (s * n / lanes, (s + 1) * n / lanes))
            .collect();
        let shard_pairs: Vec<Vec<(NodeId, usize)>> = if lanes > 1 {
            let pool = self.pool.as_ref().expect("pool");
            let recv = &recv;
            let bounds = &bounds;
            let telemetry = &self.telemetry;
            let cells: Vec<OnceLock<Vec<(NodeId, usize)>>> =
                (0..lanes).map(|_| OnceLock::new()).collect();
            pool.broadcast(&|lane| {
                let span = telemetry.spans_armed().then(|| telemetry.timer_start());
                let (lo, hi) = bounds[lane];
                let _ = cells[lane].set(collect_shard_pairs(recv, lo, hi));
                if let Some(t0) = span {
                    telemetry.span_record("shard_pairs", Some(lane as u32), t0);
                }
            });
            cells
                .into_iter()
                .map(|c| c.into_inner().unwrap_or_default())
                .collect()
        } else {
            vec![collect_shard_pairs(&recv, 0, n)]
        };
        drop(recv);

        // decay-lint: allow(hash-iteration) — lookup-only: O(1)
        // transmitter-exclusion membership; hash order cannot leak into
        // the trace because the set is never iterated.
        let transmitting: HashSet<NodeId> = txs.iter().map(|&(t, _, _)| t).collect();
        let view = ResolveView {
            txs,
            modes: &self.modes,
            faults: &self.config.faults,
            transmitting: &transmitting,
            now: self.now,
            reception: self.config.reception,
            top_k: self.config.top_k,
            noise: self.params.noise(),
            beta: self.params.beta(),
        };

        // Phase 3: Rayleigh fades, drawn on the main thread from the
        // single fading stream by walking shards in fixed order — the
        // global group order, so the draw sequence is byte-identical to
        // the serial path's (draws happen per non-skipped pair, before
        // top-k pruning, exactly as they always did).
        let shard_fades: Vec<Vec<f64>> = match self.config.reception {
            ReceptionModel::Threshold => vec![Vec::new(); lanes],
            ReceptionModel::Rayleigh => shard_pairs
                .iter()
                .map(|pairs| {
                    let mut fades = Vec::new();
                    let mut i = 0;
                    while i < pairs.len() {
                        let v = pairs[i].0;
                        let mut end = i;
                        while end < pairs.len() && pairs[end].0 == v {
                            end += 1;
                        }
                        let len = end - i;
                        i = end;
                        if view.group_skipped(v) {
                            continue;
                        }
                        for _ in 0..len {
                            // Unit-mean exponential via inverse CDF, as
                            // in the slot simulator.
                            fades.push(-(1.0 - self.fading_rng.gen::<f64>()).ln());
                        }
                    }
                    fades
                })
                .collect(),
        };

        // Phase 4: resolve every shard against immutable state.
        let outs: Vec<ShardOut> = if lanes > 1 {
            let pool = self.pool.as_ref().expect("pool");
            let backend = &*self.backend;
            let view = &view;
            let shard_pairs = &shard_pairs;
            let shard_fades = &shard_fades;
            let telemetry = &self.telemetry;
            let cells: Vec<OnceLock<ShardOut>> = (0..lanes).map(|_| OnceLock::new()).collect();
            pool.broadcast(&|lane| {
                let span = telemetry.spans_armed().then(|| telemetry.timer_start());
                let _ = cells[lane].set(resolve_shard(
                    view,
                    backend,
                    &shard_pairs[lane],
                    &shard_fades[lane],
                ));
                if let Some(t0) = span {
                    telemetry.span_record("resolve_shard", Some(lane as u32), t0);
                }
            });
            cells
                .into_iter()
                .map(|c| c.into_inner().unwrap_or_default())
                .collect()
        } else {
            vec![resolve_shard(
                &view,
                &*self.backend,
                &shard_pairs[0],
                &shard_fades[0],
            )]
        };
        // Phase 5: merge in fixed shard order (= ascending listener id,
        // the serial path's delivery order). Latency is drawn per
        // delivery, in order, from the single jitter stream.
        let mut decay_calls = 0u64;
        for out in outs {
            decay_calls += out.decay_calls;
            for (v, k, p) in out.deliveries {
                let delay = match self.config.latency {
                    LatencyModel::Immediate => 0,
                    LatencyModel::Fixed { ticks } => ticks,
                    LatencyModel::Jittered { base, jitter } => {
                        base + if jitter == 0 {
                            0
                        } else {
                            self.jitter_rng.gen_range(0..=jitter)
                        }
                    }
                };
                let (from, _, message) = txs[k];
                self.push_event(
                    self.now + delay,
                    Event::Deliver {
                        to: v,
                        from,
                        message,
                        power: p,
                        incarnation: self.incarnations[v.index()],
                        sent: self.now,
                    },
                );
                per_tx_receivers[k].push(v);
            }
        }
        self.telemetry.add(Counter::DecayCalls, decay_calls);
    }
}
