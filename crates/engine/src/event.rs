//! The event queue: a priority queue over [`Tick`]s with a total,
//! deterministic ordering.
//!
//! Events at the same tick are ordered by *class* — churn first, then
//! wakes, then reception resolution, then deliveries — and within a class
//! by insertion sequence number. The ordering is part of the engine's
//! determinism contract: two runs with the same seed push the same events
//! in the same order and therefore pop them in the same order.

use std::cmp::Ordering;

use decay_core::NodeId;
use serde::{Deserialize, Serialize};

use crate::codec::{Codec, CodecError};

/// Simulation time, in discrete ticks. A tick plays the role of a slot in
/// the slot-synchronous simulator: transmissions within one tick contend
/// with each other under SINR.
pub type Tick = u64;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// One churn step: the dynamics model flips at most one node.
    ChurnStep,
    /// A node's scheduled wake-up; stale if the incarnation mismatches.
    Wake {
        /// The node to wake.
        node: NodeId,
        /// The incarnation the wake was scheduled in.
        incarnation: u32,
    },
    /// Resolve all transmissions of the current tick under SINR.
    Resolve,
    /// A message arriving at a listener (possibly after latency).
    Deliver {
        /// The receiving node.
        to: NodeId,
        /// The transmitting node.
        from: NodeId,
        /// The payload.
        message: u64,
        /// The received signal power.
        power: f64,
        /// The receiver's incarnation at resolve time; the delivery is
        /// dropped if the receiver has since left and rejoined.
        incarnation: u32,
        /// The tick the transmission was resolved (arrival minus latency)
        /// — what delivery-latency metrics are measured against.
        sent: Tick,
    },
}

impl Event {
    /// Intra-tick ordering class (lower fires first).
    fn class(&self) -> u8 {
        match self {
            Event::ChurnStep => 0,
            Event::Wake { .. } => 1,
            Event::Resolve => 2,
            Event::Deliver { .. } => 3,
        }
    }
}

/// An event with its firing time and deterministic tie-break key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueuedEvent {
    /// When the event fires.
    pub tick: Tick,
    /// Intra-tick class (see [`Event`]'s ordering contract).
    pub class: u8,
    /// Insertion sequence number — the final tie-break.
    pub seq: u64,
    /// The event itself.
    pub event: Event,
}

impl QueuedEvent {
    /// Wraps an event with its firing tick and sequence number.
    pub fn new(tick: Tick, seq: u64, event: Event) -> Self {
        QueuedEvent {
            tick,
            class: event.class(),
            seq,
            event,
        }
    }

    fn key(&self) -> (Tick, u8, u64) {
        (self.tick, self.class, self.seq)
    }
}

impl Codec for Event {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Event::ChurnStep => out.push(0),
            Event::Wake { node, incarnation } => {
                out.push(1);
                node.encode(out);
                incarnation.encode(out);
            }
            Event::Resolve => out.push(2),
            Event::Deliver {
                to,
                from,
                message,
                power,
                incarnation,
                sent,
            } => {
                out.push(3);
                to.encode(out);
                from.encode(out);
                message.encode(out);
                power.encode(out);
                incarnation.encode(out);
                sent.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(input)? {
            0 => Ok(Event::ChurnStep),
            1 => Ok(Event::Wake {
                node: NodeId::decode(input)?,
                incarnation: u32::decode(input)?,
            }),
            2 => Ok(Event::Resolve),
            3 => Ok(Event::Deliver {
                to: NodeId::decode(input)?,
                from: NodeId::decode(input)?,
                message: u64::decode(input)?,
                power: f64::decode(input)?,
                incarnation: u32::decode(input)?,
                sent: Tick::decode(input)?,
            }),
            tag => Err(CodecError::InvalidTag { tag, ty: "Event" }),
        }
    }
}

impl Codec for QueuedEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tick.encode(out);
        self.seq.encode(out);
        self.event.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let tick = Tick::decode(input)?;
        let seq = u64::decode(input)?;
        let event = Event::decode(input)?;
        Ok(QueuedEvent::new(tick, seq, event))
    }
}

impl Eq for QueuedEvent {}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_tick_then_class_then_seq() {
        let wake = QueuedEvent::new(
            5,
            10,
            Event::Wake {
                node: NodeId::new(0),
                incarnation: 0,
            },
        );
        let resolve_same_tick = QueuedEvent::new(5, 2, Event::Resolve);
        let churn_same_tick = QueuedEvent::new(5, 99, Event::ChurnStep);
        let later = QueuedEvent::new(6, 0, Event::ChurnStep);
        // Class dominates seq within a tick.
        assert!(wake < resolve_same_tick);
        assert!(churn_same_tick < wake);
        // Tick dominates everything.
        assert!(resolve_same_tick < later);
    }

    #[test]
    fn seq_breaks_ties_within_class() {
        let a = QueuedEvent::new(3, 1, Event::Resolve);
        let b = QueuedEvent::new(3, 2, Event::Resolve);
        assert!(a < b);
    }
}
