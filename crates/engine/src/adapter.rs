//! Compatibility adapter: run unmodified slot-synchronous
//! [`decay_netsim::NodeBehavior`] protocols on the event engine.
//!
//! The adapter wakes its node every tick, asks the wrapped behavior for
//! its slot action, and translates it into engine commands. This
//! reproduces lockstep semantics — every node pays one wake per tick —
//! so it does not deliver the engine's only-active-nodes-cost-work
//! speedup; what it does deliver is every existing protocol (broadcast,
//! contention, coloring, queueing, ...) running on lazy backends, with
//! churn, latency, jamming and checkpointing, without a line of protocol
//! changes. Protocols wanting the sparse-wake speedup implement
//! [`crate::EventBehavior`] natively instead (see
//! `decay_distributed::run_local_broadcast_event`).

use decay_core::NodeId;
use decay_netsim::{Action, NodeBehavior, SlotContext};
use serde::{Deserialize, Serialize};

use crate::engine::{EventBehavior, NodeCtx};

/// Wraps a [`NodeBehavior`] so it runs on the event engine.
///
/// Serializable (hence checkpointable) whenever the wrapped behavior is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SlotAdapter<B> {
    inner: B,
}

impl<B> SlotAdapter<B> {
    /// Wraps a slot-synchronous behavior.
    pub fn new(inner: B) -> Self {
        SlotAdapter { inner }
    }

    /// The wrapped behavior.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwraps the behavior.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: NodeBehavior> EventBehavior for SlotAdapter<B> {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        // Slot semantics: decide an action every tick, starting now.
        ctx.wake_at(ctx.now);
    }

    fn on_wake(&mut self, ctx: &mut NodeCtx<'_>) {
        let action = {
            let mut slot_ctx = SlotContext {
                node: ctx.node,
                nodes: ctx.nodes,
                slot: usize::try_from(ctx.now).expect("tick exceeds usize"),
                rng: ctx.rng,
            };
            self.inner.on_slot(&mut slot_ctx)
        };
        match action {
            Action::Transmit { power, message } => {
                // A transmitting node hears nothing this tick (the engine
                // enforces that), and is not a listener until it says so.
                ctx.sleep();
                ctx.transmit(power, message);
            }
            Action::Listen => ctx.listen(),
            Action::Idle => ctx.sleep(),
        }
        ctx.wake_in(1);
    }

    fn on_receive(&mut self, _ctx: &mut NodeCtx<'_>, from: NodeId, message: u64, power: f64) {
        self.inner.on_receive(from, message, power);
    }

    fn on_transmit_result(&mut self, _ctx: &mut NodeCtx<'_>, receivers: &[NodeId]) {
        self.inner.on_transmit_result(receivers.len());
    }
}
