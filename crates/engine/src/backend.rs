//! Decay-space storage backends.
//!
//! The slot-synchronous simulator in `decay-netsim` owns a
//! [`DecaySpace`] — a dense row-major `n × n` matrix, which caps
//! experiments at a few thousand nodes (a million-node space would need
//! 8 TB). The engine instead talks to a [`DecayBackend`]: dense for
//! small spaces, [`LazyBackend`] (evaluate on demand, zero storage) and
//! [`TiledBackend`] (evaluate on demand, cache a bounded working set of
//! matrix tiles) for large ones.
//!
//! Backends also answer the *reachability* query that makes event-driven
//! reception resolution cheap: [`DecayBackend::potential_receivers`]
//! enumerates the nodes a transmission could plausibly reach. Dense and
//! generic lazy backends answer by scanning a row; a [`LazyBackend`] built
//! from structured deployments (lines, grids, anything index-local) can
//! install a *neighbor hint* answering in `O(k)` — the difference between
//! `O(n)` and `O(k)` work per transmission at 100k+ nodes.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

use decay_core::{DecaySpace, NodeId};

use crate::event::Tick;

/// Read access to a (possibly never materialized) decay space.
///
/// Implementations must be deterministic: `decay(p, q)` must always
/// return the same value for the same pair, and must satisfy the decay
/// space contract of [`decay_core::DecaySpace`] — finite, strictly
/// positive off the diagonal, zero on it.
///
/// # Time
///
/// A backend may be *temporal*: [`Self::decay_at`] takes the current
/// tick, and the engine routes every hot-path decay evaluation through
/// it. Static backends (everything in this module) ignore the tick via
/// the default implementations, so a frozen gain matrix stays exactly as
/// cheap as before; `decay-channel` supplies time-varying implementations
/// (mobility, shadowing, fading, trace replay) that override them.
/// Temporal implementations must still be deterministic *per tick*:
/// `decay_at(t, p, q)` is a pure function of `(t, p, q)`.
pub trait DecayBackend: Send + Sync {
    /// Number of nodes in the space.
    fn len(&self) -> usize;

    /// Whether the space has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The decay `f(from, to)`.
    fn decay(&self, from: NodeId, to: NodeId) -> f64;

    /// The decay `f_t(from, to)` at tick `tick`. Static backends ignore
    /// the tick; temporal backends (see `decay-channel`) evaluate the
    /// instantaneous gain field.
    fn decay_at(&self, tick: Tick, from: NodeId, to: NodeId) -> f64 {
        let _ = tick;
        self.decay(from, to)
    }

    /// Nodes a transmission from `from` could plausibly reach: every
    /// `z ≠ from` with `decay(from, z) ≤ reach`, or every other node when
    /// `reach` is `None`.
    ///
    /// The default implementation scans the whole row (`O(n)` decay
    /// evaluations). Structured backends should override it — see
    /// [`LazyBackend::with_neighbor_hint`].
    fn potential_receivers(&self, from: NodeId, reach: Option<f64>) -> Vec<NodeId> {
        let n = self.len();
        (0..n)
            .filter(|&j| j != from.index())
            .map(NodeId::new)
            .filter(|&to| match reach {
                None => true,
                Some(r) => self.decay(from, to) <= r,
            })
            .collect()
    }

    /// Reach candidates at tick `tick`, mirroring [`Self::decay_at`].
    /// Static backends delegate to [`Self::potential_receivers`];
    /// temporal backends recompute the set per coherence block.
    fn potential_receivers_at(&self, tick: Tick, from: NodeId, reach: Option<f64>) -> Vec<NodeId> {
        let _ = tick;
        self.potential_receivers(from, reach)
    }

    /// The raw candidate window a structured neighbor hint yields for
    /// `(from, reach)`, *unfiltered* by this backend's decay — `None`
    /// when the backend has no structural hint installed.
    ///
    /// [`Self::potential_receivers`] filters its hint window against
    /// this backend's own decay; callers that re-filter against a
    /// *different* field — a temporal channel widening the window
    /// conservatively before testing the instantaneous decays — use
    /// this to skip that redundant base pass. Results may include
    /// `from`, duplicates, or out-of-range indices; callers sanitize.
    fn hint_candidates(&self, from: NodeId, reach: f64) -> Option<Vec<NodeId>> {
        let _ = (from, reach);
        None
    }

    /// A fingerprint of the backend's *channel* configuration: 0 for
    /// every static backend, a hash of the channel parameters for
    /// temporal ones. Checkpoints record it (format v3) and
    /// [`crate::Engine::restore`] refuses a backend whose signature does
    /// not match — catching the silent bug of resuming a run under a
    /// different channel than it was snapshotted under.
    fn channel_signature(&self) -> u64 {
        0
    }

    /// The backend's own hot-path telemetry sink, when it keeps one
    /// (temporal adapters count row builds/hits and epoch traffic
    /// here). `None` for backends that track nothing — the static
    /// backends in this module stay untouched. Telemetry is strictly
    /// observational: reading the sink must never affect decay values
    /// or reach sets.
    fn telemetry(&self) -> Option<&decay_core::telemetry::Counters> {
        None
    }
}

/// Boxed backends forward, so heterogeneous call sites (a scenario spec
/// choosing its backend at runtime) can hand the engine a
/// `Box<dyn DecayBackend>` directly.
///
/// Every method — including the default-overridable ones — forwards to
/// the inner implementation, so boxing can never silently discard a
/// specialized override (a temporal `decay_at`, a structured
/// `potential_receivers`, a channel signature).
impl<T: DecayBackend + ?Sized> DecayBackend for Box<T> {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }

    fn decay(&self, from: NodeId, to: NodeId) -> f64 {
        (**self).decay(from, to)
    }

    fn decay_at(&self, tick: Tick, from: NodeId, to: NodeId) -> f64 {
        (**self).decay_at(tick, from, to)
    }

    fn potential_receivers(&self, from: NodeId, reach: Option<f64>) -> Vec<NodeId> {
        (**self).potential_receivers(from, reach)
    }

    fn potential_receivers_at(&self, tick: Tick, from: NodeId, reach: Option<f64>) -> Vec<NodeId> {
        (**self).potential_receivers_at(tick, from, reach)
    }

    fn hint_candidates(&self, from: NodeId, reach: f64) -> Option<Vec<NodeId>> {
        (**self).hint_candidates(from, reach)
    }

    fn channel_signature(&self) -> u64 {
        (**self).channel_signature()
    }

    fn telemetry(&self) -> Option<&decay_core::telemetry::Counters> {
        (**self).telemetry()
    }
}

/// A dense backend wrapping a fully materialized [`DecaySpace`].
///
/// `O(n²)` storage, `O(1)` lookups — the right choice below a few
/// thousand nodes and the semantics-preserving bridge from every existing
/// `decay-netsim` experiment.
#[derive(Debug, Clone)]
pub struct DenseBackend {
    space: DecaySpace,
}

impl DenseBackend {
    /// Wraps a materialized decay space.
    pub fn new(space: DecaySpace) -> Self {
        DenseBackend { space }
    }

    /// The wrapped space.
    pub fn space(&self) -> &DecaySpace {
        &self.space
    }
}

impl From<DecaySpace> for DenseBackend {
    fn from(space: DecaySpace) -> Self {
        DenseBackend::new(space)
    }
}

impl DecayBackend for DenseBackend {
    fn len(&self) -> usize {
        self.space.len()
    }

    fn decay(&self, from: NodeId, to: NodeId) -> f64 {
        self.space.decay(from, to)
    }
}

/// The decay generator used by lazy and tiled backends.
pub type DecayFn = Arc<dyn Fn(usize, usize) -> f64 + Send + Sync>;

/// A neighbor hint: given a node index and a reach, return the candidate
/// receiver indices (superset allowed; the engine re-filters by decay).
pub type NeighborFn = Arc<dyn Fn(usize, f64) -> Vec<usize> + Send + Sync>;

/// A lazy backend: decays are computed on demand from a function and
/// never stored. Zero bytes per pair — the backend of choice for
/// million-node spaces whose decay has a formula (geometric deployments,
/// stochastic urban models, synthetic hardness families).
#[derive(Clone)]
pub struct LazyBackend {
    n: usize,
    f: DecayFn,
    neighbors: Option<NeighborFn>,
}

impl LazyBackend {
    /// Creates a lazy backend over `n` nodes computing `f(i, j)` on
    /// demand. The diagonal is forced to zero regardless of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`. Off-diagonal values returned by `f` must be
    /// finite and strictly positive; this is checked with
    /// `debug_assert!` on every evaluation (checking eagerly would defeat
    /// the point of never materializing the matrix).
    pub fn from_fn<F>(n: usize, f: F) -> Self
    where
        F: Fn(usize, usize) -> f64 + Send + Sync + 'static,
    {
        assert!(n > 0, "a decay space needs at least one node");
        LazyBackend {
            n,
            f: Arc::new(f),
            neighbors: None,
        }
    }

    /// Installs a neighbor hint, replacing the `O(n)` row scan in
    /// [`DecayBackend::potential_receivers`] with a structured `O(k)`
    /// candidate query.
    ///
    /// The hint may over-approximate (extra candidates are filtered by
    /// decay) but must never omit a node within reach, or deliveries will
    /// silently be lost.
    #[must_use]
    pub fn with_neighbor_hint<F>(mut self, hint: F) -> Self
    where
        F: Fn(usize, f64) -> Vec<usize> + Send + Sync + 'static,
    {
        self.neighbors = Some(Arc::new(hint));
        self
    }
}

impl fmt::Debug for LazyBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LazyBackend")
            .field("n", &self.n)
            .field("neighbor_hint", &self.neighbors.is_some())
            .finish_non_exhaustive()
    }
}

impl DecayBackend for LazyBackend {
    fn len(&self) -> usize {
        self.n
    }

    fn decay(&self, from: NodeId, to: NodeId) -> f64 {
        assert!(from.index() < self.n && to.index() < self.n);
        if from == to {
            return 0.0;
        }
        let v = (self.f)(from.index(), to.index());
        debug_assert!(
            v.is_finite() && v > 0.0,
            "lazy decay f({}, {}) = {v} violates the decay-space contract",
            from.index(),
            to.index()
        );
        v
    }

    fn hint_candidates(&self, from: NodeId, reach: f64) -> Option<Vec<NodeId>> {
        self.neighbors.as_ref().map(|hint| {
            hint(from.index(), reach)
                .into_iter()
                .filter(|&j| j < self.n)
                .map(NodeId::new)
                .collect()
        })
    }

    fn potential_receivers(&self, from: NodeId, reach: Option<f64>) -> Vec<NodeId> {
        match (&self.neighbors, reach) {
            (Some(hint), Some(r)) => hint(from.index(), r)
                .into_iter()
                .filter(|&j| j != from.index() && j < self.n)
                .map(NodeId::new)
                .filter(|&to| self.decay(from, to) <= r)
                .collect(),
            _ => {
                let n = self.n;
                (0..n)
                    .filter(|&j| j != from.index())
                    .map(NodeId::new)
                    .filter(|&to| match reach {
                        None => true,
                        Some(r) => self.decay(from, to) <= r,
                    })
                    .collect()
            }
        }
    }
}

/// One cached square tile of the decay matrix.
struct Tile {
    values: Vec<f64>,
}

/// Cache bookkeeping shared behind a mutex.
struct TileCache {
    // decay-lint: allow(hash-iteration) — lookup-only: tiles are read
    // and evicted by key; iteration order never reaches a computation.
    tiles: HashMap<(usize, usize), Tile>,
    /// FIFO order for eviction.
    order: VecDeque<(usize, usize)>,
    /// Total tiles ever computed (the bench's memory-pressure proxy).
    computed: u64,
}

/// A tiled/sharded backend: decays are computed on demand in square
/// tiles which are cached up to a bounded working set.
///
/// Sits between [`DenseBackend`] (all `n²` entries resident) and
/// [`LazyBackend`] (nothing resident): repeated lookups within a hot
/// region hit the cache, while total memory stays
/// `O(max_tiles · tile_size²)` no matter how large the space is. Useful
/// when decay evaluation is expensive (e.g. ray-traced indoor
/// propagation) but access patterns are localized.
pub struct TiledBackend {
    n: usize,
    tile_size: usize,
    max_tiles: usize,
    f: DecayFn,
    cache: Mutex<TileCache>,
}

impl TiledBackend {
    /// Creates a tiled backend over `n` nodes with `tile_size × tile_size`
    /// tiles and at most `max_tiles` tiles resident.
    ///
    /// # Panics
    ///
    /// Panics if `n`, `tile_size` or `max_tiles` is zero.
    pub fn from_fn<F>(n: usize, tile_size: usize, max_tiles: usize, f: F) -> Self
    where
        F: Fn(usize, usize) -> f64 + Send + Sync + 'static,
    {
        assert!(n > 0, "a decay space needs at least one node");
        assert!(tile_size > 0, "tile size must be positive");
        assert!(max_tiles > 0, "need at least one resident tile");
        TiledBackend {
            n,
            tile_size,
            max_tiles,
            f: Arc::new(f),
            cache: Mutex::new(TileCache {
                tiles: HashMap::new(),
                order: VecDeque::new(),
                computed: 0,
            }),
        }
    }

    /// Number of tiles currently resident.
    pub fn resident_tiles(&self) -> usize {
        self.cache.lock().expect("tile cache poisoned").tiles.len()
    }

    /// Total tiles computed over the backend's lifetime (recomputation
    /// after eviction counts again) — a proxy for evaluation cost and
    /// memory pressure.
    pub fn tiles_computed(&self) -> u64 {
        self.cache.lock().expect("tile cache poisoned").computed
    }

    /// Peak resident bytes of tile storage.
    pub fn resident_bytes(&self) -> usize {
        self.resident_tiles() * self.tile_size * self.tile_size * std::mem::size_of::<f64>()
    }
}

impl fmt::Debug for TiledBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TiledBackend")
            .field("n", &self.n)
            .field("tile_size", &self.tile_size)
            .field("max_tiles", &self.max_tiles)
            .field("resident_tiles", &self.resident_tiles())
            .finish_non_exhaustive()
    }
}

impl DecayBackend for TiledBackend {
    fn len(&self) -> usize {
        self.n
    }

    fn decay(&self, from: NodeId, to: NodeId) -> f64 {
        assert!(from.index() < self.n && to.index() < self.n);
        if from == to {
            return 0.0;
        }
        let ts = self.tile_size;
        let key = (from.index() / ts, to.index() / ts);
        let mut cache = self.cache.lock().expect("tile cache poisoned");
        if !cache.tiles.contains_key(&key) {
            let row0 = key.0 * ts;
            let col0 = key.1 * ts;
            let rows = ts.min(self.n - row0);
            let cols = ts.min(self.n - col0);
            let mut values = vec![0.0; rows * cols];
            for r in 0..rows {
                for c in 0..cols {
                    if row0 + r != col0 + c {
                        let v = (self.f)(row0 + r, col0 + c);
                        debug_assert!(
                            v.is_finite() && v > 0.0,
                            "tiled decay f({}, {}) = {v} violates the decay-space contract",
                            row0 + r,
                            col0 + c
                        );
                        values[r * cols + c] = v;
                    }
                }
            }
            if cache.tiles.len() >= self.max_tiles {
                if let Some(old) = cache.order.pop_front() {
                    cache.tiles.remove(&old);
                }
            }
            cache.tiles.insert(key, Tile { values });
            cache.order.push_back(key);
            cache.computed += 1;
        }
        let tile = &cache.tiles[&key];
        let col0 = key.1 * ts;
        let cols = ts.min(self.n - col0);
        tile.values[(from.index() % ts) * cols + (to.index() % ts)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_fn(i: usize, j: usize) -> f64 {
        ((i as f64) - (j as f64)).abs().powi(2)
    }

    #[test]
    fn dense_matches_space() {
        let space = DecaySpace::from_fn(5, line_fn).unwrap();
        let b = DenseBackend::new(space.clone());
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(
                    b.decay(NodeId::new(i), NodeId::new(j)),
                    space.decay(NodeId::new(i), NodeId::new(j))
                );
            }
        }
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
    }

    #[test]
    fn lazy_matches_dense_without_storing() {
        let b = LazyBackend::from_fn(100, line_fn);
        assert_eq!(b.decay(NodeId::new(3), NodeId::new(7)), 16.0);
        assert_eq!(b.decay(NodeId::new(7), NodeId::new(7)), 0.0);
    }

    #[test]
    fn lazy_scales_to_a_million_nodes() {
        // The whole point: no O(n²) allocation happens here.
        let b = LazyBackend::from_fn(1_000_000, line_fn);
        assert_eq!(b.len(), 1_000_000);
        assert_eq!(
            b.decay(NodeId::new(999_999), NodeId::new(0)),
            (999_999.0_f64).powi(2)
        );
    }

    #[test]
    fn potential_receivers_respects_reach() {
        let b = LazyBackend::from_fn(10, line_fn);
        let within = b.potential_receivers(NodeId::new(5), Some(4.0));
        // Distance ≤ 2 at alpha = 2.
        assert_eq!(
            within,
            vec![3, 4, 6, 7]
                .into_iter()
                .map(NodeId::new)
                .collect::<Vec<_>>()
        );
        let all = b.potential_receivers(NodeId::new(5), None);
        assert_eq!(all.len(), 9);
    }

    #[test]
    fn neighbor_hint_filters_and_matches_scan() {
        let scan = LazyBackend::from_fn(50, line_fn);
        let hinted = LazyBackend::from_fn(50, line_fn).with_neighbor_hint(|i, r| {
            let w = r.sqrt().ceil() as usize;
            (i.saturating_sub(w)..=(i + w).min(49)).collect()
        });
        for i in [0usize, 10, 49] {
            assert_eq!(
                scan.potential_receivers(NodeId::new(i), Some(9.0)),
                hinted.potential_receivers(NodeId::new(i), Some(9.0)),
                "node {i}"
            );
        }
    }

    #[test]
    fn tiled_matches_lazy_and_caches() {
        let lazy = LazyBackend::from_fn(37, line_fn);
        let tiled = TiledBackend::from_fn(37, 8, 4, line_fn);
        for i in 0..37 {
            for j in 0..37 {
                assert_eq!(
                    tiled.decay(NodeId::new(i), NodeId::new(j)),
                    lazy.decay(NodeId::new(i), NodeId::new(j)),
                    "({i}, {j})"
                );
            }
        }
        // Bounded residency despite touching every tile.
        assert!(tiled.resident_tiles() <= 4);
        assert!(tiled.tiles_computed() >= 25);
        assert!(tiled.resident_bytes() > 0);
    }

    /// A backend overriding every default-overridable method, to pin the
    /// boxed-forwarding contract.
    struct Specialized;

    impl DecayBackend for Specialized {
        fn len(&self) -> usize {
            3
        }
        fn is_empty(&self) -> bool {
            true // deliberately inconsistent with len(): detects defaulting
        }
        fn decay(&self, _from: NodeId, _to: NodeId) -> f64 {
            1.0
        }
        fn decay_at(&self, tick: Tick, _from: NodeId, _to: NodeId) -> f64 {
            (tick + 2) as f64
        }
        fn potential_receivers(&self, _from: NodeId, _reach: Option<f64>) -> Vec<NodeId> {
            vec![NodeId::new(2)]
        }
        fn potential_receivers_at(
            &self,
            tick: Tick,
            _from: NodeId,
            _reach: Option<f64>,
        ) -> Vec<NodeId> {
            vec![NodeId::new(tick as usize)]
        }
        fn hint_candidates(&self, _from: NodeId, reach: f64) -> Option<Vec<NodeId>> {
            Some(vec![NodeId::new(reach as usize)])
        }
        fn channel_signature(&self) -> u64 {
            0xABCD
        }
    }

    #[test]
    fn boxing_preserves_every_override() {
        let boxed: Box<dyn DecayBackend> = Box::new(Specialized);
        assert_eq!(boxed.len(), 3);
        assert!(boxed.is_empty(), "is_empty override lost through Box");
        assert_eq!(boxed.decay(NodeId::new(0), NodeId::new(1)), 1.0);
        assert_eq!(
            boxed.decay_at(5, NodeId::new(0), NodeId::new(1)),
            7.0,
            "decay_at override lost through Box"
        );
        assert_eq!(
            boxed.potential_receivers(NodeId::new(0), None),
            vec![NodeId::new(2)]
        );
        assert_eq!(
            boxed.potential_receivers_at(1, NodeId::new(0), None),
            vec![NodeId::new(1)],
            "potential_receivers_at override lost through Box"
        );
        assert_eq!(
            boxed.hint_candidates(NodeId::new(0), 2.0),
            Some(vec![NodeId::new(2)]),
            "hint_candidates override lost through Box"
        );
        assert_eq!(boxed.channel_signature(), 0xABCD);
        // Double boxing forwards too.
        let doubly: Box<Box<dyn DecayBackend>> = Box::new(boxed);
        assert_eq!(doubly.channel_signature(), 0xABCD);
        assert_eq!(doubly.decay_at(0, NodeId::new(0), NodeId::new(1)), 2.0);
    }

    #[test]
    fn static_backends_ignore_the_tick() {
        let b = LazyBackend::from_fn(10, line_fn);
        for tick in [0, 7, 1_000_000] {
            assert_eq!(
                b.decay_at(tick, NodeId::new(2), NodeId::new(9)),
                b.decay(NodeId::new(2), NodeId::new(9))
            );
            assert_eq!(
                b.potential_receivers_at(tick, NodeId::new(5), Some(4.0)),
                b.potential_receivers(NodeId::new(5), Some(4.0))
            );
        }
        assert_eq!(b.channel_signature(), 0, "static backends have sig 0");
    }

    #[test]
    fn tiled_eviction_recomputes_consistently() {
        let tiled = TiledBackend::from_fn(64, 16, 1, line_fn);
        let a = tiled.decay(NodeId::new(0), NodeId::new(1));
        let _ = tiled.decay(NodeId::new(60), NodeId::new(63)); // evicts
        let b = tiled.decay(NodeId::new(0), NodeId::new(1)); // recompute
        assert_eq!(a, b);
        assert_eq!(tiled.resident_tiles(), 1);
    }
}
