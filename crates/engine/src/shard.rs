//! A persistent worker pool for sharded SINR resolution.
//!
//! [`ShardPool`] owns `lanes - 1` long-lived worker threads; lane 0 is
//! always the calling thread. One [`ShardPool::broadcast`] runs a job
//! closure once per lane and returns when every lane has finished —
//! a fork/join barrier with no per-tick thread spawns, which matters
//! because `resolve_tick` fires up to three broadcasts per resolution
//! round and a `std::thread::scope` would pay spawn latency on each.
//!
//! The pool carries no job queue: exactly one broadcast is in flight at
//! a time (the engine is `&mut self` on the resolve path), so the job
//! slot is a single epoch-stamped pointer. The pointer's lifetime is
//! erased (the closure borrows the caller's stack), which is sound
//! because `broadcast` does not return — not even by unwinding — until
//! every worker has decremented the completion count.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A lifetime-erased pointer to the in-flight broadcast job. Sending it
/// to workers is sound only under the broadcast completion invariant
/// (the referent outlives every use because `broadcast` blocks).
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (enforced by `broadcast`'s signature)
// and outlives all worker access (enforced by the completion barrier),
// so handing the pointer to worker threads is sound.
unsafe impl Send for JobPtr {}

/// The single job slot shared between the caller and the workers.
struct JobSlot {
    /// Monotone broadcast counter; each worker runs each epoch once.
    epoch: u64,
    /// The current job, present exactly while a broadcast is in flight.
    job: Option<JobPtr>,
    /// Workers that have not yet finished the current epoch's job.
    remaining: usize,
    /// Set once, on drop; workers exit at the next wakeup.
    shutdown: bool,
}

struct PoolShared {
    slot: Mutex<JobSlot>,
    /// Signaled when a new epoch (or shutdown) is published.
    work: Condvar,
    /// Signaled when the last worker finishes an epoch.
    done: Condvar,
    /// Latched by any worker whose job closure panicked; the caller
    /// re-raises after the barrier so a shard panic is never swallowed.
    panicked: AtomicBool,
}

/// A fixed-width fork/join pool: `lanes - 1` parked worker threads plus
/// the calling thread as lane 0.
pub(crate) struct ShardPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    lanes: usize,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("lanes", &self.lanes)
            .finish_non_exhaustive()
    }
}

impl ShardPool {
    /// Spawns a pool with `lanes` total lanes (`lanes - 1` threads).
    ///
    /// # Panics
    ///
    /// Panics if `lanes < 2` (a one-lane pool is the serial path) or if
    /// the OS refuses to spawn a thread.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes >= 2, "a shard pool needs at least two lanes");
        let shared = Arc::new(PoolShared {
            slot: Mutex::new(JobSlot {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        let workers = (1..lanes)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("decay-shard-{lane}"))
                    .spawn(move || worker_loop(&shared, lane))
                    .expect("spawn shard worker")
            })
            .collect();
        ShardPool {
            shared,
            workers,
            lanes,
        }
    }

    /// Total lanes, the caller's included.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Runs `f(lane)` once for every lane in `0..lanes` — lane 0 on the
    /// calling thread, the rest on the pool's workers — and returns once
    /// all lanes have finished. If any lane panicked, the panic is
    /// re-raised here (after the barrier, so the borrowed job is never
    /// left visible to a worker).
    pub fn broadcast(&self, f: &(dyn Fn(usize) + Sync)) {
        // SAFETY: the lifetime erasure is sound because the completion
        // barrier below keeps `f` borrowed for as long as any worker can
        // hold the pointer — broadcast() does not return until every
        // lane has finished and the job slot has been cleared.
        let job = JobPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(f)
        });
        {
            let mut slot = self.shared.slot.lock().expect("shard pool lock");
            slot.job = Some(job);
            slot.epoch += 1;
            slot.remaining = self.workers.len();
            self.shared.work.notify_all();
        }
        // Lane 0 runs here. Its panic must not unwind past the barrier
        // (workers may still be reading the job), so catch and re-raise
        // after everyone is quiescent.
        let caller = catch_unwind(AssertUnwindSafe(|| f(0)));
        let mut slot = self.shared.slot.lock().expect("shard pool lock");
        while slot.remaining > 0 {
            slot = self.shared.done.wait(slot).expect("shard pool lock");
        }
        slot.job = None;
        drop(slot);
        let worker_panicked = self.shared.panicked.swap(false, Ordering::SeqCst);
        match caller {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) if worker_panicked => panic!("shard worker panicked"),
            Ok(()) => {}
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().expect("shard pool lock");
            slot.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, lane: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().expect("shard pool lock");
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != seen {
                    if let Some(job) = slot.job {
                        seen = slot.epoch;
                        break job;
                    }
                }
                slot = shared.work.wait(slot).expect("shard pool lock");
            }
        };
        // SAFETY: the caller is blocked in `broadcast` until this lane
        // decrements `remaining`, so the erased borrow is still live.
        let f = unsafe { &*job.0 };
        if catch_unwind(AssertUnwindSafe(|| f(lane))).is_err() {
            shared.panicked.store(true, Ordering::SeqCst);
        }
        let mut slot = shared.slot.lock().expect("shard pool lock");
        slot.remaining -= 1;
        if slot.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn broadcast_runs_every_lane_every_time() {
        let pool = ShardPool::new(4);
        let hits: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        for _ in 0..200 {
            pool.broadcast(&|lane| {
                hits[lane].fetch_add(1, Ordering::Relaxed);
            });
        }
        for (lane, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 200, "lane {lane}");
        }
    }

    #[test]
    fn broadcast_is_a_barrier() {
        // Each lane writes its own slot; after broadcast returns, every
        // slot must be visible to the caller.
        let pool = ShardPool::new(3);
        let out: Vec<AtomicU64> = (0..3).map(|_| AtomicU64::new(0)).collect();
        for round in 1..50u64 {
            pool.broadcast(&|lane| {
                out[lane].store(round, Ordering::Release);
            });
            for (lane, o) in out.iter().enumerate() {
                assert_eq!(o.load(Ordering::Acquire), round, "lane {lane}");
            }
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ShardPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(&|lane| {
                if lane == 1 {
                    panic!("shard boom");
                }
            });
        }));
        assert!(result.is_err(), "worker panic must reach the caller");
        // The pool stays usable for the next broadcast.
        let ran = AtomicU64::new(0);
        pool.broadcast(&|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn caller_lane_panic_propagates_after_the_barrier() {
        let pool = ShardPool::new(2);
        let worker_ran = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(&|lane| {
                if lane == 0 {
                    panic!("caller boom");
                }
                worker_ran.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        assert_eq!(worker_ran.load(Ordering::Relaxed), 1, "worker completed");
    }
}
