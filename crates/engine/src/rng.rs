//! A small, fast, *serializable* RNG for the engine.
//!
//! The engine cannot use [`rand::rngs::StdRng`] because checkpointing
//! (see [`crate::Checkpoint`]) must capture the exact mid-stream state of
//! every per-node generator, and `StdRng` does not expose or serialize its
//! internals. [`EngineRng`] is xoshiro256++ — 32 bytes of state, full
//! `u64` output, and good enough statistical quality for simulation — with
//! `serde` support so a checkpoint resumes bit-identically.

use rand::{Error, RngCore};
use serde::{Deserialize, Serialize};

use crate::codec::{Codec, CodecError};

/// A serializable xoshiro256++ generator.
///
/// Implements [`rand::RngCore`], so all [`rand::Rng`] conveniences
/// (`gen_range`, `gen_bool`, ...) work on it, including through
/// `&mut dyn RngCore` as handed to node behaviors.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EngineRng {
    s: [u64; 4],
}

/// The splitmix64 step used to expand a 64-bit seed into RNG state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl EngineRng {
    /// Creates a generator from a 64-bit seed (via splitmix64 expansion,
    /// the construction recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        EngineRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// A per-stream generator: mixes `stream` into `seed` so distinct
    /// streams (per-node, churn, fading, ...) are statistically
    /// independent while remaining reproducible from one master seed.
    pub fn for_stream(seed: u64, stream: u64) -> Self {
        Self::seed_from_u64(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Draws a geometric gap with success probability `p` (support `1, 2,
/// ...`): the number of ticks until the next success when each tick
/// succeeds independently with probability `p`. The event-driven
/// replacement for flipping a `p`-coin every slot.
///
/// # Panics
///
/// Panics unless `p` is in `(0, 1]`.
pub fn geometric_gap<R: rand::Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "geometric gap needs p in (0, 1]");
    if p >= 1.0 {
        return 1;
    }
    let u: f64 = rng.gen_range(0.0..1.0);
    // Inverse CDF; `1 - u` is in (0, 1] so the log is finite.
    let k = ((1.0 - u).ln() / (1.0 - p).ln()).floor() as u64;
    k.saturating_add(1)
}

impl Codec for EngineRng {
    fn encode(&self, out: &mut Vec<u8>) {
        for word in self.s {
            word.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = u64::decode(input)?;
        }
        Ok(EngineRng { s })
    }
}

impl RngCore for EngineRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = EngineRng::seed_from_u64(7);
        let mut b = EngineRng::seed_from_u64(7);
        let mut c = EngineRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn streams_differ() {
        let mut a = EngineRng::for_stream(7, 0);
        let mut b = EngineRng::for_stream(7, 1);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn codec_round_trip_resumes_mid_stream() {
        let mut rng = EngineRng::seed_from_u64(3);
        for _ in 0..17 {
            rng.next_u64();
        }
        let bytes = crate::codec::to_bytes(&rng);
        let mut back: EngineRng = crate::codec::from_bytes(&bytes).unwrap();
        assert_eq!(rng, back);
        assert_eq!(rng.next_u64(), back.next_u64());
    }

    #[test]
    fn uniform_draws_cover_unit_interval() {
        let mut rng = EngineRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let u: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.25;
            hi |= u > 0.75;
        }
        assert!(lo && hi);
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut rng = EngineRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
