//! The composable run-observation and run-steering API: typed pause-grid
//! callbacks over a running [`Engine`].
//!
//! # Why a probe seam
//!
//! Every consumer of a run — metrics collection, live ζ(t) monitoring,
//! windowed PRR, completion checks, golden-digest capture — needs the
//! same thing: the engine paused on a fixed tick grid, the delivery
//! records drained since the last pause, and read access to the backend
//! and counters. Hard-coding each consumer into its own drive loop (as
//! the scenario runner, the bench experiments, and the examples each
//! once did) means every new observer is a new loop. A [`Probe`] is that
//! consumer as a value: attach any number of them to one loop and they
//! all see the identical pause stream.
//!
//! # Lifecycle
//!
//! ```text
//!             ┌──────────────────────────────────────────────┐
//!             │ Engine::new(...)                             │
//!             └──────────────────────────────────────────────┘
//!                 │ on_start(PauseCtx { tick: 0, .. })         probes
//!                 ▼
//!         ┌──▶ run_until(next grid tick)                       engine
//!         │       │ drain_trace()
//!         │       ▼
//!         │    on_pause(PauseCtx { tick, batch, .. })          probes
//!         │       │
//!         │       ▼
//!         │    decide(PauseCtx) -> Vec<Directive>              controller
//!         │       │ apply_directives(engine, ..)               (optional)
//!         └───────┘ ... until horizon or completion
//!                 │
//!                 ▼
//!              on_finish(PauseCtx)                             probes
//! ```
//!
//! # Determinism contract
//!
//! Probes are **read-only**: a probe receives `&PauseCtx` and can never
//! mutate the engine, so attaching any subset of probes leaves the event
//! trace — and therefore the trace hash, the golden digests, and the
//! ζ(t) series — bit-identical to a bare run. (The scenario crate's
//! probe-transparency proptest enforces exactly this.)
//!
//! A [`Controller`] is the *deliberate* exception: its grid-aligned
//! [`Directive`]s re-tune behaviors mid-run and are part of the
//! trace-defining configuration, exactly like the spec's protocol
//! parameters. Two rules keep controlled runs reproducible:
//!
//! 1. **Grid alignment** — directives are applied only at pause-grid
//!    ticks, the same grid completion checks use, so an extra pause (a
//!    checkpoint, say) can never shift a decision.
//! 2. **Signature folding** — a controller declares a stable
//!    [`Controller::signature`], the engine records it in every
//!    checkpoint (format v4), and
//!    [`Engine::restore_with_controller`] refuses to resume under a
//!    different controller — the same guard rail that already protects
//!    against resuming under a different temporal channel.
//!
//! A controller whose decisions are a pure function of `(tick,
//! backend)` — like re-tuning from a ζ(t) estimate — is automatically
//! resume-invariant: the restored run re-derives the identical
//! decisions at the identical ticks.

use decay_core::NodeId;
use decay_netsim::PrrTracker;

use crate::backend::DecayBackend;
use crate::engine::{DeliveryRecord, Engine, EngineStats, EventBehavior};
use crate::event::Tick;

/// Everything a probe or controller may consult at one pause of the
/// run: the engine stopped at `tick`, the deliveries drained since the
/// previous pause, and read access to the live backend and counters.
pub struct PauseCtx<'a> {
    /// The tick the engine is paused at.
    pub tick: Tick,
    /// The run's horizon in ticks.
    pub horizon: Tick,
    /// Deliveries recorded since the previous pause (drained from the
    /// engine's trace buffer; empty at `on_start`).
    pub batch: &'a [DeliveryRecord],
    /// The live decay backend (temporal backends answer `decay_at` for
    /// the current tick).
    pub backend: &'a dyn DecayBackend,
    /// Cumulative engine counters at this pause.
    pub stats: EngineStats,
    /// The engine's rolling delivery-trace hash at this pause.
    pub trace_hash: u64,
    /// The engine's hot-path telemetry sink (always-on relaxed
    /// counters; backend-side counters live behind
    /// [`DecayBackend::telemetry`]). Read-only like everything else
    /// here: snapshotting counters cannot perturb the run.
    pub counters: &'a decay_core::telemetry::Counters,
}

impl std::fmt::Debug for PauseCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PauseCtx")
            .field("tick", &self.tick)
            .field("horizon", &self.horizon)
            .field("batch", &self.batch.len())
            .field("stats", &self.stats)
            .field("trace_hash", &self.trace_hash)
            .finish_non_exhaustive()
    }
}

/// A read-only observer of a run, driven on the pause grid.
///
/// All callbacks default to no-ops, so a probe implements only the
/// hooks it needs. See the [module docs](self) for the lifecycle and
/// the determinism contract.
///
/// Probes are `Send`: a run — engine, probes, controller — is one
/// self-contained unit of work that a serving layer parks, resumes,
/// and migrates across worker threads, so every observer must move
/// with it. Probes are plain accumulators (series, counters, digests),
/// so the bound costs implementors nothing.
pub trait Probe: Send {
    /// Called once before the first event fires (`ctx.tick == 0`, empty
    /// batch).
    fn on_start(&mut self, ctx: &PauseCtx<'_>) {
        let _ = ctx;
    }

    /// Called at every pause-grid stop with the deliveries drained
    /// since the previous pause.
    fn on_pause(&mut self, ctx: &PauseCtx<'_>) {
        let _ = ctx;
    }

    /// Called once after the run ends (horizon reached or the driver's
    /// completion condition fired), after a final `on_pause`-equivalent
    /// drain.
    fn on_finish(&mut self, ctx: &PauseCtx<'_>) {
        let _ = ctx;
    }
}

/// A grid-aligned steering decision issued by a [`Controller`].
///
/// Directives speak the vocabulary of [`Tunable`] behaviors rather
/// than concrete behavior types, so one controller drives broadcast,
/// contention, and announce workloads alike.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Directive {
    /// Re-tune one node's transmit probability.
    SetProbability {
        /// The node to re-tune.
        node: NodeId,
        /// The new per-tick transmit probability, in `(0, 1]`.
        p: f64,
    },
    /// Re-tune every node's transmit probability.
    SetAllProbabilities {
        /// The new per-tick transmit probability, in `(0, 1]`.
        p: f64,
    },
}

/// A run-steering extension: grid-aligned decisions that are part of
/// the trace-defining configuration (see the [module docs](self)).
///
/// `Send` for the same reason [`Probe`] is: controllers travel with
/// the run they steer when a session is parked and resumed on another
/// worker thread.
pub trait Controller: Send {
    /// A stable fingerprint of this controller's identity and
    /// parameters. Folded into every checkpoint the engine takes (0 =
    /// no controller); [`Engine::restore_with_controller`] refuses a
    /// mismatch. Use [`signature_hash`] to derive one from the
    /// parameter bytes.
    fn signature(&self) -> u64;

    /// Called at every pause-grid stop, after the probes. Returning an
    /// empty vector means "no change this pause" — controllers acting
    /// on a coarser grid (per coherence block, say) simply return
    /// nothing off their own grid.
    fn decide(&mut self, ctx: &PauseCtx<'_>) -> Vec<Directive>;
}

/// Behaviors that expose a re-tunable transmit probability — the hook
/// [`Directive`]s act through. Behaviors without such a knob can
/// implement this as a no-op.
pub trait Tunable {
    /// Sets the behavior's per-tick transmit probability. Takes effect
    /// from the next scheduling decision; in-flight wake-ups are not
    /// rescheduled (re-tuning is a forward-looking configuration
    /// change, which is what keeps it checkpoint-safe).
    fn set_probability(&mut self, p: f64);
}

/// FNV-1a over `bytes`, seeded with `tag` — the helper controllers use
/// to derive a stable [`Controller::signature`] from their parameters.
pub fn signature_hash(tag: u64, bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    for byte in tag.to_le_bytes().iter().chain(bytes) {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Applies a controller's directives to the engine's behaviors.
///
/// # Panics
///
/// Panics if a directive names an out-of-range node or a probability
/// outside `(0, 1]` — controller bugs, surfaced loudly.
pub fn apply_directives<B: EventBehavior + Tunable>(
    engine: &mut Engine<B>,
    directives: &[Directive],
) {
    let check = |p: f64| {
        assert!(
            p.is_finite() && p > 0.0 && p <= 1.0,
            "directive probability {p} outside (0, 1]"
        );
    };
    for d in directives {
        match *d {
            Directive::SetProbability { node, p } => {
                check(p);
                engine.behavior_mut(node).set_probability(p);
            }
            Directive::SetAllProbabilities { p } => {
                check(p);
                for i in 0..engine.len() {
                    engine.behavior_mut(NodeId::new(i)).set_probability(p);
                }
            }
        }
    }
}

/// Which lifecycle callback a pause corresponds to.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    Start,
    Pause,
    Finish,
}

/// Drains the engine's trace buffer once, assembles the [`PauseCtx`]
/// for its current state, and runs `f` with it — the single place the
/// context is built, shared by the drivers here and by custom loops
/// (the scenario runner's checkpoint-aware drive composes over this).
/// The context borrows the engine only inside the call, so the caller
/// is free to mutate the engine (apply directives, checkpoint)
/// afterwards with `f`'s return value in hand.
pub fn with_pause<B: EventBehavior, R>(
    engine: &mut Engine<B>,
    horizon: Tick,
    f: impl FnOnce(&PauseCtx<'_>) -> R,
) -> R {
    let batch = engine.drain_trace();
    let ctx = PauseCtx {
        tick: engine.now(),
        horizon,
        batch: &batch,
        backend: engine.backend(),
        stats: engine.stats(),
        trace_hash: engine.trace_hash(),
        counters: engine.telemetry(),
    };
    f(&ctx)
}

/// Feeds the probes the phase-appropriate callback at one pause and
/// returns the controller's directives (empty without a controller).
fn pause_probes<B: EventBehavior>(
    engine: &mut Engine<B>,
    horizon: Tick,
    phase: Phase,
    probes: &mut [&mut dyn Probe],
    decide: &mut dyn FnMut(&PauseCtx<'_>) -> Vec<Directive>,
) -> Vec<Directive> {
    with_pause(engine, horizon, |ctx| {
        for p in probes.iter_mut() {
            match phase {
                Phase::Start => p.on_start(ctx),
                Phase::Pause => p.on_pause(ctx),
                Phase::Finish => p.on_finish(ctx),
            }
        }
        if phase == Phase::Finish {
            Vec::new()
        } else {
            decide(ctx)
        }
    })
}

/// Drives `engine` to `horizon` on the `check_interval` pause grid,
/// feeding every probe the full lifecycle (`on_start`, `on_pause` per
/// grid stop, `on_finish`). Returns the final stats.
///
/// This is the loop the examples and bench experiments compose with;
/// the scenario runner's `drive` adds completion checks and
/// checkpoint/resume on top of the same [`PauseCtx`] stream.
///
/// # Panics
///
/// Panics if `check_interval` is zero.
pub fn drive_probed<B: EventBehavior>(
    engine: &mut Engine<B>,
    horizon: Tick,
    check_interval: Tick,
    probes: &mut [&mut dyn Probe],
) -> EngineStats {
    drive(
        engine,
        horizon,
        check_interval,
        probes,
        &mut |_| Vec::new(),
        &mut |_, _| {},
        &mut |_| false,
    );
    engine.stats()
}

/// [`drive_probed`] with a completion predicate evaluated at every
/// pause-grid stop (after the probes observe it): returns the tick at
/// which `done` first held, or `None` when the horizon ran out — the
/// building block for protocol drivers that stop early (local
/// broadcast coverage, contention delivery).
///
/// # Panics
///
/// Panics if `check_interval` is zero.
pub fn drive_until<B: EventBehavior>(
    engine: &mut Engine<B>,
    horizon: Tick,
    check_interval: Tick,
    probes: &mut [&mut dyn Probe],
    mut done: impl FnMut(&Engine<B>) -> bool,
) -> Option<Tick> {
    drive(
        engine,
        horizon,
        check_interval,
        probes,
        &mut |_| Vec::new(),
        &mut |_, _| {},
        &mut done,
    )
}

/// [`drive_probed`] with a [`Controller`] steering the run: after the
/// probes observe each pause, the controller's directives are applied
/// to the behaviors. The caller is responsible for having set
/// [`Engine::set_controller_signature`] if checkpoints are taken.
///
/// # Panics
///
/// Panics if `check_interval` is zero or a directive is out of range.
pub fn drive_controlled<B: EventBehavior + Tunable>(
    engine: &mut Engine<B>,
    horizon: Tick,
    check_interval: Tick,
    probes: &mut [&mut dyn Probe],
    controller: &mut dyn Controller,
) -> EngineStats {
    drive(
        engine,
        horizon,
        check_interval,
        probes,
        &mut |ctx| controller.decide(ctx),
        &mut |engine, directives| apply_directives(engine, directives),
        &mut |_| false,
    );
    engine.stats()
}

fn drive<B: EventBehavior>(
    engine: &mut Engine<B>,
    horizon: Tick,
    check_interval: Tick,
    probes: &mut [&mut dyn Probe],
    decide: &mut dyn FnMut(&PauseCtx<'_>) -> Vec<Directive>,
    apply: &mut dyn FnMut(&mut Engine<B>, &[Directive]),
    done: &mut dyn FnMut(&Engine<B>) -> bool,
) -> Option<Tick> {
    assert!(check_interval > 0, "check_interval must be at least 1");
    let directives = pause_probes(engine, horizon, Phase::Start, probes, decide);
    apply(engine, &directives);
    let mut completed_at = None;
    while engine.now() < horizon {
        let next = ((engine.now() / check_interval + 1) * check_interval).min(horizon);
        engine.run_until(next);
        let directives = pause_probes(engine, horizon, Phase::Pause, probes, decide);
        apply(engine, &directives);
        if done(engine) {
            completed_at = Some(engine.now());
            break;
        }
    }
    pause_probes(engine, horizon, Phase::Finish, probes, decide);
    completed_at
}

/// One sample of the windowed packet-reception-ratio series: traffic
/// totals over one fixed-length tick window.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PrrWindowSample {
    /// First tick after the window (`tick - window .. tick`).
    pub tick: Tick,
    /// Transmissions attempted within the window.
    pub transmissions: u64,
    /// Deliveries that arrived within the window.
    pub deliveries: u64,
    /// `deliveries / transmissions` (0 when nothing transmitted) — the
    /// per-window reception yield whose drift the lifetime PRR hides.
    /// Under a broadcast medium one transmission can deliver to many
    /// listeners, so this can exceed 1.
    pub prr: f64,
}

/// The windowed-PRR probe: folds each pause's delivery batch into a
/// [`decay_netsim::PrrTracker`] sliding window (for per-pair queries)
/// and emits one [`PrrWindowSample`] per elapsed window (for the
/// report-level series).
///
/// Window boundaries are fixed multiples of `window` ticks, so the
/// emitted series is invariant to *how often* the driver pauses — an
/// extra checkpoint pause inside a window changes nothing, as long as
/// the driver also pauses at every boundary (the scenario runner
/// validates `window` as a multiple of its `check_interval`).
#[derive(Debug, Clone)]
pub struct WindowedPrr {
    window: Tick,
    tracker: PrrTracker,
    samples: Vec<PrrWindowSample>,
    /// Cumulative counters at the last emitted boundary.
    at_boundary: (u64, u64),
    /// The next boundary tick to emit at.
    next_boundary: Tick,
    /// Deliveries of the current window, for the tracker feed.
    pending: Vec<(NodeId, NodeId)>,
}

impl WindowedPrr {
    /// A probe sampling every `window` ticks over `n` nodes, keeping
    /// the last `keep_windows` windows in the pair-level tracker.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `keep_windows` is zero.
    pub fn new(n: usize, window: Tick, keep_windows: usize) -> Self {
        assert!(window > 0, "window must be at least one tick");
        WindowedPrr {
            window,
            tracker: PrrTracker::with_window(n, keep_windows),
            samples: Vec::new(),
            at_boundary: (0, 0),
            next_boundary: window,
            pending: Vec::new(),
        }
    }

    /// The window length in ticks.
    pub fn window(&self) -> Tick {
        self.window
    }

    /// The pair-level sliding-window tracker fed from the run's
    /// delivery batches (attempts are per *delivering* transmission:
    /// the engine trace records deliveries, not silent attempts).
    pub fn tracker(&self) -> &PrrTracker {
        &self.tracker
    }

    /// The samples emitted so far.
    pub fn samples(&self) -> &[PrrWindowSample] {
        &self.samples
    }

    /// Consumes the probe, yielding the series.
    pub fn into_samples(self) -> Vec<PrrWindowSample> {
        self.samples
    }

    fn absorb(&mut self, ctx: &PauseCtx<'_>) {
        self.pending
            .extend(ctx.batch.iter().map(|r| (r.from, r.to)));
        while ctx.tick >= self.next_boundary {
            // A driver that skips a boundary (window not a multiple of
            // its pause grid) would silently misattribute traffic to
            // the wrong windows; fail loudly instead.
            assert_eq!(
                ctx.tick, self.next_boundary,
                "WindowedPrr window ({}) must align with the drive pause \
                 grid: no pause landed on the window boundary",
                self.window
            );
            self.emit(ctx.stats);
        }
    }

    /// Emits the sample for the window ending at `next_boundary`. The
    /// cumulative counters at a boundary are pause-pattern-invariant
    /// (the driver always pauses exactly there), so the series is too.
    fn emit(&mut self, stats: EngineStats) {
        let (tx0, dv0) = self.at_boundary;
        let transmissions = stats.transmissions - tx0;
        let deliveries = stats.deliveries - dv0;
        self.samples.push(PrrWindowSample {
            tick: self.next_boundary,
            transmissions,
            deliveries,
            prr: if transmissions == 0 {
                0.0
            } else {
                deliveries as f64 / transmissions as f64
            },
        });
        let slot = usize::try_from(self.next_boundary / self.window).unwrap_or(usize::MAX);
        let mut transmitters: Vec<NodeId> = self.pending.iter().map(|&(f, _)| f).collect();
        transmitters.sort_unstable();
        transmitters.dedup();
        let deliveries_in_window = std::mem::take(&mut self.pending);
        self.tracker
            .record_window(slot, &transmitters, &deliveries_in_window);
        self.at_boundary = (stats.transmissions, stats.deliveries);
        self.next_boundary += self.window;
    }
}

impl Probe for WindowedPrr {
    fn on_pause(&mut self, ctx: &PauseCtx<'_>) {
        self.absorb(ctx);
    }

    fn on_finish(&mut self, ctx: &PauseCtx<'_>) {
        // The final partial window (horizon not a multiple of `window`)
        // is dropped by design: a shorter window would not be
        // comparable to the others. Full windows were already emitted
        // at their boundaries.
        self.absorb(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::LazyBackend;
    use crate::engine::{EngineConfig, NodeCtx};
    use decay_sinr::SinrParams;

    #[derive(Clone)]
    struct Chatter {
        p: f64,
    }

    impl EventBehavior for Chatter {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.listen();
            let gap = crate::rng::geometric_gap(ctx.rng, self.p);
            ctx.wake_in(gap);
        }
        fn on_wake(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.transmit(1.0, ctx.node.index() as u64);
            ctx.listen();
            let gap = crate::rng::geometric_gap(ctx.rng, self.p);
            ctx.wake_in(gap);
        }
    }

    impl Tunable for Chatter {
        fn set_probability(&mut self, p: f64) {
            self.p = p;
        }
    }

    fn line_engine(n: usize, seed: u64) -> Engine<Chatter> {
        let backend = LazyBackend::from_fn(n, |i, j| ((i as f64) - (j as f64)).abs().powi(2));
        let behaviors = (0..n).map(|_| Chatter { p: 0.2 }).collect();
        Engine::new(
            backend,
            behaviors,
            SinrParams::default(),
            EngineConfig {
                record_trace: true,
                ..EngineConfig::default()
            },
            seed,
        )
        .expect("engine builds")
    }

    /// Counts lifecycle callbacks and checks the pause stream shape.
    #[derive(Default)]
    struct Recorder {
        starts: usize,
        pauses: Vec<Tick>,
        finishes: usize,
        batch_total: usize,
    }

    impl Probe for Recorder {
        fn on_start(&mut self, ctx: &PauseCtx<'_>) {
            assert_eq!(ctx.tick, 0);
            assert!(ctx.batch.is_empty());
            self.starts += 1;
        }
        fn on_pause(&mut self, ctx: &PauseCtx<'_>) {
            self.pauses.push(ctx.tick);
            self.batch_total += ctx.batch.len();
        }
        fn on_finish(&mut self, ctx: &PauseCtx<'_>) {
            assert!(ctx.tick >= ctx.horizon);
            self.finishes += 1;
        }
    }

    #[test]
    fn probed_drive_feeds_full_lifecycle_and_leaves_trace_unchanged() {
        let mut bare = line_engine(12, 7);
        bare.run_until(100);
        let bare_hash = bare.trace_hash();
        let bare_stats = bare.stats();

        let mut probed = line_engine(12, 7);
        let mut rec = Recorder::default();
        let mut prr = WindowedPrr::new(12, 25, 4);
        let stats = drive_probed(&mut probed, 100, 25, &mut [&mut rec, &mut prr]);
        assert_eq!(probed.trace_hash(), bare_hash, "probes perturbed the run");
        assert_eq!(stats, bare_stats);
        assert_eq!(rec.starts, 1);
        assert_eq!(rec.finishes, 1);
        assert_eq!(rec.pauses, vec![25, 50, 75, 100]);
        assert_eq!(
            rec.batch_total as u64, bare_stats.deliveries,
            "drained batches must cover every delivery exactly once"
        );
        // Four full windows, cumulative totals matching the stats.
        assert_eq!(prr.samples().len(), 4);
        let tx: u64 = prr.samples().iter().map(|s| s.transmissions).sum();
        let dv: u64 = prr.samples().iter().map(|s| s.deliveries).sum();
        assert_eq!(tx, bare_stats.transmissions);
        assert_eq!(dv, bare_stats.deliveries);
        for s in prr.samples() {
            assert!(s.prr >= 0.0);
        }
    }

    #[test]
    fn windowed_prr_series_is_invariant_to_extra_pauses() {
        let run = |check: Tick| {
            let mut engine = line_engine(10, 3);
            let mut prr = WindowedPrr::new(10, 20, 3);
            drive_probed(&mut engine, 120, check, &mut [&mut prr]);
            (engine.trace_hash(), prr.into_samples())
        };
        // check_interval 20 pauses only at boundaries; 5 and 10 pause
        // inside windows too. The emitted series must be identical.
        let (h20, s20) = run(20);
        let (h5, s5) = run(5);
        let (h10, s10) = run(10);
        assert_eq!(h20, h5);
        assert_eq!(h20, h10);
        assert_eq!(s20, s5);
        assert_eq!(s20, s10);
        assert_eq!(s20.len(), 6);
    }

    struct Throttle {
        at: Tick,
        p: f64,
    }

    impl Controller for Throttle {
        fn signature(&self) -> u64 {
            signature_hash(1, &self.at.to_le_bytes())
        }
        fn decide(&mut self, ctx: &PauseCtx<'_>) -> Vec<Directive> {
            if ctx.tick == self.at {
                vec![Directive::SetAllProbabilities { p: self.p }]
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn controller_directives_change_the_trace_deterministically() {
        let controlled = |p: f64| {
            let mut engine = line_engine(10, 5);
            let mut ctl = Throttle { at: 50, p };
            drive_controlled(&mut engine, 200, 25, &mut [], &mut ctl);
            (engine.trace_hash(), engine.stats())
        };
        let (quiet_hash, quiet) = controlled(0.01);
        let (loud_hash, loud) = controlled(0.9);
        assert_ne!(quiet_hash, loud_hash, "directives must steer the run");
        assert!(loud.transmissions > quiet.transmissions);
        // Deterministic: the same controlled run reproduces exactly.
        assert_eq!(controlled(0.01).0, quiet_hash);
    }

    #[test]
    fn signature_hash_separates_parameters() {
        assert_ne!(signature_hash(1, &[1, 2, 3]), signature_hash(1, &[1, 2]));
        assert_ne!(signature_hash(1, &[]), signature_hash(2, &[]));
    }
}
