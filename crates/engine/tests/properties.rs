//! Property-based tests for the engine's determinism and checkpointing
//! contracts (mirroring the style of `crates/core/tests/properties.rs`):
//! same seed ⇒ identical event trace; checkpoint/restore ⇒ bit-identical
//! continuation, including through the byte codec.

use decay_core::NodeId;
use decay_engine::{
    Checkpoint, ChurnConfig, Codec, CodecError, DenseBackend, Engine, EngineConfig, EventBehavior,
    JamSchedule, LatencyModel, LazyBackend, NodeCtx, SlotAdapter, Tick,
};
use decay_netsim::{Action, FaultPlan, NodeBehavior, ReceptionModel, SlotContext};
use decay_sinr::SinrParams;
use proptest::prelude::*;
use rand::Rng;

/// A chatty test behavior: transmits with probability `p` at each wake,
/// wakes every 1–3 ticks, and remembers everything it hears.
#[derive(Debug, Clone, PartialEq)]
struct Chirper {
    p: f64,
    heard: Vec<(Tick, u64)>,
    acks: u64,
}

impl Chirper {
    fn new(p: f64) -> Self {
        Chirper {
            p,
            heard: Vec::new(),
            acks: 0,
        }
    }
}

impl EventBehavior for Chirper {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.listen();
        let gap: u64 = ctx.rng.gen_range(1..4);
        ctx.wake_in(gap);
    }

    fn on_wake(&mut self, ctx: &mut NodeCtx<'_>) {
        if ctx.rng.gen_range(0.0..1.0) < self.p {
            ctx.transmit(1.0, ctx.node.index() as u64);
            ctx.listen();
        }
        let gap: u64 = ctx.rng.gen_range(1..4);
        ctx.wake_in(gap);
    }

    fn on_receive(&mut self, ctx: &mut NodeCtx<'_>, _from: NodeId, message: u64, _power: f64) {
        self.heard.push((ctx.now, message));
    }

    fn on_transmit_result(&mut self, _ctx: &mut NodeCtx<'_>, receivers: &[NodeId]) {
        self.acks += receivers.len() as u64;
    }
}

impl Codec for Chirper {
    fn encode(&self, out: &mut Vec<u8>) {
        self.p.encode(out);
        self.heard.encode(out);
        self.acks.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Chirper {
            p: f64::decode(input)?,
            heard: Codec::decode(input)?,
            acks: u64::decode(input)?,
        })
    }
}

fn line_backend(n: usize) -> DenseBackend {
    DenseBackend::new(
        decay_core::DecaySpace::from_fn(n, |i, j| ((i as f64) - (j as f64)).abs().powi(2)).unwrap(),
    )
}

/// A varied but valid engine config derived from three knobs.
fn config_from(churn: bool, jam: bool, latency: u8) -> EngineConfig {
    EngineConfig {
        reception: ReceptionModel::Rayleigh,
        latency: match latency % 3 {
            0 => LatencyModel::Immediate,
            1 => LatencyModel::Fixed { ticks: 2 },
            _ => LatencyModel::Jittered { base: 1, jitter: 2 },
        },
        churn: churn.then_some(ChurnConfig {
            interval: 3,
            leave_prob: 0.3,
            join_prob: 0.7,
        }),
        jamming: if jam {
            JamSchedule::Random { prob: 0.2 }
        } else {
            JamSchedule::None
        },
        faults: FaultPlan::none().with_outage(NodeId::new(0), 5, 12),
        record_trace: true,
        ..EngineConfig::default()
    }
}

fn build(n: usize, seed: u64, cfg: &EngineConfig) -> Engine<Chirper> {
    Engine::new(
        line_backend(n),
        (0..n).map(|_| Chirper::new(0.4)).collect(),
        SinrParams::new(1.0, 0.05).unwrap(),
        cfg.clone(),
        seed,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed, same config => identical delivery traces, stats, and
    /// complete engine state.
    #[test]
    fn same_seed_same_trace(
        n in 3usize..10,
        seed in 0u64..1000,
        churn in 0u8..2,
        jam in 0u8..2,
        latency in 0u8..3,
    ) {
        let cfg = config_from(churn == 1, jam == 1, latency);
        let mut a = build(n, seed, &cfg);
        let mut b = build(n, seed, &cfg);
        a.run_until(40);
        b.run_until(40);
        prop_assert_eq!(a.trace_hash(), b.trace_hash());
        prop_assert_eq!(a.trace(), b.trace());
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.checkpoint(), b.checkpoint());
    }

    /// `threads` is a pure execution knob: resolving across 2 or 4
    /// spatial shards reproduces the serial trace bit for bit — hash,
    /// delivery records, stats, and checkpoint bytes — under churn,
    /// jamming, jitter, faults, and Rayleigh fading all at once.
    #[test]
    fn lane_count_never_changes_the_trace(
        n in 3usize..12,
        seed in 0u64..1000,
        churn in 0u8..2,
        jam in 0u8..2,
        latency in 0u8..3,
        lanes in 2usize..5,
    ) {
        let cfg = config_from(churn == 1, jam == 1, latency);
        let sharded_cfg = EngineConfig { threads: lanes, ..cfg.clone() };
        let mut serial = build(n, seed, &cfg);
        let mut sharded = build(n, seed, &sharded_cfg);
        serial.run_until(40);
        sharded.run_until(40);
        prop_assert_eq!(serial.trace_hash(), sharded.trace_hash());
        prop_assert_eq!(serial.trace(), sharded.trace());
        prop_assert_eq!(serial.stats(), sharded.stats());
        // The checkpoints agree too: `threads` is excluded from config
        // equality and from the codec, so the sharded engine's snapshot
        // is byte-for-byte the serial one's.
        prop_assert_eq!(
            serial.checkpoint().to_bytes(),
            sharded.checkpoint().to_bytes()
        );
    }

    /// A checkpoint taken mid-run resumes to a state bit-identical to the
    /// uninterrupted run — including through the byte codec.
    #[test]
    fn checkpoint_resumes_bit_identically(
        n in 3usize..10,
        seed in 0u64..1000,
        churn in 0u8..2,
        jam in 0u8..2,
        latency in 0u8..3,
        split in 5u64..35,
    ) {
        let cfg = config_from(churn == 1, jam == 1, latency);
        let mut original = build(n, seed, &cfg);
        original.run_until(split);
        let snapshot = original.checkpoint();
        original.run_until(40);

        // In-memory restore.
        let mut resumed = Engine::restore(line_backend(n), snapshot.clone()).unwrap();
        resumed.run_until(40);
        prop_assert_eq!(original.trace_hash(), resumed.trace_hash());
        prop_assert_eq!(original.checkpoint(), resumed.checkpoint());

        // Byte-level round trip (real persistence, not just cloning).
        let bytes = snapshot.to_bytes();
        let decoded: Checkpoint<Chirper> = Checkpoint::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&decoded, &snapshot);
        let mut from_bytes = Engine::restore(line_backend(n), decoded).unwrap();
        from_bytes.run_until(40);
        prop_assert_eq!(original.trace_hash(), from_bytes.trace_hash());
        prop_assert_eq!(original.checkpoint(), from_bytes.checkpoint());
    }

    /// Checkpoints are stable through encode/decode even when taken at
    /// arbitrary points, and corrupting the bytes is detected.
    #[test]
    fn checkpoint_bytes_reject_corruption(
        n in 3usize..8,
        seed in 0u64..200,
        at in 1u64..30,
    ) {
        let cfg = config_from(true, false, 0);
        let mut engine = build(n, seed, &cfg);
        engine.run_until(at);
        let bytes = engine.checkpoint().to_bytes();
        // Truncation is always detected.
        prop_assert!(Checkpoint::<Chirper>::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        // Wrong magic is always detected.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        prop_assert!(Checkpoint::<Chirper>::from_bytes(&bad).is_err());
    }
}

/// Controller identity is part of the checkpoint (format v4): a
/// checkpoint taken under one controller signature refuses to restore
/// under another, mirroring the channel-signature guard.
#[test]
fn controller_signature_is_folded_into_checkpoints() {
    let cfg = config_from(false, false, 0);
    let mut engine = build(6, 3, &cfg);
    let sig = decay_engine::probe::signature_hash(7, &[1, 2, 3]);
    engine.set_controller_signature(sig);
    assert_eq!(engine.controller_signature(), sig);
    engine.run_until(10);
    let bytes = engine.checkpoint().to_bytes();
    let decoded: Checkpoint<Chirper> = Checkpoint::from_bytes(&bytes).unwrap();
    assert_eq!(decoded.controller_signature(), sig);

    // The matching signature restores; a mismatch is refused.
    let restored = Engine::restore_with_controller(line_backend(6), decoded.clone(), sig).unwrap();
    assert_eq!(restored.controller_signature(), sig);
    let err = Engine::restore_with_controller(line_backend(6), decoded.clone(), 0).unwrap_err();
    assert!(matches!(
        err,
        decay_engine::EngineError::ControllerMismatch { expected, found }
            if expected == sig && found == 0
    ));
    // Plain restore carries the signature along for callers that manage
    // their own verification.
    let carried = Engine::restore(line_backend(6), decoded).unwrap();
    assert_eq!(carried.controller_signature(), sig);
}

#[test]
fn different_seeds_diverge() {
    let cfg = config_from(false, false, 0);
    let mut a = build(8, 1, &cfg);
    let mut b = build(8, 2, &cfg);
    a.run_until(60);
    b.run_until(60);
    assert_ne!(a.trace_hash(), b.trace_hash());
    assert!(a.stats().deliveries > 0, "no traffic at all");
}

#[test]
fn churn_takes_nodes_down_and_back() {
    let cfg = EngineConfig {
        churn: Some(ChurnConfig {
            interval: 1,
            leave_prob: 0.5,
            join_prob: 0.5,
        }),
        record_trace: true,
        ..EngineConfig::default()
    };
    let mut engine = build(10, 7, &cfg);
    engine.run_until(300);
    let stats = engine.stats();
    assert!(stats.churn_leaves > 0, "no node ever left");
    assert!(stats.churn_joins > 0, "no node ever rejoined");
    // Deliveries to churned-out nodes were dropped, not delivered.
    assert!(stats.deliveries > 0);
}

#[test]
fn fault_plan_freezes_and_resumes_wakes() {
    // Node 0 is down for ticks [2, 30); its wakes must resume after.
    let cfg = EngineConfig {
        faults: FaultPlan::none().with_outage(NodeId::new(0), 2, 30),
        record_trace: true,
        ..EngineConfig::default()
    };
    let mut engine = build(4, 3, &cfg);
    engine.run_until(100);
    // Node 0 heard nothing during the outage window...
    let heard_in_outage = engine
        .behavior(NodeId::new(0))
        .heard
        .iter()
        .filter(|(t, _)| (2..30).contains(t))
        .count();
    assert_eq!(heard_in_outage, 0);
    // ...but resumed participating afterwards.
    let heard_after = engine
        .behavior(NodeId::new(0))
        .heard
        .iter()
        .filter(|(t, _)| *t >= 30)
        .count();
    assert!(heard_after > 0, "node 0 never resumed after its outage");
}

/// The slot adapter runs unmodified `decay_netsim` behaviors with
/// slot-equivalent semantics: transmitters never hear their own tick,
/// listeners capture under SINR, acks arrive.
#[test]
fn slot_adapter_runs_netsim_behaviors() {
    #[derive(Debug, Clone, PartialEq)]
    struct Aloha {
        p: f64,
        received: Vec<(NodeId, u64)>,
        acks: usize,
    }

    impl NodeBehavior for Aloha {
        fn on_slot(&mut self, ctx: &mut SlotContext<'_>) -> Action {
            if ctx.rng.gen_range(0.0..1.0) < self.p {
                Action::Transmit {
                    power: 1.0,
                    message: ctx.node.index() as u64,
                }
            } else {
                Action::Listen
            }
        }
        fn on_receive(&mut self, from: NodeId, message: u64, _power: f64) {
            self.received.push((from, message));
        }
        fn on_transmit_result(&mut self, receivers: usize) {
            self.acks += receivers;
        }
    }

    let n = 6;
    let behaviors = (0..n)
        .map(|_| {
            SlotAdapter::new(Aloha {
                p: 0.3,
                received: Vec::new(),
                acks: 0,
            })
        })
        .collect();
    let mut engine = Engine::new(
        line_backend(n),
        behaviors,
        SinrParams::default(),
        EngineConfig::default(),
        11,
    )
    .unwrap();
    engine.run_until(200);
    let stats = engine.stats();
    assert!(stats.transmissions > 0);
    assert!(stats.deliveries > 0);
    let total_received: usize = (0..n)
        .map(|i| engine.behavior(NodeId::new(i)).inner().received.len())
        .sum();
    let total_acks: usize = (0..n)
        .map(|i| engine.behavior(NodeId::new(i)).inner().acks)
        .sum();
    assert_eq!(total_received as u64, stats.deliveries);
    assert_eq!(total_acks as u64, stats.deliveries);
}

/// Lazy and dense backends over the same decay function produce the same
/// trace under the same seed.
#[test]
fn lazy_and_dense_backends_agree() {
    let n = 12;
    let cfg = EngineConfig {
        record_trace: true,
        ..EngineConfig::default()
    };
    let mut dense = build(n, 5, &cfg);
    let lazy = LazyBackend::from_fn(n, |i, j| ((i as f64) - (j as f64)).abs().powi(2));
    let mut from_lazy = Engine::new(
        lazy,
        (0..n).map(|_| Chirper::new(0.4)).collect(),
        SinrParams::new(1.0, 0.05).unwrap(),
        cfg,
        5,
    )
    .unwrap();
    dense.run_until(80);
    from_lazy.run_until(80);
    assert_eq!(dense.trace_hash(), from_lazy.trace_hash());
    assert_eq!(dense.trace(), from_lazy.trace());
}
