//! Integration properties: an unmodified `decay-engine` running over
//! temporal channels keeps every determinism guarantee the static
//! backends have — bit-identical reruns, checkpoint/resume invariance
//! (now with channel-signature verification), and bit-identical gain
//! replay through the JSON trace format.

use decay_channel::{
    FadingConfig, GainTrace, MetricityMonitor, MobilityConfig, MobilityModel, ShadowingConfig,
    TemporalAdapter, TemporalChannel, TraceChannel,
};
use decay_core::NodeId;
use decay_engine::{
    Checkpoint, DecayBackend, DenseBackend, Engine, EngineConfig, EngineError, EventBehavior,
    LazyBackend, NodeCtx, TiledBackend,
};
use decay_sinr::SinrParams;
use decay_spaces::{distance, geometric_space, line_points};
use proptest::prelude::*;
use rand::Rng;

/// Gossip behavior: listen, transmit at geometric intervals.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
struct Gossiper {
    heard: u64,
}

impl decay_engine::Codec for Gossiper {
    fn encode(&self, out: &mut Vec<u8>) {
        self.heard.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, decay_engine::CodecError> {
        Ok(Gossiper {
            heard: u64::decode(input)?,
        })
    }
}

impl EventBehavior for Gossiper {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.listen();
        let gap = 1 + ctx.rng.gen_range(0..6u64);
        ctx.wake_in(gap);
    }
    fn on_wake(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.transmit(1.0, ctx.node.index() as u64);
        ctx.listen();
        let gap = 1 + ctx.rng.gen_range(0..6u64);
        ctx.wake_in(gap);
    }
    fn on_receive(&mut self, _ctx: &mut NodeCtx<'_>, _from: NodeId, _msg: u64, _p: f64) {
        self.heard += 1;
    }
}

const N: usize = 14;

fn base() -> LazyBackend {
    LazyBackend::from_fn(N, |i, j| ((i as f64) - (j as f64)).abs().powi(2))
}

/// A channel with every generative layer on, parameterized by seed.
fn stormy_channel(seed: u64, block_len: u64) -> TemporalAdapter {
    TemporalAdapter::new(
        TemporalChannel::new(base(), line_points(N, 1.0), 2.0, block_len)
            .with_geometric_hints()
            .with_mobility(MobilityConfig {
                model: MobilityModel::RandomWaypoint {
                    speed: 0.5,
                    pause: 1,
                },
                seed,
            })
            .with_shadowing(ShadowingConfig {
                sigma_db: 4.0,
                corr_dist: 3.0,
                time_corr: 0.7,
                seed: seed ^ 0xA5,
            })
            .with_fading(FadingConfig { seed: seed ^ 0x5A }),
    )
}

fn engine_over(backend: impl DecayBackend + 'static, seed: u64) -> Engine<Gossiper> {
    let behaviors = (0..N).map(|_| Gossiper { heard: 0 }).collect();
    let config = EngineConfig {
        reach_decay: Some(36.0),
        top_k: Some(5),
        record_trace: false,
        ..EngineConfig::default()
    };
    Engine::new(backend, behaviors, SinrParams::default(), config, seed).expect("engine builds")
}

#[test]
fn temporal_runs_are_deterministic_and_channel_sensitive() {
    let run = |ch_seed: u64| {
        let mut e = engine_over(stormy_channel(ch_seed, 8), 7);
        e.run_until(300);
        (e.trace_hash(), e.stats())
    };
    let (h1, s1) = run(1);
    let (h2, s2) = run(1);
    let (h3, _) = run(2);
    assert_eq!(h1, h2, "same channel seed, same trace");
    assert_eq!(s1, s2);
    assert_ne!(h1, h3, "channel seed must shape the trace");
    assert!(s1.deliveries > 0, "no traffic simulated");
}

#[test]
fn bare_temporal_channel_matches_the_static_backend() {
    let mut plain = engine_over(base(), 7);
    let bare = TemporalAdapter::new(TemporalChannel::new(base(), line_points(N, 1.0), 2.0, 8));
    let mut wrapped = engine_over(bare, 7);
    plain.run_until(300);
    wrapped.run_until(300);
    assert_eq!(plain.trace_hash(), wrapped.trace_hash());
    assert_eq!(plain.stats(), wrapped.stats());
}

#[test]
fn trace_export_replays_bit_identically_through_json() {
    // Capture the generative channel's gain field...
    let channel = TemporalChannel::new(base(), line_points(N, 1.0), 2.0, 8)
        .with_mobility(MobilityConfig {
            model: MobilityModel::LevyWalk {
                scale: 0.3,
                exponent: 1.4,
                cap: 2.5,
            },
            seed: 3,
        })
        .with_fading(FadingConfig { seed: 11 });
    let horizon = 300u64;
    let trace = GainTrace::capture(&channel, horizon / 8 + 1);
    let json = trace.to_json_string();

    // ...run the original, then replay the shipped JSON.
    let mut original = engine_over(TemporalAdapter::new(channel), 7);
    original.run_until(horizon);
    let replayed_trace = GainTrace::from_json_str(&json).expect("trace parses");
    let mut replay = engine_over(TemporalAdapter::new(TraceChannel::new(replayed_trace)), 7);
    replay.run_until(horizon);
    assert_eq!(
        original.trace_hash(),
        replay.trace_hash(),
        "replayed gains must reproduce the event trace bit for bit"
    );
    assert_eq!(original.stats(), replay.stats());
}

#[test]
fn restore_rejects_a_different_channel() {
    let mut engine = engine_over(stormy_channel(1, 8), 7);
    engine.run_until(100);
    let bytes = engine.checkpoint().to_bytes();
    let snap: Checkpoint<Gossiper> = Checkpoint::from_bytes(&bytes).expect("decodes");
    assert_ne!(snap.channel_signature(), 0);

    // Wrong channel seed: refused.
    let err = Engine::restore(stormy_channel(2, 8), snap.clone()).unwrap_err();
    assert!(matches!(err, EngineError::ChannelMismatch { .. }), "{err}");
    assert!(err.to_string().contains("signature"));
    // Static backend: refused too.
    assert!(Engine::restore(base(), snap.clone()).is_err());
    // The right channel: accepted.
    assert!(Engine::restore(stormy_channel(1, 8), snap).is_ok());
}

#[test]
fn monitor_sees_drift_under_a_temporal_channel() {
    let static_backend = base();
    let drifting = stormy_channel(5, 4);
    let mut static_mon = MetricityMonitor::new(20, N);
    let mut drift_mon = MetricityMonitor::new(20, N);
    for tick in (0..=200).step_by(20) {
        static_mon.record(tick, &static_backend);
        drift_mon.record(tick, &drifting);
    }
    let flat: Vec<f64> = static_mon.samples().iter().map(|s| s.zeta).collect();
    let moving: Vec<f64> = drift_mon.samples().iter().map(|s| s.zeta).collect();
    assert!(
        flat.windows(2).all(|w| w[0] == w[1]),
        "static ζ must be flat"
    );
    assert!(
        moving.windows(2).any(|w| w[0] != w[1]),
        "temporal ζ(t) never moved: {moving:?}"
    );
}

/// One of the three static bases realizing the geometric line field
/// (bit-identical across the three — the standing cross-backend
/// invariant).
fn geometric_base(kind: usize) -> Box<dyn DecayBackend> {
    let pts = line_points(N, 1.0);
    let f = move |i: usize, j: usize| distance(pts[i], pts[j]).powf(2.0);
    match kind {
        0 => Box::new(DenseBackend::new(
            geometric_space(&line_points(N, 1.0), 2.0).expect("distinct points"),
        )),
        1 => {
            let last = N - 1;
            Box::new(
                LazyBackend::from_fn(N, f).with_neighbor_hint(move |i, reach| {
                    let w = reach.sqrt().ceil() as usize;
                    (i.saturating_sub(w)..=(i + w).min(last)).collect()
                }),
            )
        }
        _ => Box::new(TiledBackend::from_fn(N, 4, 3, f)),
    }
}

/// A channel over `geometric_base(kind)` with the layer subset `mask`
/// (bit 0 mobility, bit 1 shadowing, bit 2 fading) and structured
/// reach hints enabled.
fn hinted_channel(kind: usize, seed: u64, mask: u8, block_len: u64) -> TemporalAdapter {
    let mut ch = TemporalChannel::new(geometric_base(kind), line_points(N, 1.0), 2.0, block_len)
        .with_geometric_hints();
    if mask & 1 != 0 {
        ch = ch.with_mobility(MobilityConfig {
            model: MobilityModel::RandomWaypoint {
                speed: 0.5,
                pause: 1,
            },
            seed,
        });
    }
    if mask & 2 != 0 {
        ch = ch.with_shadowing(ShadowingConfig {
            sigma_db: 4.0,
            corr_dist: 3.0,
            time_corr: 0.7,
            seed: seed ^ 0xA5,
        });
    }
    if mask & 4 != 0 {
        ch = ch.with_fading(FadingConfig { seed: seed ^ 0x5A });
    }
    TemporalAdapter::new(ch)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The snapshot path (hint-widened candidate windows, cached rows,
    /// pinned block-0 snapshot) answers every reach query exactly as a
    /// brute-force per-block scan does — across random interleavings of
    /// blocks, sources, and reach values (including `None`), under
    /// every layer subset, on all three static bases.
    #[test]
    fn snapshot_reach_sets_equal_brute_force_scans(
        seed in 0u64..300,
        mask in 0u8..8,
        block_len in 1u64..6,
        // Reach index 4 encodes `None` (the vendored proptest stand-in
        // has no `option::of`).
        queries in prop::collection::vec((0u64..10, 0usize..N, 0usize..5), 24),
    ) {
        let reaches = [4.0, 9.0, 36.0, 1e6];
        for kind in 0..3 {
            let adapter = hinted_channel(kind, seed, mask, block_len);
            for &(block, src, reach_idx) in &queries {
                let from = NodeId::new(src);
                let reach = (reach_idx < 4).then(|| reaches[reach_idx]);
                let got = adapter.potential_receivers_at(block * block_len, from, reach);
                let want: Vec<NodeId> = (0..N)
                    .filter(|&j| j != src)
                    .map(NodeId::new)
                    .filter(|&to| match reach {
                        None => true,
                        Some(r) => adapter.inner().decay_in_block(block, from, to) <= r,
                    })
                    .collect();
                prop_assert_eq!(
                    got, want,
                    "base {} mask {} block {} src {} reach {:?}",
                    kind, mask, block, src, reach
                );
            }
        }
    }

    /// Checkpoint/resume at an arbitrary split under a full generative
    /// channel reproduces the uninterrupted run bit for bit — without
    /// serializing any channel state (the rebuilt channel re-derives it).
    #[test]
    fn resume_is_invariant_under_temporal_channels(
        ch_seed in 0u64..500,
        run_seed in 0u64..500,
        block_len in 1u64..20,
        split in 1u64..300,
    ) {
        let mut full = engine_over(stormy_channel(ch_seed, block_len), run_seed);
        full.run_until(300);

        let mut first = engine_over(stormy_channel(ch_seed, block_len), run_seed);
        first.run_until(split);
        let bytes = first.checkpoint().to_bytes();
        let snap: Checkpoint<Gossiper> = Checkpoint::from_bytes(&bytes).expect("decodes");
        let mut resumed = Engine::restore(stormy_channel(ch_seed, block_len), snap)
            .expect("matching channel restores");
        resumed.run_until(300);

        prop_assert_eq!(full.trace_hash(), resumed.trace_hash(), "split {}", split);
        prop_assert_eq!(full.stats(), resumed.stats());
    }
}
