//! Spatially correlated log-normal shadowing with Gudmundson-style
//! exponential correlation.
//!
//! The shadowing field is realized as a lattice of Gaussian anchor
//! processes over the deployment bounding box, spaced one correlation
//! distance apart. A node's shadowing value is the normalized
//! `exp(-d/d_corr)`-weighted combination of the anchors around its
//! position, so nearby nodes see correlated shadowing that decorrelates
//! exponentially with separation — Gudmundson's model, realized as a
//! field instead of a per-link process so it stays consistent when
//! mobility moves nodes through it. Each anchor evolves across coherence
//! blocks as an AR(1) process with coefficient `time_corr`, evaluated by
//! a truncated moving-average sum over random-access draws: any block's
//! field can be recomputed from scratch, which is what lets checkpoints
//! skip shadowing state entirely.
//!
//! A link's shadowing loss in dB is
//! `sigma_db · (F(p_i) + F(p_j)) / √2` — unit-variance per endpoint,
//! combining to variance `sigma_db²` per link with reciprocal links
//! identical.

use decay_spaces::Point;

use crate::draw::{gauss, mix};

/// Stream tag for anchor draws.
const STREAM_ANCHOR: u64 = 11;

/// Maximum anchors per axis (the field degrades gracefully to coarser
/// effective correlation when the box spans many correlation lengths).
const MAX_ANCHORS_PER_AXIS: usize = 12;

/// Terms kept in the truncated AR(1) moving-average sum.
const MAX_AR_TERMS: u64 = 48;

/// Log-normal shadowing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShadowingConfig {
    /// Standard deviation of the per-link shadowing loss, in dB.
    pub sigma_db: f64,
    /// Decorrelation distance: correlation between two positions decays
    /// as `exp(-d / corr_dist)`.
    pub corr_dist: f64,
    /// AR(1) coefficient across coherence blocks, in `[0, 1)`; 0 draws
    /// an independent field every block.
    pub time_corr: f64,
    /// Seed for the anchor processes.
    pub seed: u64,
}

/// The realized field: anchor lattice plus the AR(1) machinery.
#[derive(Debug, Clone)]
pub(crate) struct ShadowField {
    config: ShadowingConfig,
    anchors: Vec<Point>,
    /// `time_corr^d` MA coefficients, pre-normalized to unit variance.
    coeffs: Vec<f64>,
}

impl ShadowField {
    /// Builds the field over the bounding box of `points`.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma_db >= 0`, `corr_dist > 0`, and `time_corr`
    /// is in `[0, 1)`, all finite.
    pub(crate) fn new(config: ShadowingConfig, points: &[Point]) -> Self {
        assert!(
            config.sigma_db.is_finite() && config.sigma_db >= 0.0,
            "sigma_db must be non-negative and finite"
        );
        assert!(
            config.corr_dist.is_finite() && config.corr_dist > 0.0,
            "corr_dist must be positive and finite"
        );
        assert!(
            (0.0..1.0).contains(&config.time_corr),
            "time_corr must be in [0, 1)"
        );
        let lo = (
            points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min),
            points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min),
        );
        let hi = (
            points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max),
            points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max),
        );
        // One anchor per correlation distance, padded half a cell past
        // the box so border nodes are surrounded, capped per axis.
        let counts = |span: f64| -> usize {
            ((span / config.corr_dist).ceil() as usize + 2).min(MAX_ANCHORS_PER_AXIS)
        };
        let (nx, ny) = (counts(hi.0 - lo.0), counts(hi.1 - lo.1));
        let step = |lo: f64, hi: f64, k: usize, i: usize| -> f64 {
            if k == 1 {
                (lo + hi) / 2.0
            } else {
                // Anchors span one correlation distance beyond each edge.
                let (a, b) = (lo - config.corr_dist, hi + config.corr_dist);
                a + (b - a) * i as f64 / (k - 1) as f64
            }
        };
        let mut anchors = Vec::with_capacity(nx * ny);
        for yi in 0..ny {
            for xi in 0..nx {
                anchors.push((step(lo.0, hi.0, nx, xi), step(lo.1, hi.1, ny, yi)));
            }
        }
        // AR(1) as a truncated MA: x_b = Σ_d c_d w_{b-d} with
        // c_d ∝ time_corr^d, normalized so Var x_b = 1.
        let rho = config.time_corr;
        let terms = if rho == 0.0 {
            1
        } else {
            let d = (1e-4f64.ln() / rho.ln()).ceil() as u64;
            d.clamp(1, MAX_AR_TERMS) + 1
        };
        let mut coeffs: Vec<f64> = (0..terms).map(|d| rho.powi(d as i32)).collect();
        let norm = coeffs.iter().map(|c| c * c).sum::<f64>().sqrt();
        for c in &mut coeffs {
            *c /= norm;
        }
        ShadowField {
            config,
            anchors,
            coeffs,
        }
    }

    /// Anchor `a`'s AR(1) value at `block`. History indices wrap below
    /// block 0 (the draws are pure hashes, so "negative" history is just
    /// more deterministic noise) — every block sums the full coefficient
    /// window, keeping the process stationary from the very first block
    /// instead of ramping variance up over the MA depth.
    fn anchor_value(&self, a: usize, block: u64) -> f64 {
        let seed = self.config.seed;
        self.coeffs
            .iter()
            .enumerate()
            .map(|(d, c)| {
                c * gauss(mix(&[
                    seed,
                    STREAM_ANCHOR,
                    a as u64,
                    block.wrapping_sub(d as u64),
                ]))
            })
            .sum()
    }

    /// The unit-variance field value at position `p`, combining
    /// precomputed per-anchor values for one block (normalized
    /// inverse-exponential-distance weighting).
    fn field_at(&self, anchor_values: &[f64], p: Point) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for (anchor, value) in self.anchors.iter().zip(anchor_values) {
            let d = decay_spaces::distance(p, *anchor);
            let w = (-d / self.config.corr_dist).exp();
            num += w * value;
            den += w * w;
        }
        if den > 0.0 {
            num / den.sqrt()
        } else {
            0.0
        }
    }

    /// Per-node field values for one block at the given positions — the
    /// per-epoch bulk recomputation the channel caches. Anchor AR(1)
    /// values are materialized once per block, so the cost is
    /// `O(anchors · ar_terms + nodes · anchors)`, not
    /// `O(nodes · anchors · ar_terms)`.
    pub(crate) fn node_values(&self, block: u64, positions: &[Point]) -> Vec<f64> {
        let anchor_values: Vec<f64> = (0..self.anchors.len())
            .map(|a| self.anchor_value(a, block))
            .collect();
        positions
            .iter()
            .map(|&p| self.field_at(&anchor_values, p))
            .collect()
    }

    /// The multiplicative decay factor for a link between nodes with
    /// cached field values `fi` and `fj`:
    /// `10^(sigma_db · (fi + fj) / (√2 · 10))`.
    pub(crate) fn link_factor(&self, fi: f64, fj: f64) -> f64 {
        let x_db = self.config.sigma_db * (fi + fj) * std::f64::consts::FRAC_1_SQRT_2;
        10f64.powf(x_db / 10.0)
    }

    /// A sound lower bound on [`Self::link_factor`] between a node with
    /// field value `fi` and *any* partner this block, given the block's
    /// minimum field value `f_min`: the factor is monotone in the
    /// partner's field value, so evaluating at the minimum bounds every
    /// pair, with a small margin shaved off against `pow` rounding.
    /// Structured reach hints divide the reach budget by this floor —
    /// the deeper the block's shadowing dips, the wider the candidate
    /// window must open.
    pub(crate) fn link_factor_floor(&self, fi: f64, f_min: f64) -> f64 {
        self.link_factor(fi, f_min) * 0.999
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(side: usize, spacing: f64) -> Vec<Point> {
        (0..side * side)
            .map(|i| ((i % side) as f64 * spacing, (i / side) as f64 * spacing))
            .collect()
    }

    fn field(corr_dist: f64, time_corr: f64, seed: u64, pts: &[Point]) -> ShadowField {
        ShadowField::new(
            ShadowingConfig {
                sigma_db: 6.0,
                corr_dist,
                time_corr,
                seed,
            },
            pts,
        )
    }

    #[test]
    fn field_is_deterministic_and_seed_sensitive() {
        let pts = grid(4, 1.0);
        let a = field(2.0, 0.7, 9, &pts).node_values(5, &pts);
        let b = field(2.0, 0.7, 9, &pts).node_values(5, &pts);
        let c = field(2.0, 0.7, 10, &pts).node_values(5, &pts);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn nearby_positions_correlate_more_than_distant_ones() {
        let pts: Vec<Point> = vec![(0.0, 0.0), (0.3, 0.0), (11.0, 0.0)];
        let f = field(2.0, 0.0, 4, &pts);
        let (mut near, mut far) = (0.0, 0.0);
        let blocks = 400;
        for b in 0..blocks {
            let v = f.node_values(b, &pts);
            near += v[0] * v[1];
            far += v[0] * v[2];
        }
        let (near, far) = (near / blocks as f64, far / blocks as f64);
        assert!(
            near > far + 0.2,
            "spatial correlation not decaying: near {near:.3} far {far:.3}"
        );
        assert!(
            near > 0.5,
            "adjacent positions barely correlated: {near:.3}"
        );
    }

    #[test]
    fn time_correlation_tracks_the_ar_coefficient() {
        let pts = vec![(0.0, 0.0), (1.0, 0.0)];
        let smooth = field(2.0, 0.9, 4, &pts);
        let rough = field(2.0, 0.0, 4, &pts);
        let lag1 = |f: &ShadowField| {
            let blocks = 400;
            let mut acc = 0.0;
            let mut prev = f.node_values(0, &pts)[0];
            for b in 1..blocks {
                let v = f.node_values(b, &pts)[0];
                acc += prev * v;
                prev = v;
            }
            acc / (blocks - 1) as f64
        };
        assert!(lag1(&smooth) > 0.6, "AR(0.9) lag-1 {:.3}", lag1(&smooth));
        assert!(lag1(&rough).abs() < 0.25, "AR(0) lag-1 {:.3}", lag1(&rough));
    }

    #[test]
    fn field_variance_is_near_unit() {
        let pts = grid(3, 3.0);
        let f = field(2.5, 0.5, 8, &pts);
        let blocks = 500;
        let mut acc = 0.0;
        for b in 0..blocks {
            let v = f.node_values(b, &pts);
            acc += v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64;
        }
        let var = acc / blocks as f64;
        assert!((var - 1.0).abs() < 0.25, "field variance {var:.3}");
    }

    #[test]
    fn link_factor_is_log_normal_around_one() {
        let pts = vec![(0.0, 0.0), (1.0, 0.0)];
        let f = field(2.0, 0.3, 2, &pts);
        let v = f.node_values(7, &pts);
        let fac = f.link_factor(v[0], v[1]);
        assert!(fac.is_finite() && fac > 0.0);
        // Zero field = exactly no shadowing.
        assert_eq!(f.link_factor(0.0, 0.0), 1.0);
    }
}
