//! Live metricity monitoring: sampling `ζ(t)` and `φ(t)` of the
//! instantaneous gain matrix as a run progresses.
//!
//! The paper's metricity parameter `ζ` (Definition 2.2) is a property of
//! a *frozen* decay space; under a temporal channel it becomes a
//! trajectory — mobility stretches triangles, shadowing and fading bend
//! them — and algorithm guarantees parameterized by `ζ` hold per
//! coherence block, not per run. The [`MetricityMonitor`] samples the
//! engine's backend at fixed tick intervals (on the scenario runner's
//! pause grid, so sampling can never perturb a trace) and folds the
//! `ζ(t)`/`φ(t)` series into the metrics report.
//!
//! The cubic triple scan caps at [`MetricityMonitor::new`]'s `max_nodes`
//! by sampling an evenly spaced node subset, whose metricity is a lower
//! bound for the full space (a restriction drops triples, never adds
//! them).

use decay_core::{metricity, phi_metricity, DecaySpace, NodeId};
use decay_engine::{DecayBackend, Tick};

/// One sampled point of the metricity trajectory.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ZetaSample {
    /// The tick the instantaneous matrix was sampled at.
    pub tick: Tick,
    /// Metricity `ζ` of the sampled matrix (0 when no triple binds).
    pub zeta: f64,
    /// The `φ = lg ϕ` variant (Section 4.2) of the sampled matrix.
    pub phi: f64,
    /// Size of the evenly spaced node subset the cubic scan ran over
    /// (`min(n, max_nodes)`; the monitor caps at 64). Subset metricity
    /// lower-bounds the full space's, so `ζ(t)` values are only
    /// interpretable alongside this — which is why it rides along in
    /// the JSON report.
    pub nodes: usize,
}

/// Samples `ζ(t)`/`φ(t)` from any [`DecayBackend`] at a fixed tick
/// interval.
#[derive(Debug, Clone)]
pub struct MetricityMonitor {
    interval: Tick,
    max_nodes: usize,
    samples: Vec<ZetaSample>,
}

impl MetricityMonitor {
    /// A monitor sampling every `interval` ticks, scanning at most
    /// `max_nodes` nodes per sample.
    ///
    /// # Panics
    ///
    /// Panics unless `interval ≥ 1` and `max_nodes` is in `[3, 64]`
    /// (fewer than 3 nodes admit no triple; more than 64 makes the cubic
    /// scan a hot-path hazard).
    pub fn new(interval: Tick, max_nodes: usize) -> Self {
        assert!(interval >= 1, "sample interval must be at least one tick");
        assert!(
            (3..=64).contains(&max_nodes),
            "max_nodes must be in [3, 64]"
        );
        MetricityMonitor {
            interval,
            max_nodes,
            samples: Vec::new(),
        }
    }

    /// The sampling interval in ticks.
    pub fn interval(&self) -> Tick {
        self.interval
    }

    /// Whether `tick` is on the sampling grid.
    pub fn due(&self, tick: Tick) -> bool {
        tick.is_multiple_of(self.interval)
    }

    /// Samples the backend if `tick` is on the grid (and not already
    /// sampled — repeated pauses at one tick fold to one sample).
    pub fn record(&mut self, tick: Tick, backend: &dyn DecayBackend) {
        if !self.due(tick) || self.samples.last().is_some_and(|s| s.tick == tick) {
            return;
        }
        self.samples.push(sample(tick, backend, self.max_nodes));
    }

    /// The samples collected so far.
    pub fn samples(&self) -> &[ZetaSample] {
        &self.samples
    }

    /// Consumes the monitor, yielding the series.
    pub fn into_samples(self) -> Vec<ZetaSample> {
        self.samples
    }
}

/// The monitor plugs directly into the probe API: every pause-grid
/// stop offers the instantaneous backend, and [`MetricityMonitor::record`]
/// already ignores off-grid ticks and duplicate pauses — which is what
/// makes the ζ(t) series invariant to extra pauses (checkpoints) and
/// probe subsets.
impl decay_engine::probe::Probe for MetricityMonitor {
    fn on_start(&mut self, ctx: &decay_engine::probe::PauseCtx<'_>) {
        self.record(ctx.tick, ctx.backend);
    }

    fn on_pause(&mut self, ctx: &decay_engine::probe::PauseCtx<'_>) {
        self.record(ctx.tick, ctx.backend);
    }
}

/// Samples `ζ`/`φ` of `backend`'s instantaneous matrix at `tick` over an
/// evenly spaced subset of at most `max_nodes` nodes.
///
/// Backends with fewer than 3 nodes admit no triple, so no triangle
/// inequality binds: the sample degenerates to `ζ = φ = 0` instead of
/// panicking (which monitoring a 1- or 2-node space once did).
pub fn sample(tick: Tick, backend: &dyn DecayBackend, max_nodes: usize) -> ZetaSample {
    let n = backend.len();
    let k = n.min(max_nodes);
    if k < 3 {
        return ZetaSample {
            tick,
            zeta: 0.0,
            phi: 0.0,
            nodes: k,
        };
    }
    let idx: Vec<usize> = (0..k).map(|t| t * n / k).collect();
    let space = DecaySpace::from_fn(k, |a, b| {
        backend.decay_at(tick, NodeId::new(idx[a]), NodeId::new(idx[b]))
    })
    .expect("instantaneous decays satisfy the decay-space contract");
    ZetaSample {
        tick,
        zeta: metricity(&space).zeta,
        phi: phi_metricity(&space).phi,
        nodes: k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decay_engine::LazyBackend;

    fn geometric_line(n: usize, alpha: f64) -> LazyBackend {
        LazyBackend::from_fn(n, move |i, j| ((i as f64) - (j as f64)).abs().powf(alpha))
    }

    #[test]
    fn static_geometric_decay_samples_zeta_equals_alpha() {
        let backend = geometric_line(12, 3.0);
        let mut mon = MetricityMonitor::new(10, 12);
        for tick in 0..=40 {
            mon.record(tick, &backend);
        }
        let samples = mon.samples();
        assert_eq!(samples.len(), 5, "ticks 0, 10, 20, 30, 40");
        for s in samples {
            assert!((s.zeta - 3.0).abs() < 1e-6, "tick {}: ζ {}", s.tick, s.zeta);
            assert!(s.phi <= s.zeta + 1e-9, "φ ≤ ζ (Section 4.2)");
        }
    }

    #[test]
    fn off_grid_and_duplicate_ticks_are_ignored() {
        let backend = geometric_line(6, 2.0);
        let mut mon = MetricityMonitor::new(8, 6);
        mon.record(0, &backend);
        mon.record(0, &backend); // duplicate pause at one tick
        mon.record(3, &backend); // off grid
        mon.record(8, &backend);
        assert_eq!(mon.samples().len(), 2);
        assert_eq!(mon.samples()[1].tick, 8);
        assert_eq!(mon.clone().into_samples().len(), 2);
    }

    #[test]
    fn tiny_backends_sample_degenerately_instead_of_panicking() {
        for n in [1usize, 2] {
            let backend = geometric_line(n, 2.0);
            let s = sample(5, &backend, 16);
            assert_eq!(s.tick, 5);
            assert_eq!(s.zeta, 0.0, "n = {n}: no triple binds");
            assert_eq!(s.phi, 0.0, "n = {n}: no triple binds");
            // The monitor path folds the degenerate sample too.
            let mut mon = MetricityMonitor::new(1, 16);
            mon.record(0, &backend);
            assert_eq!(mon.samples().len(), 1);
            assert_eq!(mon.samples()[0].zeta, 0.0);
        }
    }

    #[test]
    fn subset_sampling_is_a_lower_bound() {
        let full = sample(0, &geometric_line(30, 2.5), 30);
        let sub = sample(0, &geometric_line(30, 2.5), 10);
        assert_eq!(full.nodes, 30, "subset size is recorded");
        assert_eq!(sub.nodes, 10, "subset size is recorded");
        assert!(sub.zeta <= full.zeta + 1e-9);
        // A geometric line's binding triples survive even coarse
        // subsampling (consecutive subset nodes are still collinear).
        assert!(sub.zeta > 2.0, "subset ζ collapsed: {}", sub.zeta);
    }
}
