//! Deterministic, random-access random draws.
//!
//! Every stochastic ingredient of a temporal channel — waypoint choices,
//! Lévy step lengths, shadowing field anchors, block fading gains — is a
//! *pure function* of `(seed, stream, coherence block, entity)`. That is
//! what makes the whole subsystem checkpoint-free: a restored engine can
//! re-evaluate any past or future block and land on exactly the bits the
//! uninterrupted run saw, with no mid-stream RNG state to serialize. The
//! generator is a splitmix64 chain over the key words (the same mixer
//! `decay-engine`'s RNG seeds from), which passes through to uniform and
//! Gaussian variates.

/// One splitmix64 scramble step.
fn scramble(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes key words into one well-scrambled 64-bit value. Order matters:
/// `mix(&[a, b]) != mix(&[b, a])` in general.
pub(crate) fn mix(words: &[u64]) -> u64 {
    let mut h = 0x243F_6A88_85A3_08D3; // pi, for nothing-up-my-sleeve
    for &w in words {
        h = scramble(h ^ w);
    }
    scramble(h)
}

/// A uniform draw in `[0, 1)` from a mixed key (53 mantissa bits).
pub(crate) fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A standard Gaussian draw from a mixed key, via Box–Muller on two
/// decorrelated halves of the key stream.
pub(crate) fn gauss(h: u64) -> f64 {
    let u1 = unit(scramble(h ^ 0x5851_F42D_4C95_7F2D));
    let u2 = unit(scramble(h ^ 0x1405_7B7E_F767_814F));
    // 1 - u1 is in (0, 1], so the log is finite and non-positive.
    (-2.0 * (1.0 - u1).ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_pure_functions_of_the_key() {
        assert_eq!(mix(&[1, 2, 3]), mix(&[1, 2, 3]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[3, 2, 1]));
        assert_ne!(mix(&[0]), mix(&[1]));
        assert_eq!(gauss(42).to_bits(), gauss(42).to_bits());
    }

    #[test]
    fn unit_covers_and_stays_in_range() {
        let (mut lo, mut hi) = (false, false);
        for k in 0..2000u64 {
            let u = unit(mix(&[k]));
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.1;
            hi |= u > 0.9;
        }
        assert!(lo && hi);
    }

    #[test]
    fn gauss_has_plausible_moments() {
        let n = 4000;
        let xs: Vec<f64> = (0..n).map(|k| gauss(mix(&[7, k]))).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.08, "mean {mean}");
        assert!((var - 1.0).abs() < 0.12, "var {var}");
    }
}
