//! Block Rayleigh fading.
//!
//! Rayleigh amplitude fading makes the received *power* gain of a link an
//! exponential random variable with unit mean. In the block-fading
//! abstraction the gain holds for one coherence block and redraws
//! independently for the next — the standard regime between fast fading
//! (every symbol) and shadowing (many blocks). On the decay side a power
//! gain `g` divides the decay: `f_t = f / g`. Draws are random-access
//! hashes of `(seed, block, link)`, reciprocal (`(i, j)` and `(j, i)`
//! fade together), and clamped away from 0 and ∞ so the decay-space
//! contract (finite, strictly positive) survives the deepest fade.

use decay_core::NodeId;

use crate::draw::{mix, unit};

/// Stream tag for fading draws.
const STREAM_FADE: u64 = 23;

/// Power-gain clamp: a fade can bury a link ~90 dB or boost it ~10× but
/// never drives a decay to 0 or ∞. `MAX_GAIN` doubles as the sound
/// reach-widening slack for structured hints: a fade divides a decay by
/// at most `MAX_GAIN`, so a node outside `reach · MAX_GAIN` of the
/// unfaded field can never fade into reach.
const MIN_GAIN: f64 = 1e-9;
pub(crate) const MAX_GAIN: f64 = 1e1;

/// Block Rayleigh fading parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FadingConfig {
    /// Seed for the per-(block, link) gain draws.
    pub seed: u64,
}

impl FadingConfig {
    /// The multiplicative *decay* factor (`1 / power gain`) for the link
    /// in the given coherence block.
    pub(crate) fn decay_factor(&self, block: u64, from: NodeId, to: NodeId) -> f64 {
        let (a, b) = if from.index() <= to.index() {
            (from.index(), to.index())
        } else {
            (to.index(), from.index())
        };
        let u = unit(mix(&[self.seed, STREAM_FADE, block, a as u64, b as u64]));
        // Unit-mean exponential via inverse CDF; 1 - u is in (0, 1].
        let gain = (-(1.0 - u).ln()).clamp(MIN_GAIN, MAX_GAIN);
        1.0 / gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fades_are_reciprocal_and_block_constant() {
        let f = FadingConfig { seed: 5 };
        let a = f.decay_factor(3, NodeId::new(1), NodeId::new(7));
        let b = f.decay_factor(3, NodeId::new(7), NodeId::new(1));
        assert_eq!(a.to_bits(), b.to_bits(), "reciprocity");
        assert_eq!(
            a.to_bits(),
            f.decay_factor(3, NodeId::new(1), NodeId::new(7)).to_bits(),
            "determinism"
        );
        assert_ne!(
            a.to_bits(),
            f.decay_factor(4, NodeId::new(1), NodeId::new(7)).to_bits(),
            "fresh draw per block"
        );
    }

    #[test]
    fn gains_have_unit_mean_and_spread() {
        let f = FadingConfig { seed: 9 };
        let n = 4000u64;
        let gains: Vec<f64> = (0..n)
            .map(|b| 1.0 / f.decay_factor(b, NodeId::new(0), NodeId::new(1)))
            .collect();
        let mean = gains.iter().sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.08, "mean gain {mean}");
        let deep = gains.iter().filter(|&&g| g < 0.1).count() as u64;
        // P(Exp(1) < 0.1) ≈ 9.5%: deep fades genuinely happen.
        assert!(deep > n / 20, "only {deep} deep fades in {n}");
        for g in gains {
            assert!((MIN_GAIN..=MAX_GAIN).contains(&g));
        }
    }
}
