//! ζ(t)-adaptive scheduling: the first consumer of the metricity
//! trajectory.
//!
//! The paper's algorithmic guarantees are parameterized by the metricity
//! `ζ` of a *frozen* decay space; under a drifting channel ζ becomes the
//! trajectory ζ(t), and a fixed transmit probability tuned for one
//! regime is mistuned for the rest of the run. [`AdaptiveContention`]
//! closes the loop: at fixed grid intervals it estimates ζ(t) from the
//! live backend (the same evenly-spaced-subset scan the
//! [`crate::MetricityMonitor`] uses) and re-tunes every node's transmit
//! probability around a reference point — higher ζ means steeper decay
//! and less far-field interference, so nodes can afford to transmit
//! more aggressively; ζ collapsing toward 1 means flat, coupling-heavy
//! gain fields where backing off wins.
//!
//! # Determinism and resume invariance
//!
//! Decisions are a *pure function of `(tick, backend)`*: the ζ estimate
//! is deterministic in the tick (temporal backends are pure functions
//! of `(block, i, j)`), and no decision depends on observed traffic.
//! A run resumed from a checkpoint therefore re-derives the identical
//! decisions at the identical grid ticks, and the trace digest is
//! bit-identical to the uninterrupted run — provided the same
//! controller steers both, which
//! [`decay_engine::Engine::restore_with_controller`] enforces via
//! [`Controller::signature`].

use decay_engine::probe::{signature_hash, Controller, Directive, PauseCtx};
use decay_engine::Tick;

use crate::monitor;

/// Re-tunes every node's transmit probability from a live ζ(t)
/// estimate, once per `interval` ticks (the decision grid — align it
/// with the coherence-block length to re-tune once per block).
///
/// The rule is `p(t) = clamp(base_p · ζ(t) / zeta_ref, floor, cap)`:
/// linear in the estimated metricity, anchored so that `ζ(t) ==
/// zeta_ref` reproduces the spec's fixed probability exactly. A
/// degenerate estimate (`ζ(t) = 0`, e.g. fewer than 3 sampled nodes)
/// falls back to `base_p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveContention {
    /// Decision interval in ticks (must be hit by the driver's pause
    /// grid; the scenario runner validates it as a multiple of its
    /// `check_interval`).
    pub interval: Tick,
    /// Maximum nodes in the ζ-estimate submatrix, in `[3, 64]`.
    pub max_nodes: usize,
    /// The probability applied when `ζ(t) == zeta_ref`.
    pub base_p: f64,
    /// The reference metricity (e.g. the deployment's path-loss α).
    pub zeta_ref: f64,
    /// Lower clamp on the re-tuned probability.
    pub floor: f64,
    /// Upper clamp on the re-tuned probability.
    pub cap: f64,
}

impl AdaptiveContention {
    /// Validates the parameters and builds the controller.
    ///
    /// # Panics
    ///
    /// Panics unless `interval ≥ 1`, `max_nodes` is in `[3, 64]`,
    /// `zeta_ref > 0`, and `0 < floor ≤ base_p ≤ cap ≤ 1`.
    pub fn new(
        interval: Tick,
        max_nodes: usize,
        base_p: f64,
        zeta_ref: f64,
        floor: f64,
        cap: f64,
    ) -> Self {
        assert!(interval >= 1, "decision interval must be at least one tick");
        assert!(
            (3..=64).contains(&max_nodes),
            "max_nodes must be in [3, 64]"
        );
        assert!(
            zeta_ref.is_finite() && zeta_ref > 0.0,
            "zeta_ref must be positive and finite"
        );
        assert!(
            floor > 0.0 && floor <= base_p && base_p <= cap && cap <= 1.0,
            "need 0 < floor <= base_p <= cap <= 1"
        );
        AdaptiveContention {
            interval,
            max_nodes,
            base_p,
            zeta_ref,
            floor,
            cap,
        }
    }

    /// The probability this controller would set for metricity `zeta`.
    pub fn probability_for(&self, zeta: f64) -> f64 {
        if zeta <= 0.0 {
            return self.base_p;
        }
        (self.base_p * zeta / self.zeta_ref).clamp(self.floor, self.cap)
    }
}

impl Controller for AdaptiveContention {
    fn signature(&self) -> u64 {
        let mut bytes = Vec::with_capacity(48);
        bytes.extend_from_slice(&self.interval.to_le_bytes());
        bytes.extend_from_slice(&(self.max_nodes as u64).to_le_bytes());
        for f in [self.base_p, self.zeta_ref, self.floor, self.cap] {
            bytes.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        // Tag 0x5A41 ("ZA"): the ζ-adaptive contention controller
        // family. A different controller kind must use a different tag.
        signature_hash(0x5A41, &bytes)
    }

    fn decide(&mut self, ctx: &PauseCtx<'_>) -> Vec<Directive> {
        if !ctx.tick.is_multiple_of(self.interval) {
            return Vec::new();
        }
        let zeta = monitor::sample(ctx.tick, ctx.backend, self.max_nodes).zeta;
        vec![Directive::SetAllProbabilities {
            p: self.probability_for(zeta),
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decay_engine::{DecayBackend, EngineStats, LazyBackend};

    fn ctl() -> AdaptiveContention {
        AdaptiveContention::new(16, 12, 0.1, 2.0, 0.02, 0.4)
    }

    fn ctx_at<'a>(tick: Tick, backend: &'a dyn DecayBackend) -> PauseCtx<'a> {
        static SINK: decay_core::telemetry::Counters = decay_core::telemetry::Counters::new();
        PauseCtx {
            tick,
            horizon: 1_000,
            batch: &[],
            backend,
            stats: EngineStats::default(),
            trace_hash: 0,
            counters: &SINK,
        }
    }

    #[test]
    fn probability_scales_with_zeta_and_clamps() {
        let c = ctl();
        assert_eq!(c.probability_for(2.0), 0.1, "reference point is exact");
        assert!(c.probability_for(3.0) > c.probability_for(2.0));
        assert!(c.probability_for(1.0) < c.probability_for(2.0));
        assert_eq!(c.probability_for(100.0), 0.4, "cap");
        assert_eq!(c.probability_for(1e-6), 0.02, "floor");
        assert_eq!(c.probability_for(0.0), 0.1, "degenerate ζ falls back");
    }

    #[test]
    fn decisions_fire_only_on_the_decision_grid() {
        let backend = LazyBackend::from_fn(10, |i, j| ((i as f64) - (j as f64)).abs().powi(2));
        let mut c = ctl();
        assert!(c.decide(&ctx_at(8, &backend)).is_empty(), "off grid");
        let on_grid = c.decide(&ctx_at(32, &backend));
        assert_eq!(on_grid.len(), 1);
        // A geometric α=2 line estimates ζ ≈ 2 == zeta_ref → base_p.
        match on_grid[0] {
            Directive::SetAllProbabilities { p } => assert!((p - 0.1).abs() < 1e-9, "p = {p}"),
            _ => panic!("unexpected directive"),
        }
        // Tick 0 is on every grid: the initial tuning decision.
        assert_eq!(c.decide(&ctx_at(0, &backend)).len(), 1);
    }

    #[test]
    fn signature_separates_parameter_sets_and_is_stable() {
        let a = ctl();
        assert_eq!(a.signature(), ctl().signature());
        let mut b = ctl();
        b.base_p = 0.11;
        assert_ne!(a.signature(), b.signature());
        let mut c = ctl();
        c.interval = 32;
        assert_ne!(a.signature(), c.signature());
    }

    #[test]
    #[should_panic(expected = "floor")]
    fn degenerate_clamps_are_rejected() {
        AdaptiveContention::new(8, 12, 0.1, 2.0, 0.2, 0.4);
    }
}
