//! # decay-channel
//!
//! Time-varying gain fields for the decay engine: the subsystem that
//! turns a static-snapshot simulator into a dynamic-channel simulator
//! without giving up determinism, checkpoint/resume invariance, or
//! cross-backend trace conformance.
//!
//! *Beyond Geometry*'s central move is to model wireless behavior by the
//! gain matrix itself rather than by geometry — but a matrix measured in
//! the field *drifts*: nodes move, shadowing decorrelates, fading
//! redraws every coherence time. This crate models that drift on top of
//! any static [`decay_engine::DecayBackend`]:
//!
//! * [`TemporalBackend`] — a gain field quantized into *coherence
//!   blocks*: constant within a block, free to change between blocks.
//!   The block structure keeps the engine's `O(active · k)` hot path:
//!   reach sets are recomputed only at block boundaries.
//!   [`TemporalAdapter`] caches them in immutable per-block snapshots
//!   published through a lock-free [`decay_core::EpochCell`] (block-0
//!   static view pinned separately, per-source dense rows built by one
//!   batched [`TemporalBackend::decay_row_in_block`] call), and
//!   [`TemporalChannel::with_geometric_hints`] shrinks each per-block
//!   scan from `n` nodes to a conservatively widened window of the base
//!   topology's hint.
//! * [`TemporalChannel`] — mobility ([`MobilityModel::RandomWaypoint`],
//!   [`MobilityModel::LevyWalk`], [`MobilityModel::Group`] over
//!   `decay-spaces` point sets), Gudmundson-style spatially correlated
//!   log-normal shadowing ([`ShadowingConfig`]), and block Rayleigh
//!   fading ([`FadingConfig`]) layered multiplicatively on the base
//!   field.
//! * [`GainTrace`] / [`TraceChannel`] — a hand-rolled JSON
//!   importer/exporter so externally measured gain matrices replay
//!   bit-identically (same decays, same engine trace hash).
//! * [`MetricityMonitor`] — samples the paper's `ζ` and `φ` parameters
//!   of the *instantaneous* matrix over time, turning the metricity
//!   constant into the trajectory `ζ(t)`.
//!
//! # Determinism
//!
//! Every stochastic layer draws from random-access hashes of
//! `(seed, block, entity)` — there is no mutable RNG stream, so channel
//! state never needs checkpointing. An engine checkpoint (format v3)
//! records only the channel's [`TemporalBackend::signature`];
//! [`decay_engine::Engine::restore`] verifies that the rebuilt channel
//! matches and the replayed field is bit-identical by construction.
//!
//! # Example
//!
//! ```
//! use decay_channel::{
//!     FadingConfig, MetricityMonitor, MobilityConfig, MobilityModel, TemporalAdapter,
//!     TemporalChannel,
//! };
//! use decay_engine::{DecayBackend, LazyBackend};
//! use decay_spaces::line_points;
//!
//! // A static 32-node line, then drift: waypoint mobility + block fading.
//! let base = LazyBackend::from_fn(32, |i, j| ((i as f64) - (j as f64)).abs().powi(2));
//! let channel = TemporalChannel::new(base, line_points(32, 1.0), 2.0, 16)
//!     .with_mobility(MobilityConfig {
//!         model: MobilityModel::RandomWaypoint { speed: 0.4, pause: 1 },
//!         seed: 7,
//!     })
//!     .with_fading(FadingConfig { seed: 9 });
//! let backend = TemporalAdapter::new(channel);
//!
//! // The engine sees a DecayBackend whose decay_at varies per block...
//! let d0 = backend.decay_at(0, 3.into(), 4.into());
//! let d99 = backend.decay_at(99 * 16, 3.into(), 4.into());
//! assert_ne!(d0.to_bits(), d99.to_bits());
//!
//! // ...and the metricity parameter becomes a trajectory.
//! let mut monitor = MetricityMonitor::new(16, 24);
//! for tick in (0..200).step_by(16) {
//!     monitor.record(tick, &backend);
//! }
//! assert!(monitor.samples().len() > 5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adaptive;
mod channel;
mod draw;
mod fading;
mod mobility;
mod monitor;
mod shadowing;
mod temporal;
mod trace;

pub use adaptive::AdaptiveContention;
pub use channel::TemporalChannel;
pub use fading::FadingConfig;
pub use mobility::{MobilityConfig, MobilityModel};
pub use monitor::{sample, MetricityMonitor, ZetaSample};
pub use shadowing::ShadowingConfig;
pub use temporal::{ScanStats, TemporalAdapter, TemporalBackend};
pub use trace::{GainFrame, GainTrace, TraceChannel, TraceError};
