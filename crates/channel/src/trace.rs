//! Gain-trace import/export: replaying externally measured gain
//! matrices bit-identically.
//!
//! A [`GainTrace`] is a sequence of dense `n × n` gain-matrix *frames*,
//! each tagged with the coherence block it takes effect at; a frame
//! holds until the next one (the last frame holds forever). Traces
//! round-trip through a hand-rolled JSON format (the shared
//! [`decay_core::json`] codec, whose number printer is
//! shortest-round-trip exact), so a measured matrix exported on one
//! machine replays with the *same bits* — and therefore the same engine
//! trace hash — anywhere.
//!
//! [`TraceChannel`] plays a trace back as a [`TemporalBackend`];
//! [`GainTrace::capture`] samples any other temporal backend into a
//! trace, closing the loop: capture a generative channel, ship the JSON,
//! replay it bit-identically.

use std::fmt;

use decay_core::json::{self, int, num, obj, s, JsonValue};
use decay_core::NodeId;
use decay_engine::Tick;

use crate::temporal::{signature_of, TemporalBackend};

/// Header string identifying the trace format.
const FORMAT: &str = "decay-gain-trace-v1";

/// One dense gain-matrix frame.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GainFrame {
    /// First coherence block this frame covers.
    pub block: u64,
    /// Row-major `n × n` decays (`gains[from * n + to]`).
    pub gains: Vec<f64>,
}

/// A replayable sequence of measured gain matrices.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GainTrace {
    n: usize,
    block_len: Tick,
    frames: Vec<GainFrame>,
}

/// Why a trace failed to import.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceError {
    /// What was wrong.
    pub message: String,
}

impl TraceError {
    fn new(message: impl Into<String>) -> Self {
        TraceError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid gain trace: {}", self.message)
    }
}

impl std::error::Error for TraceError {}

impl GainTrace {
    /// Builds a validated trace from frames.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] unless: `n ≥ 2`, `block_len ≥ 1`, frames
    /// are non-empty with the first at block 0 and blocks strictly
    /// increasing, every frame is `n²` values, and every frame satisfies
    /// the decay-space contract (zero diagonal, finite positive
    /// off-diagonal).
    pub fn from_frames(
        n: usize,
        block_len: Tick,
        frames: Vec<GainFrame>,
    ) -> Result<Self, TraceError> {
        if n < 2 {
            return Err(TraceError::new("needs at least two nodes"));
        }
        if block_len == 0 {
            return Err(TraceError::new("block_len must be at least one tick"));
        }
        if frames.is_empty() {
            return Err(TraceError::new("needs at least one frame"));
        }
        if frames[0].block != 0 {
            return Err(TraceError::new("the first frame must cover block 0"));
        }
        for w in frames.windows(2) {
            if w[1].block <= w[0].block {
                return Err(TraceError::new("frame blocks must be strictly increasing"));
            }
        }
        for (k, frame) in frames.iter().enumerate() {
            if frame.gains.len() != n * n {
                return Err(TraceError::new(format!(
                    "frame {k} has {} gains, expected {}",
                    frame.gains.len(),
                    n * n
                )));
            }
            for i in 0..n {
                for j in 0..n {
                    let g = frame.gains[i * n + j];
                    if i == j {
                        if g != 0.0 {
                            return Err(TraceError::new(format!(
                                "frame {k}: diagonal ({i},{i}) must be 0, got {g}"
                            )));
                        }
                    } else if !(g.is_finite() && g > 0.0) {
                        return Err(TraceError::new(format!(
                            "frame {k}: gain ({i},{j}) = {g} violates the decay-space contract"
                        )));
                    }
                }
            }
        }
        Ok(GainTrace {
            n,
            block_len,
            frames,
        })
    }

    /// Samples `blocks` coherence blocks (`0..blocks`) of a temporal
    /// backend into a trace. Consecutive bit-identical frames are
    /// deduplicated (the earlier frame simply holds), so slow channels
    /// export compactly.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is 0.
    pub fn capture(channel: &dyn TemporalBackend, blocks: u64) -> GainTrace {
        assert!(blocks > 0, "capture needs at least one block");
        let n = channel.len();
        let mut frames: Vec<GainFrame> = Vec::new();
        for block in 0..blocks {
            let mut gains = vec![0.0; n * n];
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        gains[i * n + j] =
                            channel.decay_in_block(block, NodeId::new(i), NodeId::new(j));
                    }
                }
            }
            let same_as_last = frames.last().is_some_and(|f| bits_equal(&f.gains, &gains));
            if !same_as_last {
                frames.push(GainFrame { block, gains });
            }
        }
        GainTrace {
            n,
            block_len: channel.block_len(),
            frames,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Coherence block length in ticks.
    pub fn block_len(&self) -> Tick {
        self.block_len
    }

    /// The frames, in block order.
    pub fn frames(&self) -> &[GainFrame] {
        &self.frames
    }

    /// The frame in force during `block` (the last frame at or before
    /// it).
    pub fn frame_at(&self, block: u64) -> &GainFrame {
        let idx = self
            .frames
            .partition_point(|f| f.block <= block)
            .saturating_sub(1);
        &self.frames[idx]
    }

    /// Serializes the trace as a [`JsonValue`] (field order fixed, so
    /// output is byte-stable).
    pub fn to_json(&self) -> JsonValue {
        obj(vec![
            ("format", s(FORMAT)),
            ("n", int(self.n as u64)),
            ("block_len", int(self.block_len)),
            (
                "frames",
                JsonValue::Array(
                    self.frames
                        .iter()
                        .map(|f| {
                            obj(vec![
                                ("block", int(f.block)),
                                (
                                    "gains",
                                    JsonValue::Array(f.gains.iter().map(|&g| num(g)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the trace as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }

    /// Decodes a trace from a parsed JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] on a malformed or contract-violating
    /// document.
    pub fn from_json(v: &JsonValue) -> Result<Self, TraceError> {
        let get = |key: &str| {
            v.get(key)
                .ok_or_else(|| TraceError::new(format!("missing field \"{key}\"")))
        };
        match get("format")?.as_str() {
            Some(FORMAT) => {}
            _ => return Err(TraceError::new(format!("format must be \"{FORMAT}\""))),
        }
        if let Some(entries) = v.entries() {
            for (key, _) in entries {
                if !["format", "n", "block_len", "frames"].contains(&key.as_str()) {
                    return Err(TraceError::new(format!("unknown field \"{key}\"")));
                }
            }
        }
        let n = get("n")?
            .as_u64()
            .and_then(|x| usize::try_from(x).ok())
            .ok_or_else(|| TraceError::new("n must be a non-negative integer"))?;
        let block_len = get("block_len")?
            .as_u64()
            .ok_or_else(|| TraceError::new("block_len must be a non-negative integer"))?;
        let frames = get("frames")?
            .as_array()
            .ok_or_else(|| TraceError::new("frames must be an array"))?
            .iter()
            .enumerate()
            .map(|(k, f)| {
                if let Some(entries) = f.entries() {
                    for (key, _) in entries {
                        if !["block", "gains"].contains(&key.as_str()) {
                            return Err(TraceError::new(format!(
                                "frame {k}: unknown field \"{key}\""
                            )));
                        }
                    }
                }
                let block = f
                    .get("block")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| TraceError::new(format!("frame {k}: bad block")))?;
                let gains = f
                    .get("gains")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| TraceError::new(format!("frame {k}: bad gains")))?
                    .iter()
                    .map(|g| {
                        g.as_f64()
                            .ok_or_else(|| TraceError::new(format!("frame {k}: non-number gain")))
                    })
                    .collect::<Result<Vec<f64>, TraceError>>()?;
                Ok(GainFrame { block, gains })
            })
            .collect::<Result<Vec<_>, TraceError>>()?;
        GainTrace::from_frames(n, block_len, frames)
    }

    /// Parses a trace from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] on malformed JSON or an invalid trace.
    pub fn from_json_str(text: &str) -> Result<Self, TraceError> {
        let v = json::parse(text).map_err(|e| TraceError::new(e.to_string()))?;
        Self::from_json(&v)
    }

    /// A signature over every bit of the trace (replaying the same trace
    /// always yields the same channel signature).
    pub fn signature(&self) -> u64 {
        let mut words = vec![0x0071_24CEu64, self.n as u64, self.block_len];
        for f in &self.frames {
            words.push(f.block);
            words.extend(f.gains.iter().map(|g| g.to_bits()));
        }
        signature_of(&words)
    }
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Replays a [`GainTrace`] as a temporal backend.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceChannel {
    trace: GainTrace,
}

impl TraceChannel {
    /// Wraps a trace for replay.
    pub fn new(trace: GainTrace) -> Self {
        TraceChannel { trace }
    }

    /// The replayed trace.
    pub fn trace(&self) -> &GainTrace {
        &self.trace
    }
}

impl TemporalBackend for TraceChannel {
    fn len(&self) -> usize {
        self.trace.n
    }

    fn block_len(&self) -> Tick {
        self.trace.block_len
    }

    fn decay_in_block(&self, block: u64, from: NodeId, to: NodeId) -> f64 {
        self.trace.frame_at(block).gains[from.index() * self.trace.n + to.index()]
    }

    fn signature(&self) -> u64 {
        self.trace.signature()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_trace() -> GainTrace {
        let n = 3;
        let frame = |scale: f64| GainFrame {
            block: 0,
            gains: (0..9)
                .map(|k| {
                    let (i, j) = (k / 3, k % 3);
                    if i == j {
                        0.0
                    } else {
                        scale * ((i as f64) - (j as f64)).abs()
                    }
                })
                .collect(),
        };
        let mut f0 = frame(1.0);
        let mut f1 = frame(2.5);
        let mut f2 = frame(0.125);
        f0.block = 0;
        f1.block = 2;
        f2.block = 5;
        GainTrace::from_frames(n, 4, vec![f0, f1, f2]).unwrap()
    }

    #[test]
    fn frames_hold_until_replaced() {
        let ch = TraceChannel::new(demo_trace());
        let (p, q) = (NodeId::new(0), NodeId::new(2));
        assert_eq!(ch.decay_in_block(0, p, q), 2.0);
        assert_eq!(ch.decay_in_block(1, p, q), 2.0, "frame 0 holds");
        assert_eq!(ch.decay_in_block(2, p, q), 5.0);
        assert_eq!(ch.decay_in_block(4, p, q), 5.0);
        assert_eq!(ch.decay_in_block(5, p, q), 0.25);
        assert_eq!(ch.decay_in_block(999, p, q), 0.25, "last frame forever");
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        let trace = demo_trace();
        let text = trace.to_json_string();
        let back = GainTrace::from_json_str(&text).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.to_json_string(), text, "printing is a fixed point");
        assert_eq!(back.signature(), trace.signature());
        // Awkward but exact doubles survive the trip.
        let mut frames = trace.frames().to_vec();
        frames[0].gains[1] = 0.1 + 0.2; // 0.30000000000000004
        frames[0].gains[3] = f64::MIN_POSITIVE;
        let tricky = GainTrace::from_frames(3, 4, frames).unwrap();
        let back = GainTrace::from_json_str(&tricky.to_json_string()).unwrap();
        assert_eq!(back, tricky);
    }

    #[test]
    fn capture_replays_a_generative_channel() {
        let ch = TraceChannel::new(demo_trace());
        let captured = GainTrace::capture(&ch, 8);
        // Dedup: 8 blocks but only 3 distinct frames.
        assert_eq!(captured.frames().len(), 3);
        let replay = TraceChannel::new(captured);
        for block in 0..12 {
            for i in 0..3 {
                for j in 0..3 {
                    assert_eq!(
                        replay
                            .decay_in_block(block, NodeId::new(i), NodeId::new(j))
                            .to_bits(),
                        ch.decay_in_block(block, NodeId::new(i), NodeId::new(j))
                            .to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn invalid_traces_are_rejected() {
        let ok = demo_trace();
        let frames = ok.frames().to_vec();
        // Wrong first block.
        let mut f = frames.clone();
        f[0].block = 1;
        assert!(GainTrace::from_frames(3, 4, f).is_err());
        // Non-increasing blocks.
        let mut f = frames.clone();
        f[2].block = 2;
        assert!(GainTrace::from_frames(3, 4, f).is_err());
        // Non-zero diagonal.
        let mut f = frames.clone();
        f[0].gains[0] = 1.0;
        assert!(GainTrace::from_frames(3, 4, f).is_err());
        // Negative off-diagonal.
        let mut f = frames.clone();
        f[1].gains[1] = -2.0;
        assert!(GainTrace::from_frames(3, 4, f).is_err());
        // Wrong matrix size.
        let mut f = frames;
        f[0].gains.pop();
        assert!(GainTrace::from_frames(3, 4, f).is_err());
        // Degenerate shapes.
        assert!(GainTrace::from_frames(1, 4, vec![]).is_err());
        assert!(GainTrace::from_frames(3, 0, ok.frames().to_vec()).is_err());
        assert!(GainTrace::from_frames(3, 4, vec![]).is_err());
        // JSON-level rejections.
        assert!(GainTrace::from_json_str("{}").is_err());
        assert!(GainTrace::from_json_str("not json").is_err());
        let tampered = ok.to_json_string().replace("decay-gain-trace-v1", "v0");
        assert!(GainTrace::from_json_str(&tampered).is_err());
    }
}
