//! Deterministic-seeded mobility models over `decay-spaces` point sets.
//!
//! Positions update once per coherence block. Each model is driven
//! entirely by the random-access draws in [`crate::draw`], so the walk is
//! a pure function of `(seed, block history)`: two engines with the same
//! configuration — or one engine restored from a checkpoint — see
//! bit-identical trajectories. State (current position, current waypoint
//! leg) is still *sequential*: block `b` follows from block `b - 1`. The
//! owning [`crate::TemporalChannel`] advances a cached state forward and
//! rebuilds from block 0 on the rare backward query, trading a recompute
//! for never having to serialize mobility state.

use decay_spaces::{distance, Point};

use crate::draw::{mix, unit};

/// Stream tags separating the draw families.
const STREAM_TARGET: u64 = 1;
const STREAM_HEADING: u64 = 2;
const STREAM_LENGTH: u64 = 3;
const STREAM_JITTER: u64 = 4;

/// Which mobility model moves the deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MobilityModel {
    /// Random waypoint: each node walks toward a uniformly drawn target
    /// at `speed` units per block, pauses `pause` blocks on arrival, then
    /// draws the next target.
    RandomWaypoint {
        /// Distance covered per coherence block.
        speed: f64,
        /// Blocks to rest at each waypoint.
        pause: u64,
    },
    /// Lévy walk: every block each node takes an independent step with
    /// uniform heading and Pareto-distributed length
    /// `scale · u^(-1/exponent)` truncated at `cap`, reflecting off the
    /// deployment bounding box — heavy-tailed hops between local
    /// dwelling, the classic human/animal mobility shape.
    LevyWalk {
        /// Scale (minimum) step length per block.
        scale: f64,
        /// Pareto tail exponent (smaller = heavier tail).
        exponent: f64,
        /// Truncation cap on one block's step length.
        cap: f64,
    },
    /// Reference-point group mobility: nodes are partitioned into
    /// `groups` contiguous index ranges; each group's reference point
    /// does a random-waypoint walk at `speed`, and members keep their
    /// deployment offset from the group centroid plus a per-block jitter
    /// uniform in `[-spread, spread]` per axis.
    Group {
        /// Number of groups (contiguous index partition).
        groups: usize,
        /// Reference-point speed per block.
        speed: f64,
        /// Member jitter amplitude around the moving reference.
        spread: f64,
    },
}

impl MobilityModel {
    /// An upper bound on any node's displacement from its deployment
    /// position after `blocks` coherence blocks, in deployment distance
    /// units. The bound is structural (speed caps and jitter amplitudes,
    /// no draws), so it holds for every seed — which is what lets a
    /// reach scan widen the base topology's hint window conservatively
    /// (`reach + 2 · max_displacement`) instead of scanning all `n`
    /// nodes.
    pub fn max_displacement(&self, blocks: u64) -> f64 {
        let blocks = blocks as f64;
        match *self {
            // A walker covers at most `speed` per block.
            MobilityModel::RandomWaypoint { speed, .. } => speed * blocks,
            // One step per block, truncated at `cap`.
            MobilityModel::LevyWalk { cap, .. } => cap * blocks,
            // The reference point walks at `speed`; members add a
            // per-axis jitter of at most `spread` on top.
            MobilityModel::Group { speed, spread, .. } => {
                speed * blocks + spread * std::f64::consts::SQRT_2
            }
        }
    }
}

/// A mobility model bound to a seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilityConfig {
    /// The movement model.
    pub model: MobilityModel,
    /// Seed for every draw the model makes.
    pub seed: u64,
}

/// One independent walker (a node, or a group reference point).
#[derive(Debug, Clone)]
struct Walker {
    pos: Point,
    target: Point,
    pause_left: u64,
    leg: u64,
}

/// Positions of every node at one coherence block.
#[derive(Debug, Clone)]
pub(crate) struct MobilityState {
    pub block: u64,
    pub pos: Vec<Point>,
    walkers: Vec<Walker>,
}

/// The model plus the immutable deployment facts it moves over.
#[derive(Debug, Clone)]
pub(crate) struct MobilityEngine {
    config: MobilityConfig,
    initial: Vec<Point>,
    lo: Point,
    hi: Point,
    /// Group index per node (Group model; empty otherwise).
    group_of: Vec<usize>,
    /// Initial centroid per group (Group model; empty otherwise).
    centroids: Vec<Point>,
}

/// Reflects `x` into `[lo, hi]` (identity for degenerate ranges).
fn reflect(x: f64, lo: f64, hi: f64) -> f64 {
    let w = hi - lo;
    if w <= 0.0 {
        return lo;
    }
    let mut y = (x - lo).rem_euclid(2.0 * w);
    if y > w {
        y = 2.0 * w - y;
    }
    lo + y
}

impl MobilityEngine {
    /// Binds the model to a deployment.
    ///
    /// # Panics
    ///
    /// Panics on an empty deployment or a `Group` model with zero
    /// groups.
    pub(crate) fn new(config: MobilityConfig, initial: Vec<Point>) -> Self {
        assert!(!initial.is_empty(), "mobility needs at least one node");
        let n = initial.len();
        let lo = (
            initial.iter().map(|p| p.0).fold(f64::INFINITY, f64::min),
            initial.iter().map(|p| p.1).fold(f64::INFINITY, f64::min),
        );
        let hi = (
            initial
                .iter()
                .map(|p| p.0)
                .fold(f64::NEG_INFINITY, f64::max),
            initial
                .iter()
                .map(|p| p.1)
                .fold(f64::NEG_INFINITY, f64::max),
        );
        let (group_of, centroids) = match config.model {
            MobilityModel::Group { groups, .. } => {
                assert!(groups > 0, "group mobility needs at least one group");
                let groups = groups.min(n);
                let group_of: Vec<usize> = (0..n).map(|i| i * groups / n).collect();
                let mut sums = vec![(0.0, 0.0, 0usize); groups];
                for (i, p) in initial.iter().enumerate() {
                    let g = group_of[i];
                    sums[g].0 += p.0;
                    sums[g].1 += p.1;
                    sums[g].2 += 1;
                }
                let centroids = sums
                    .into_iter()
                    .map(|(x, y, c)| (x / c.max(1) as f64, y / c.max(1) as f64))
                    .collect();
                (group_of, centroids)
            }
            _ => (Vec::new(), Vec::new()),
        };
        MobilityEngine {
            config,
            initial,
            lo,
            hi,
            group_of,
            centroids,
        }
    }

    /// A uniformly drawn waypoint for walker `w`'s `leg`-th leg.
    fn draw_target(&self, w: usize, leg: u64) -> Point {
        let seed = self.config.seed;
        let ux = unit(mix(&[seed, STREAM_TARGET, w as u64, leg, 0]));
        let uy = unit(mix(&[seed, STREAM_TARGET, w as u64, leg, 1]));
        (
            self.lo.0 + ux * (self.hi.0 - self.lo.0),
            self.lo.1 + uy * (self.hi.1 - self.lo.1),
        )
    }

    /// The state at block 0: everything exactly at the deployment.
    pub(crate) fn initial_state(&self) -> MobilityState {
        let walker_starts: Vec<Point> = match self.config.model {
            MobilityModel::Group { .. } => self.centroids.clone(),
            _ => self.initial.clone(),
        };
        let walkers = walker_starts
            .into_iter()
            .enumerate()
            .map(|(w, pos)| Walker {
                pos,
                target: self.draw_target(w, 0),
                pause_left: 0,
                leg: 0,
            })
            .collect();
        MobilityState {
            block: 0,
            pos: self.initial.clone(),
            walkers,
        }
    }

    /// Advances the state one coherence block.
    pub(crate) fn advance(&self, state: &mut MobilityState) {
        let next = state.block + 1;
        match self.config.model {
            MobilityModel::RandomWaypoint { speed, pause } => {
                for (w, walker) in state.walkers.iter_mut().enumerate() {
                    step_waypoint(self, w, walker, speed, pause);
                }
                for (i, p) in state.pos.iter_mut().enumerate() {
                    *p = state.walkers[i].pos;
                }
            }
            MobilityModel::LevyWalk {
                scale,
                exponent,
                cap,
            } => {
                let seed = self.config.seed;
                for (w, walker) in state.walkers.iter_mut().enumerate() {
                    let heading =
                        std::f64::consts::TAU * unit(mix(&[seed, STREAM_HEADING, w as u64, next]));
                    // 1 - u is in (0, 1], so the Pareto draw is finite.
                    let u = unit(mix(&[seed, STREAM_LENGTH, w as u64, next]));
                    let len = (scale * (1.0 - u).powf(-1.0 / exponent)).min(cap);
                    walker.pos = (
                        reflect(walker.pos.0 + len * heading.cos(), self.lo.0, self.hi.0),
                        reflect(walker.pos.1 + len * heading.sin(), self.lo.1, self.hi.1),
                    );
                }
                for (i, p) in state.pos.iter_mut().enumerate() {
                    *p = state.walkers[i].pos;
                }
            }
            MobilityModel::Group { speed, spread, .. } => {
                let seed = self.config.seed;
                for (w, walker) in state.walkers.iter_mut().enumerate() {
                    step_waypoint(self, w, walker, speed, 0);
                }
                for (i, p) in state.pos.iter_mut().enumerate() {
                    let g = self.group_of[i];
                    let center = state.walkers[g].pos;
                    let centroid = self.centroids[g];
                    let jx =
                        spread * (2.0 * unit(mix(&[seed, STREAM_JITTER, i as u64, next, 0])) - 1.0);
                    let jy =
                        spread * (2.0 * unit(mix(&[seed, STREAM_JITTER, i as u64, next, 1])) - 1.0);
                    *p = (
                        self.initial[i].0 + (center.0 - centroid.0) + jx,
                        self.initial[i].1 + (center.1 - centroid.1) + jy,
                    );
                }
            }
        }
        state.block = next;
    }
}

/// One random-waypoint block step for a single walker.
fn step_waypoint(engine: &MobilityEngine, w: usize, walker: &mut Walker, speed: f64, pause: u64) {
    if walker.pause_left > 0 {
        walker.pause_left -= 1;
        return;
    }
    let d = distance(walker.pos, walker.target);
    if d <= speed {
        walker.pos = walker.target;
        walker.pause_left = pause;
        walker.leg += 1;
        walker.target = engine.draw_target(w, walker.leg);
    } else if d > 0.0 {
        let f = speed / d;
        walker.pos = (
            walker.pos.0 + f * (walker.target.0 - walker.pos.0),
            walker.pos.1 + f * (walker.target.1 - walker.pos.1),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Vec<Point> {
        (0..n).map(|i| (i as f64, 0.0)).collect()
    }

    fn advance_to(engine: &MobilityEngine, block: u64) -> MobilityState {
        let mut s = engine.initial_state();
        while s.block < block {
            engine.advance(&mut s);
        }
        s
    }

    #[test]
    fn block_zero_is_exactly_the_deployment() {
        for model in [
            MobilityModel::RandomWaypoint {
                speed: 0.5,
                pause: 1,
            },
            MobilityModel::LevyWalk {
                scale: 0.2,
                exponent: 1.5,
                cap: 3.0,
            },
            MobilityModel::Group {
                groups: 3,
                speed: 0.5,
                spread: 0.2,
            },
        ] {
            let pts = line(9);
            let engine = MobilityEngine::new(MobilityConfig { model, seed: 7 }, pts.clone());
            let s = engine.initial_state();
            for (a, b) in s.pos.iter().zip(&pts) {
                assert_eq!(a.0.to_bits(), b.0.to_bits());
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
    }

    #[test]
    fn trajectories_are_deterministic_and_seed_sensitive() {
        let model = MobilityModel::RandomWaypoint {
            speed: 0.7,
            pause: 0,
        };
        let a = MobilityEngine::new(MobilityConfig { model, seed: 7 }, line(8));
        let b = MobilityEngine::new(MobilityConfig { model, seed: 7 }, line(8));
        let c = MobilityEngine::new(MobilityConfig { model, seed: 8 }, line(8));
        let (sa, sb, sc) = (advance_to(&a, 20), advance_to(&b, 20), advance_to(&c, 20));
        assert_eq!(format!("{:?}", sa.pos), format!("{:?}", sb.pos));
        assert_ne!(format!("{:?}", sa.pos), format!("{:?}", sc.pos));
    }

    #[test]
    fn waypoint_stays_inside_the_bounding_box_and_moves() {
        let engine = MobilityEngine::new(
            MobilityConfig {
                model: MobilityModel::RandomWaypoint {
                    speed: 0.9,
                    pause: 1,
                },
                seed: 3,
            },
            line(12),
        );
        let s = advance_to(&engine, 40);
        let moved = s
            .pos
            .iter()
            .zip(line(12))
            .any(|(p, q)| distance(*p, q) > 0.5);
        assert!(moved, "nobody moved after 40 blocks");
        for p in &s.pos {
            assert!((0.0..=11.0).contains(&p.0), "x out of box: {}", p.0);
            assert_eq!(p.1, 0.0, "degenerate axis must stay pinned");
        }
    }

    #[test]
    fn levy_reflects_into_the_box() {
        let engine = MobilityEngine::new(
            MobilityConfig {
                model: MobilityModel::LevyWalk {
                    scale: 0.5,
                    exponent: 1.2,
                    cap: 50.0,
                },
                seed: 11,
            },
            line(6),
        );
        let s = advance_to(&engine, 60);
        for p in &s.pos {
            assert!((0.0..=5.0).contains(&p.0), "x escaped: {}", p.0);
        }
    }

    #[test]
    fn max_displacement_bounds_actual_trajectories() {
        for (model, seeds) in [
            (
                MobilityModel::RandomWaypoint {
                    speed: 0.8,
                    pause: 0,
                },
                0u64..6,
            ),
            (
                MobilityModel::LevyWalk {
                    scale: 0.4,
                    exponent: 1.3,
                    cap: 1.5,
                },
                0..6,
            ),
            (
                MobilityModel::Group {
                    groups: 3,
                    speed: 0.6,
                    spread: 0.3,
                },
                0..6,
            ),
        ] {
            for seed in seeds {
                let pts = line(11);
                let engine = MobilityEngine::new(MobilityConfig { model, seed }, pts.clone());
                let mut s = engine.initial_state();
                for block in 1..=25u64 {
                    engine.advance(&mut s);
                    let bound = model.max_displacement(block);
                    for (p, q) in s.pos.iter().zip(&pts) {
                        let d = distance(*p, *q);
                        assert!(
                            d <= bound + 1e-9,
                            "{model:?} seed {seed} block {block}: moved {d} > bound {bound}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn group_members_follow_their_reference_point() {
        let pts: Vec<Point> = (0..8)
            .map(|i| ((i % 4) as f64, (i / 4) as f64 * 8.0))
            .collect();
        let engine = MobilityEngine::new(
            MobilityConfig {
                model: MobilityModel::Group {
                    groups: 2,
                    speed: 0.6,
                    spread: 0.1,
                },
                seed: 5,
            },
            pts,
        );
        let s = advance_to(&engine, 30);
        // Within a group, pairwise offsets stay near their deployment
        // values (reference translation + bounded jitter), so spread
        // within the group is far below the inter-group scale.
        for g in 0..2 {
            let members: Vec<Point> = (0..8)
                .filter(|i| engine.group_of[*i] == g)
                .map(|i| s.pos[i])
                .collect();
            for w in members.windows(2) {
                assert!(
                    distance(w[0], w[1]) < 4.0,
                    "group {g} scattered: {:?}",
                    members
                );
            }
        }
    }
}
