//! The composite generative channel: mobility, shadowing, and fading
//! layered multiplicatively on any static [`DecayBackend`].
//!
//! The instantaneous decay during coherence block `b` is
//!
//! ```text
//! f_b(i, j) = f(i, j) · M_b(i, j) · S_b(i, j) · F_b(i, j)
//! ```
//!
//! where `f` is the static base field, `M_b` the mobility modulation
//! `(dist_b(i, j) / dist_0(i, j))^α` induced by the moving deployment,
//! `S_b` correlated log-normal shadowing, and `F_b` block Rayleigh
//! fading (each factor 1 when its layer is absent). Because the base
//! term is the *same bit pattern* on dense, lazy, and tiled backends
//! (the existing cross-backend invariant) and every modulation is a pure
//! function of the block, the composite field — and therefore every
//! engine trace over it — is bit-identical across base backends too.
//!
//! Per-block state (mobility positions, per-node shadowing field values)
//! lives in one epoch cache, recomputed at block boundaries; queries for
//! an earlier block rebuild deterministically from block 0, which is how
//! checkpoint restore replays without serialized channel state.

use std::fmt;
use std::sync::{Mutex, MutexGuard};

use decay_core::NodeId;
use decay_engine::{DecayBackend, Tick};
use decay_spaces::{distance, Point};

use crate::fading::FadingConfig;
use crate::mobility::{MobilityConfig, MobilityEngine, MobilityModel, MobilityState};
use crate::shadowing::{ShadowField, ShadowingConfig};
use crate::temporal::{signature_of, TemporalBackend};

/// Decay clamp keeping composite values inside the decay-space contract
/// even under extreme factor stacking.
const MIN_DECAY: f64 = 1e-300;
const MAX_DECAY: f64 = 1e300;

/// Safety margin applied to hint-widening thresholds, absorbing the
/// floating-point slop between `f0 · (db/d0)^α` and the exact `db^α`
/// (and any `pow` monotonicity wobble). Hints may over-approximate
/// freely — candidates are re-filtered against the exact field — so the
/// margin costs a few extra candidates, never correctness.
const HINT_MARGIN: f64 = 1.05;

/// Per-block derived state shared by the layers.
struct Epoch {
    block: u64,
    ready: bool,
    mob: Option<MobilityState>,
    /// Per-node shadowing field values (empty when shadowing is off).
    shadow: Vec<f64>,
    /// Largest displacement of any node from its deployment position
    /// this block (0 when mobility is off) — the measured counterpart
    /// of [`MobilityModel::max_displacement`], used to widen reach
    /// windows exactly as far as the deployment actually drifted.
    max_disp: f64,
    /// Minimum shadowing field value this block (+∞ when shadowing is
    /// off), anchoring the sound floor on any link's shadow factor.
    shadow_min: f64,
}

/// A time-varying gain field over a static base backend. Construct with
/// [`TemporalChannel::new`], attach layers with the `with_*` builders,
/// and hand it to the engine through
/// [`crate::TemporalAdapter`].
pub struct TemporalChannel {
    base: Box<dyn DecayBackend>,
    initial: Vec<Point>,
    alpha: f64,
    block_len: Tick,
    mobility_config: Option<MobilityConfig>,
    shadowing_config: Option<ShadowingConfig>,
    fading: Option<FadingConfig>,
    mobility: Option<MobilityEngine>,
    shadowing: Option<ShadowField>,
    /// Whether the base backend is the geometric field of the
    /// deployment (see [`TemporalChannel::with_geometric_hints`]).
    geometric: bool,
    epoch: Mutex<Epoch>,
}

impl TemporalChannel {
    /// A channel over `base` with no layers yet (identical to the static
    /// field until a `with_*` builder adds dynamics). `points` is the
    /// deployment `base` realizes and `alpha` its path-loss exponent —
    /// both needed by the mobility modulation; `block_len` is the
    /// coherence block length in ticks.
    ///
    /// # Panics
    ///
    /// Panics if `points` does not match the backend's node count,
    /// `alpha` is not positive and finite, or `block_len` is 0.
    pub fn new(
        base: impl DecayBackend + 'static,
        points: Vec<Point>,
        alpha: f64,
        block_len: Tick,
    ) -> Self {
        assert_eq!(
            base.len(),
            points.len(),
            "deployment points must match the backend's node count"
        );
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "alpha must be positive and finite"
        );
        assert!(block_len >= 1, "coherence block must be >= 1 tick");
        TemporalChannel {
            base: Box::new(base),
            initial: points,
            alpha,
            block_len,
            mobility_config: None,
            shadowing_config: None,
            fading: None,
            mobility: None,
            shadowing: None,
            geometric: false,
            epoch: Mutex::new(Epoch {
                block: 0,
                ready: false,
                mob: None,
                shadow: Vec::new(),
                max_disp: 0.0,
                shadow_min: f64::INFINITY,
            }),
        }
    }

    /// Declares that the base backend realizes the *geometric* field of
    /// the deployment — `base.decay(i, j) = dist(points[i], points[j])^alpha`
    /// — enabling structured reach hints: instead of scanning all `n`
    /// nodes per (block, source), the per-block reach scan queries the
    /// base topology's hint window, widened conservatively for every
    /// attached layer (mobility displacement, the block's shadowing
    /// floor, the fading clamp). Hints over-approximate and candidates
    /// are re-filtered against the exact instantaneous field, so they
    /// change cost, never values.
    ///
    /// # Panics
    ///
    /// Panics if a spot check finds a base decay that is not the
    /// geometric decay of the deployment (the declaration would be
    /// unsound: a too-narrow window silently loses deliveries).
    #[must_use]
    pub fn with_geometric_hints(self) -> Self {
        let n = self.initial.len();
        for k in 0..n.min(8) {
            let (i, j) = (k, (k + n / 2 + 1) % n);
            if i == j {
                continue;
            }
            let expect = distance(self.initial[i], self.initial[j]).powf(self.alpha);
            let got = self.base.decay(NodeId::new(i), NodeId::new(j));
            assert!(
                (got - expect).abs() <= expect.abs() * 1e-9,
                "with_geometric_hints: base decay ({i}, {j}) = {got} is not the \
                 geometric {expect} of the deployment"
            );
        }
        TemporalChannel {
            geometric: true,
            ..self
        }
    }

    /// Adds a mobility layer.
    #[must_use]
    pub fn with_mobility(mut self, config: MobilityConfig) -> Self {
        self.mobility = Some(MobilityEngine::new(config, self.initial.clone()));
        self.mobility_config = Some(config);
        self
    }

    /// Adds a correlated shadowing layer.
    #[must_use]
    pub fn with_shadowing(mut self, config: ShadowingConfig) -> Self {
        self.shadowing = Some(ShadowField::new(config, &self.initial));
        self.shadowing_config = Some(config);
        self
    }

    /// Adds a block Rayleigh fading layer.
    #[must_use]
    pub fn with_fading(mut self, config: FadingConfig) -> Self {
        self.fading = Some(config);
        self
    }

    /// The static base backend.
    pub fn base(&self) -> &dyn DecayBackend {
        &*self.base
    }

    /// Node positions during `block` (the deployment when no mobility
    /// layer is attached).
    pub fn positions_in_block(&self, block: u64) -> Vec<Point> {
        if self.mobility.is_none() {
            return self.initial.clone();
        }
        let epoch = self.epoch_at(block);
        epoch
            .mob
            .as_ref()
            .expect("mobility state present")
            .pos
            .clone()
    }

    /// Ensures the epoch cache describes `block` and returns it.
    fn epoch_at(&self, block: u64) -> MutexGuard<'_, Epoch> {
        let mut epoch = self.epoch.lock().expect("epoch cache poisoned");
        if epoch.ready && epoch.block == block {
            return epoch;
        }
        if let Some(engine) = &self.mobility {
            let state = epoch.mob.get_or_insert_with(|| engine.initial_state());
            if state.block > block {
                // Backward query (fresh restore, monitor replay):
                // rebuild deterministically from the deployment.
                *state = engine.initial_state();
            }
            while state.block < block {
                engine.advance(state);
            }
        }
        if let Some(field) = &self.shadowing {
            let values = {
                let positions = epoch.mob.as_ref().map_or(&self.initial[..], |s| &s.pos[..]);
                field.node_values(block, positions)
            };
            epoch.shadow = values;
        }
        epoch.max_disp = epoch.mob.as_ref().map_or(0.0, |s| {
            s.pos
                .iter()
                .zip(&self.initial)
                .map(|(p, q)| distance(*p, *q))
                .fold(0.0, f64::max)
        });
        epoch.shadow_min = epoch.shadow.iter().copied().fold(f64::INFINITY, f64::min);
        epoch.block = block;
        epoch.ready = true;
        epoch
    }

    /// One composite decay evaluation under an already-locked epoch
    /// (`None` when neither mobility nor shadowing is attached). Shared
    /// by the per-pair and batched-row paths so both produce identical
    /// bits: same factors, same order.
    fn decay_with(&self, epoch: Option<&Epoch>, block: u64, from: NodeId, to: NodeId) -> f64 {
        let mut d = self.base.decay(from, to);
        if let Some(epoch) = epoch {
            if self.mobility.is_some() {
                let pos = &epoch.mob.as_ref().expect("mobility state present").pos;
                let d0 = distance(self.initial[from.index()], self.initial[to.index()]);
                // Clamp relative to the deployment separation so nodes
                // drifting onto each other never zero a decay.
                let db = distance(pos[from.index()], pos[to.index()]).max(d0 * 1e-6);
                d *= (db / d0).powf(self.alpha);
            }
            if let Some(field) = &self.shadowing {
                d *= field.link_factor(epoch.shadow[from.index()], epoch.shadow[to.index()]);
            }
        }
        if let Some(fade) = &self.fading {
            d *= fade.decay_factor(block, from, to);
        }
        d.clamp(MIN_DECAY, MAX_DECAY)
    }
}

impl fmt::Debug for TemporalChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TemporalChannel")
            .field("n", &self.initial.len())
            .field("alpha", &self.alpha)
            .field("block_len", &self.block_len)
            .field("mobility", &self.mobility_config)
            .field("shadowing", &self.shadowing_config)
            .field("fading", &self.fading)
            .finish_non_exhaustive()
    }
}

impl TemporalBackend for TemporalChannel {
    fn len(&self) -> usize {
        self.initial.len()
    }

    fn block_len(&self) -> Tick {
        self.block_len
    }

    fn decay_in_block(&self, block: u64, from: NodeId, to: NodeId) -> f64 {
        if from == to {
            return 0.0;
        }
        if self.mobility.is_some() || self.shadowing.is_some() {
            let epoch = self.epoch_at(block);
            self.decay_with(Some(&epoch), block, from, to)
        } else {
            self.decay_with(None, block, from, to)
        }
    }

    fn decay_row_in_block(&self, block: u64, from: NodeId, targets: &[NodeId]) -> Vec<f64> {
        // One epoch solve (mobility positions, shadowing node values)
        // for the whole row, instead of one lock + lookup per pair.
        let epoch =
            (self.mobility.is_some() || self.shadowing.is_some()).then(|| self.epoch_at(block));
        targets
            .iter()
            .map(|&to| {
                if from == to {
                    0.0
                } else {
                    self.decay_with(epoch.as_deref(), block, from, to)
                }
            })
            .collect()
    }

    fn reach_candidates(&self, block: u64, from: NodeId, reach: f64) -> Option<Vec<NodeId>> {
        if !self.geometric {
            return None;
        }
        // Budget in the decay domain: with a geometric base the base
        // decay times the mobility modulation is (up to rounding,
        // absorbed by HINT_MARGIN) the instantaneous distance raised to
        // α, so a node is in reach only when `db^α · S · F ≤ reach`.
        // Bounding the shadow factor below by the block's floor and the
        // fade factor below by the clamp gives
        // `db^α ≤ reach / (S_floor · F_floor)`.
        let mut budget = reach;
        if self.fading.is_some() {
            budget *= crate::fading::MAX_GAIN;
        }
        let mut widen = 0.0;
        if self.mobility.is_some() || self.shadowing.is_some() {
            let epoch = self.epoch_at(block);
            if let Some(field) = &self.shadowing {
                budget /= field.link_factor_floor(epoch.shadow[from.index()], epoch.shadow_min);
            }
            // Both endpoints drifted at most this far from deployment,
            // and never farther than the model's structural bound.
            let measured = epoch.max_disp;
            let model = self
                .mobility_config
                .map_or(0.0, |m| m.model.max_displacement(block));
            widen = 2.0 * measured.min(model);
        }
        // Back to the deployment's decay domain: `d0 ≤ db + widen`.
        let dist = budget.powf(1.0 / self.alpha) * HINT_MARGIN + widen;
        let widened = dist.powf(self.alpha) * HINT_MARGIN;
        if !widened.is_finite() {
            return None;
        }
        Some(
            self.base
                .hint_candidates(from, widened)
                .unwrap_or_else(|| self.base.potential_receivers(from, Some(widened))),
        )
    }

    fn signature(&self) -> u64 {
        let mut words = vec![0xC4A7_7E1Du64, self.block_len, self.alpha.to_bits()];
        if let Some(m) = &self.mobility_config {
            words.push(1);
            words.push(m.seed);
            match m.model {
                MobilityModel::RandomWaypoint { speed, pause } => {
                    words.extend([1, speed.to_bits(), pause]);
                }
                MobilityModel::LevyWalk {
                    scale,
                    exponent,
                    cap,
                } => {
                    words.extend([2, scale.to_bits(), exponent.to_bits(), cap.to_bits()]);
                }
                MobilityModel::Group {
                    groups,
                    speed,
                    spread,
                } => {
                    words.extend([3, groups as u64, speed.to_bits(), spread.to_bits()]);
                }
            }
        }
        if let Some(s) = &self.shadowing_config {
            words.extend([
                2,
                s.sigma_db.to_bits(),
                s.corr_dist.to_bits(),
                s.time_corr.to_bits(),
                s.seed,
            ]);
        }
        if let Some(f) = &self.fading {
            words.extend([3, f.seed]);
        }
        signature_of(&words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decay_engine::LazyBackend;
    use decay_spaces::line_points;

    fn base(n: usize) -> LazyBackend {
        LazyBackend::from_fn(n, |i, j| ((i as f64) - (j as f64)).abs().powi(2))
    }

    fn channel(n: usize) -> TemporalChannel {
        TemporalChannel::new(base(n), line_points(n, 1.0), 2.0, 4)
    }

    #[test]
    fn bare_channel_equals_the_static_base() {
        let ch = channel(10);
        let b = base(10);
        for block in [0, 3, 100] {
            for i in 0..10 {
                for j in 0..10 {
                    let (p, q) = (NodeId::new(i), NodeId::new(j));
                    assert_eq!(
                        ch.decay_in_block(block, p, q).to_bits(),
                        b.decay(p, q).to_bits(),
                        "block {block} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn mobility_layer_is_identity_at_block_zero() {
        let ch = channel(10).with_mobility(MobilityConfig {
            model: MobilityModel::RandomWaypoint {
                speed: 0.5,
                pause: 0,
            },
            seed: 7,
        });
        let b = base(10);
        let (p, q) = (NodeId::new(2), NodeId::new(7));
        assert_eq!(
            ch.decay_in_block(0, p, q).to_bits(),
            b.decay(p, q).to_bits()
        );
        // ...and genuinely drifts later.
        let drifted =
            (1..30).any(|blk| ch.decay_in_block(blk, p, q).to_bits() != b.decay(p, q).to_bits());
        assert!(drifted, "mobility never changed the decay");
    }

    #[test]
    fn epoch_cache_rebuilds_backward_queries_exactly() {
        let make = || {
            channel(8).with_mobility(MobilityConfig {
                model: MobilityModel::LevyWalk {
                    scale: 0.3,
                    exponent: 1.4,
                    cap: 2.0,
                },
                seed: 3,
            })
        };
        let fresh = make();
        let reused = make();
        let (p, q) = (NodeId::new(1), NodeId::new(6));
        // Drive the reused channel forward, then query backward.
        let forward = reused.decay_in_block(9, p, q);
        let back = reused.decay_in_block(4, p, q);
        assert_eq!(back.to_bits(), fresh.decay_in_block(4, p, q).to_bits());
        assert_eq!(
            reused.decay_in_block(9, p, q).to_bits(),
            forward.to_bits(),
            "re-advancing lands on the same field"
        );
    }

    #[test]
    fn all_layers_compose_and_stay_positive() {
        let ch = channel(12)
            .with_mobility(MobilityConfig {
                model: MobilityModel::Group {
                    groups: 3,
                    speed: 0.4,
                    spread: 0.2,
                },
                seed: 5,
            })
            .with_shadowing(ShadowingConfig {
                sigma_db: 6.0,
                corr_dist: 2.0,
                time_corr: 0.6,
                seed: 8,
            })
            .with_fading(FadingConfig { seed: 13 });
        for block in 0..20 {
            for i in 0..12 {
                for j in 0..12 {
                    let d = ch.decay_in_block(block, NodeId::new(i), NodeId::new(j));
                    if i == j {
                        assert_eq!(d, 0.0);
                    } else {
                        assert!(d.is_finite() && d > 0.0, "block {block} ({i},{j}): {d}");
                    }
                }
            }
        }
    }

    #[test]
    fn signatures_distinguish_configurations() {
        let a = channel(6).with_fading(FadingConfig { seed: 1 });
        let b = channel(6).with_fading(FadingConfig { seed: 2 });
        let c = channel(6).with_fading(FadingConfig { seed: 1 });
        assert_ne!(a.signature(), b.signature());
        assert_eq!(a.signature(), c.signature());
        assert_ne!(a.signature(), 0);
        assert_ne!(channel(6).signature(), a.signature());
    }
}
