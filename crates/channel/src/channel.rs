//! The composite generative channel: mobility, shadowing, and fading
//! layered multiplicatively on any static [`DecayBackend`].
//!
//! The instantaneous decay during coherence block `b` is
//!
//! ```text
//! f_b(i, j) = f(i, j) · M_b(i, j) · S_b(i, j) · F_b(i, j)
//! ```
//!
//! where `f` is the static base field, `M_b` the mobility modulation
//! `(dist_b(i, j) / dist_0(i, j))^α` induced by the moving deployment,
//! `S_b` correlated log-normal shadowing, and `F_b` block Rayleigh
//! fading (each factor 1 when its layer is absent). Because the base
//! term is the *same bit pattern* on dense, lazy, and tiled backends
//! (the existing cross-backend invariant) and every modulation is a pure
//! function of the block, the composite field — and therefore every
//! engine trace over it — is bit-identical across base backends too.
//!
//! Per-block state (mobility positions, per-node shadowing field values)
//! lives in one epoch cache, recomputed at block boundaries; queries for
//! an earlier block rebuild deterministically from block 0, which is how
//! checkpoint restore replays without serialized channel state.

use std::fmt;
use std::sync::{Mutex, MutexGuard};

use decay_core::NodeId;
use decay_engine::{DecayBackend, Tick};
use decay_spaces::{distance, Point};

use crate::fading::FadingConfig;
use crate::mobility::{MobilityConfig, MobilityEngine, MobilityModel, MobilityState};
use crate::shadowing::{ShadowField, ShadowingConfig};
use crate::temporal::{signature_of, TemporalBackend};

/// Decay clamp keeping composite values inside the decay-space contract
/// even under extreme factor stacking.
const MIN_DECAY: f64 = 1e-300;
const MAX_DECAY: f64 = 1e300;

/// Per-block derived state shared by the layers.
struct Epoch {
    block: u64,
    ready: bool,
    mob: Option<MobilityState>,
    /// Per-node shadowing field values (empty when shadowing is off).
    shadow: Vec<f64>,
}

/// A time-varying gain field over a static base backend. Construct with
/// [`TemporalChannel::new`], attach layers with the `with_*` builders,
/// and hand it to the engine through
/// [`crate::TemporalAdapter`].
pub struct TemporalChannel {
    base: Box<dyn DecayBackend>,
    initial: Vec<Point>,
    alpha: f64,
    block_len: Tick,
    mobility_config: Option<MobilityConfig>,
    shadowing_config: Option<ShadowingConfig>,
    fading: Option<FadingConfig>,
    mobility: Option<MobilityEngine>,
    shadowing: Option<ShadowField>,
    epoch: Mutex<Epoch>,
}

impl TemporalChannel {
    /// A channel over `base` with no layers yet (identical to the static
    /// field until a `with_*` builder adds dynamics). `points` is the
    /// deployment `base` realizes and `alpha` its path-loss exponent —
    /// both needed by the mobility modulation; `block_len` is the
    /// coherence block length in ticks.
    ///
    /// # Panics
    ///
    /// Panics if `points` does not match the backend's node count,
    /// `alpha` is not positive and finite, or `block_len` is 0.
    pub fn new(
        base: impl DecayBackend + 'static,
        points: Vec<Point>,
        alpha: f64,
        block_len: Tick,
    ) -> Self {
        assert_eq!(
            base.len(),
            points.len(),
            "deployment points must match the backend's node count"
        );
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "alpha must be positive and finite"
        );
        assert!(block_len >= 1, "coherence block must be >= 1 tick");
        TemporalChannel {
            base: Box::new(base),
            initial: points,
            alpha,
            block_len,
            mobility_config: None,
            shadowing_config: None,
            fading: None,
            mobility: None,
            shadowing: None,
            epoch: Mutex::new(Epoch {
                block: 0,
                ready: false,
                mob: None,
                shadow: Vec::new(),
            }),
        }
    }

    /// Adds a mobility layer.
    #[must_use]
    pub fn with_mobility(mut self, config: MobilityConfig) -> Self {
        self.mobility = Some(MobilityEngine::new(config, self.initial.clone()));
        self.mobility_config = Some(config);
        self
    }

    /// Adds a correlated shadowing layer.
    #[must_use]
    pub fn with_shadowing(mut self, config: ShadowingConfig) -> Self {
        self.shadowing = Some(ShadowField::new(config, &self.initial));
        self.shadowing_config = Some(config);
        self
    }

    /// Adds a block Rayleigh fading layer.
    #[must_use]
    pub fn with_fading(mut self, config: FadingConfig) -> Self {
        self.fading = Some(config);
        self
    }

    /// The static base backend.
    pub fn base(&self) -> &dyn DecayBackend {
        &*self.base
    }

    /// Node positions during `block` (the deployment when no mobility
    /// layer is attached).
    pub fn positions_in_block(&self, block: u64) -> Vec<Point> {
        if self.mobility.is_none() {
            return self.initial.clone();
        }
        let epoch = self.epoch_at(block);
        epoch
            .mob
            .as_ref()
            .expect("mobility state present")
            .pos
            .clone()
    }

    /// Ensures the epoch cache describes `block` and returns it.
    fn epoch_at(&self, block: u64) -> MutexGuard<'_, Epoch> {
        let mut epoch = self.epoch.lock().expect("epoch cache poisoned");
        if epoch.ready && epoch.block == block {
            return epoch;
        }
        if let Some(engine) = &self.mobility {
            let state = epoch.mob.get_or_insert_with(|| engine.initial_state());
            if state.block > block {
                // Backward query (fresh restore, monitor replay):
                // rebuild deterministically from the deployment.
                *state = engine.initial_state();
            }
            while state.block < block {
                engine.advance(state);
            }
        }
        if let Some(field) = &self.shadowing {
            let values = {
                let positions = epoch.mob.as_ref().map_or(&self.initial[..], |s| &s.pos[..]);
                field.node_values(block, positions)
            };
            epoch.shadow = values;
        }
        epoch.block = block;
        epoch.ready = true;
        epoch
    }
}

impl fmt::Debug for TemporalChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TemporalChannel")
            .field("n", &self.initial.len())
            .field("alpha", &self.alpha)
            .field("block_len", &self.block_len)
            .field("mobility", &self.mobility_config)
            .field("shadowing", &self.shadowing_config)
            .field("fading", &self.fading)
            .finish_non_exhaustive()
    }
}

impl TemporalBackend for TemporalChannel {
    fn len(&self) -> usize {
        self.initial.len()
    }

    fn block_len(&self) -> Tick {
        self.block_len
    }

    fn decay_in_block(&self, block: u64, from: NodeId, to: NodeId) -> f64 {
        if from == to {
            return 0.0;
        }
        let mut d = self.base.decay(from, to);
        if self.mobility.is_some() || self.shadowing.is_some() {
            let epoch = self.epoch_at(block);
            if self.mobility.is_some() {
                let pos = &epoch.mob.as_ref().expect("mobility state present").pos;
                let d0 = distance(self.initial[from.index()], self.initial[to.index()]);
                // Clamp relative to the deployment separation so nodes
                // drifting onto each other never zero a decay.
                let db = distance(pos[from.index()], pos[to.index()]).max(d0 * 1e-6);
                d *= (db / d0).powf(self.alpha);
            }
            if let Some(field) = &self.shadowing {
                d *= field.link_factor(epoch.shadow[from.index()], epoch.shadow[to.index()]);
            }
        }
        if let Some(fade) = &self.fading {
            d *= fade.decay_factor(block, from, to);
        }
        d.clamp(MIN_DECAY, MAX_DECAY)
    }

    fn signature(&self) -> u64 {
        let mut words = vec![0xC4A7_7E1Du64, self.block_len, self.alpha.to_bits()];
        if let Some(m) = &self.mobility_config {
            words.push(1);
            words.push(m.seed);
            match m.model {
                MobilityModel::RandomWaypoint { speed, pause } => {
                    words.extend([1, speed.to_bits(), pause]);
                }
                MobilityModel::LevyWalk {
                    scale,
                    exponent,
                    cap,
                } => {
                    words.extend([2, scale.to_bits(), exponent.to_bits(), cap.to_bits()]);
                }
                MobilityModel::Group {
                    groups,
                    speed,
                    spread,
                } => {
                    words.extend([3, groups as u64, speed.to_bits(), spread.to_bits()]);
                }
            }
        }
        if let Some(s) = &self.shadowing_config {
            words.extend([
                2,
                s.sigma_db.to_bits(),
                s.corr_dist.to_bits(),
                s.time_corr.to_bits(),
                s.seed,
            ]);
        }
        if let Some(f) = &self.fading {
            words.extend([3, f.seed]);
        }
        signature_of(&words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decay_engine::LazyBackend;
    use decay_spaces::line_points;

    fn base(n: usize) -> LazyBackend {
        LazyBackend::from_fn(n, |i, j| ((i as f64) - (j as f64)).abs().powi(2))
    }

    fn channel(n: usize) -> TemporalChannel {
        TemporalChannel::new(base(n), line_points(n, 1.0), 2.0, 4)
    }

    #[test]
    fn bare_channel_equals_the_static_base() {
        let ch = channel(10);
        let b = base(10);
        for block in [0, 3, 100] {
            for i in 0..10 {
                for j in 0..10 {
                    let (p, q) = (NodeId::new(i), NodeId::new(j));
                    assert_eq!(
                        ch.decay_in_block(block, p, q).to_bits(),
                        b.decay(p, q).to_bits(),
                        "block {block} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn mobility_layer_is_identity_at_block_zero() {
        let ch = channel(10).with_mobility(MobilityConfig {
            model: MobilityModel::RandomWaypoint {
                speed: 0.5,
                pause: 0,
            },
            seed: 7,
        });
        let b = base(10);
        let (p, q) = (NodeId::new(2), NodeId::new(7));
        assert_eq!(
            ch.decay_in_block(0, p, q).to_bits(),
            b.decay(p, q).to_bits()
        );
        // ...and genuinely drifts later.
        let drifted =
            (1..30).any(|blk| ch.decay_in_block(blk, p, q).to_bits() != b.decay(p, q).to_bits());
        assert!(drifted, "mobility never changed the decay");
    }

    #[test]
    fn epoch_cache_rebuilds_backward_queries_exactly() {
        let make = || {
            channel(8).with_mobility(MobilityConfig {
                model: MobilityModel::LevyWalk {
                    scale: 0.3,
                    exponent: 1.4,
                    cap: 2.0,
                },
                seed: 3,
            })
        };
        let fresh = make();
        let reused = make();
        let (p, q) = (NodeId::new(1), NodeId::new(6));
        // Drive the reused channel forward, then query backward.
        let forward = reused.decay_in_block(9, p, q);
        let back = reused.decay_in_block(4, p, q);
        assert_eq!(back.to_bits(), fresh.decay_in_block(4, p, q).to_bits());
        assert_eq!(
            reused.decay_in_block(9, p, q).to_bits(),
            forward.to_bits(),
            "re-advancing lands on the same field"
        );
    }

    #[test]
    fn all_layers_compose_and_stay_positive() {
        let ch = channel(12)
            .with_mobility(MobilityConfig {
                model: MobilityModel::Group {
                    groups: 3,
                    speed: 0.4,
                    spread: 0.2,
                },
                seed: 5,
            })
            .with_shadowing(ShadowingConfig {
                sigma_db: 6.0,
                corr_dist: 2.0,
                time_corr: 0.6,
                seed: 8,
            })
            .with_fading(FadingConfig { seed: 13 });
        for block in 0..20 {
            for i in 0..12 {
                for j in 0..12 {
                    let d = ch.decay_in_block(block, NodeId::new(i), NodeId::new(j));
                    if i == j {
                        assert_eq!(d, 0.0);
                    } else {
                        assert!(d.is_finite() && d > 0.0, "block {block} ({i},{j}): {d}");
                    }
                }
            }
        }
    }

    #[test]
    fn signatures_distinguish_configurations() {
        let a = channel(6).with_fading(FadingConfig { seed: 1 });
        let b = channel(6).with_fading(FadingConfig { seed: 2 });
        let c = channel(6).with_fading(FadingConfig { seed: 1 });
        assert_ne!(a.signature(), b.signature());
        assert_eq!(a.signature(), c.signature());
        assert_ne!(a.signature(), 0);
        assert_ne!(channel(6).signature(), a.signature());
    }
}
