//! The temporal backend abstraction and its bridge into the engine.
//!
//! A [`TemporalBackend`] is a gain field quantized in time: decays are
//! constant within one *coherence block* of `block_len` ticks and may
//! change arbitrarily between blocks. The block structure is what keeps
//! the engine's hot path `O(active · k)`: reach candidate sets are only
//! recomputed when the block index changes, and within a block every
//! evaluation is as cheap as a static backend's.
//!
//! [`TemporalAdapter`] implements [`decay_engine::DecayBackend`] on top,
//! overriding the tick-aware methods (`decay_at`,
//! `potential_receivers_at`, `channel_signature`) so an unmodified
//! [`decay_engine::Engine`] runs time-varying channels. The adapter's
//! *static* view (`decay`, `potential_receivers`) is the block-0 field —
//! what deployment-time computations (broadcast neighborhoods, link
//! viability) see.

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

use decay_core::NodeId;
use decay_engine::{DecayBackend, Tick};

use crate::draw::mix;

/// A deterministic gain field quantized into coherence blocks.
///
/// Implementations must be pure: `decay_in_block(b, p, q)` is a function
/// of `(b, p, q)` and the construction parameters alone, returning
/// finite, strictly positive values off the diagonal and 0 on it — the
/// [`decay_core::DecaySpace`] contract per block. Purity is what lets
/// checkpoints carry only a [`Self::signature`] instead of channel
/// state: a rebuilt channel with the same parameters replays the same
/// field.
pub trait TemporalBackend: Send + Sync {
    /// Number of nodes.
    fn len(&self) -> usize;

    /// Whether the field has no nodes (never true for valid channels;
    /// for API completeness).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Coherence block length in ticks (≥ 1).
    fn block_len(&self) -> Tick;

    /// The decay of `(from, to)` during coherence block `block`.
    fn decay_in_block(&self, block: u64, from: NodeId, to: NodeId) -> f64;

    /// A non-zero fingerprint of the channel's configuration, recorded in
    /// engine checkpoints (format v3) and verified on restore.
    fn signature(&self) -> u64;
}

/// Folds key words into a non-zero channel signature (0 is reserved for
/// static backends).
pub(crate) fn signature_of(words: &[u64]) -> u64 {
    mix(words).max(1)
}

/// Cached reach candidate lists for the current coherence block.
struct ReachCache {
    block: u64,
    /// `(from, reach bits)` → candidates, valid for `block` only.
    lists: HashMap<(usize, u64), Vec<NodeId>>,
}

/// Adapts a [`TemporalBackend`] to the engine's [`DecayBackend`].
///
/// Reach sets are exact per block (a full scan against the instantaneous
/// field — no structural hint survives mobility) but cached for the
/// block's duration, so the scan cost amortizes over `block_len` ticks
/// of transmissions.
pub struct TemporalAdapter {
    inner: Box<dyn TemporalBackend>,
    cache: Mutex<ReachCache>,
}

impl TemporalAdapter {
    /// Wraps a temporal backend.
    ///
    /// # Panics
    ///
    /// Panics if the backend declares a zero block length.
    pub fn new(inner: impl TemporalBackend + 'static) -> Self {
        assert!(inner.block_len() >= 1, "coherence block must be >= 1 tick");
        TemporalAdapter {
            inner: Box::new(inner),
            cache: Mutex::new(ReachCache {
                block: 0,
                lists: HashMap::new(),
            }),
        }
    }

    /// The wrapped temporal backend.
    pub fn inner(&self) -> &dyn TemporalBackend {
        &*self.inner
    }

    /// The coherence block covering `tick`.
    pub fn block_of(&self, tick: Tick) -> u64 {
        tick / self.inner.block_len()
    }

    fn receivers_in_block(&self, block: u64, from: NodeId, reach: Option<f64>) -> Vec<NodeId> {
        let n = self.inner.len();
        let Some(r) = reach else {
            return (0..n)
                .filter(|&j| j != from.index())
                .map(NodeId::new)
                .collect();
        };
        let mut cache = self.cache.lock().expect("reach cache poisoned");
        if cache.block != block {
            cache.lists.clear();
            cache.block = block;
        }
        cache
            .lists
            .entry((from.index(), r.to_bits()))
            .or_insert_with(|| {
                (0..n)
                    .filter(|&j| j != from.index())
                    .map(NodeId::new)
                    .filter(|&to| self.inner.decay_in_block(block, from, to) <= r)
                    .collect()
            })
            .clone()
    }
}

impl fmt::Debug for TemporalAdapter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TemporalAdapter")
            .field("n", &self.inner.len())
            .field("block_len", &self.inner.block_len())
            .field("signature", &self.inner.signature())
            .finish_non_exhaustive()
    }
}

impl DecayBackend for TemporalAdapter {
    fn len(&self) -> usize {
        self.inner.len()
    }

    /// The block-0 field (the deployment-time static view).
    fn decay(&self, from: NodeId, to: NodeId) -> f64 {
        self.inner.decay_in_block(0, from, to)
    }

    fn decay_at(&self, tick: Tick, from: NodeId, to: NodeId) -> f64 {
        self.inner.decay_in_block(self.block_of(tick), from, to)
    }

    fn potential_receivers(&self, from: NodeId, reach: Option<f64>) -> Vec<NodeId> {
        self.receivers_in_block(0, from, reach)
    }

    fn potential_receivers_at(&self, tick: Tick, from: NodeId, reach: Option<f64>) -> Vec<NodeId> {
        self.receivers_in_block(self.block_of(tick), from, reach)
    }

    fn channel_signature(&self) -> u64 {
        self.inner.signature()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy field: decay |i - j|² scaled by (1 + block).
    struct Pulse {
        n: usize,
    }

    impl TemporalBackend for Pulse {
        fn len(&self) -> usize {
            self.n
        }
        fn block_len(&self) -> Tick {
            4
        }
        fn decay_in_block(&self, block: u64, from: NodeId, to: NodeId) -> f64 {
            if from == to {
                return 0.0;
            }
            let d = (from.index() as f64 - to.index() as f64).abs();
            d * d * (1.0 + block as f64)
        }
        fn signature(&self) -> u64 {
            signature_of(&[0xD0, self.n as u64])
        }
    }

    #[test]
    fn adapter_maps_ticks_to_blocks() {
        let a = TemporalAdapter::new(Pulse { n: 8 });
        let (x, y) = (NodeId::new(1), NodeId::new(3));
        assert_eq!(a.decay_at(0, x, y), 4.0);
        assert_eq!(a.decay_at(3, x, y), 4.0, "same block");
        assert_eq!(a.decay_at(4, x, y), 8.0, "next block");
        assert_eq!(a.decay(x, y), 4.0, "static view is block 0");
        assert_eq!(a.channel_signature(), Pulse { n: 8 }.signature());
        assert_ne!(a.channel_signature(), 0);
    }

    #[test]
    fn reach_sets_track_the_block() {
        let a = TemporalAdapter::new(Pulse { n: 10 });
        let at0 = a.potential_receivers_at(0, NodeId::new(5), Some(4.0));
        // Block 0: d² ≤ 4 ⇒ distance ≤ 2.
        assert_eq!(
            at0,
            vec![3, 4, 6, 7]
                .into_iter()
                .map(NodeId::new)
                .collect::<Vec<_>>()
        );
        // Block 3: 4·d² ≤ 4 ⇒ distance ≤ 1 — the field tightened.
        let at12 = a.potential_receivers_at(12, NodeId::new(5), Some(4.0));
        assert_eq!(
            at12,
            vec![4, 6].into_iter().map(NodeId::new).collect::<Vec<_>>()
        );
        // Cached answer is identical on a repeat query.
        assert_eq!(
            a.potential_receivers_at(13, NodeId::new(5), Some(4.0)),
            at12
        );
        // No reach = everyone else, any block.
        assert_eq!(a.potential_receivers_at(12, NodeId::new(5), None).len(), 9);
    }
}
