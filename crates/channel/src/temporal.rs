//! The temporal backend abstraction and its bridge into the engine.
//!
//! A [`TemporalBackend`] is a gain field quantized in time: decays are
//! constant within one *coherence block* of `block_len` ticks and may
//! change arbitrarily between blocks. The block structure is what keeps
//! the engine's hot path `O(active · k)`: reach candidate sets are only
//! recomputed when the block index changes, and within a block every
//! evaluation is as cheap as a static backend's.
//!
//! [`TemporalAdapter`] implements [`decay_engine::DecayBackend`] on top,
//! overriding the tick-aware methods (`decay_at`,
//! `potential_receivers_at`, `channel_signature`) so an unmodified
//! [`decay_engine::Engine`] runs time-varying channels. The adapter's
//! *static* view (`decay`, `potential_receivers`) is the block-0 field —
//! what deployment-time computations (broadcast neighborhoods, link
//! viability) see.
//!
//! # Epoch snapshots
//!
//! Per-block state lives in immutable [`BlockSnapshot`]s published
//! through a lock-free [`decay_core::EpochCell`], not behind a mutex:
//! the block-0 snapshot is pinned for the adapter's lifetime and the
//! current block's snapshot is swapped in at block boundaries, so
//! interleaved static-view and tick-aware queries (monitor sampling,
//! deployment-time neighborhood checks mid-run) can never invalidate
//! each other's cache — the thrash that once forced an `O(n)` rescan
//! per call. Within a snapshot, each touched source gets one immutable
//! row: a dense decay cache over the source's candidate window, built
//! by a single batched [`TemporalBackend::decay_row_in_block`] call
//! (one epoch solve per row, not per pair) and shared by reach queries
//! and hot-path `decay_at` lookups alike, so the backend evaluates at
//! most once per (block, pair).

use std::fmt;
use std::sync::{Arc, OnceLock};

use decay_core::telemetry::{Counter, Counters, Timer};
use decay_core::{EpochCell, NodeId};
use decay_engine::{DecayBackend, Tick};

use crate::draw::mix;

/// A deterministic gain field quantized into coherence blocks.
///
/// Implementations must be pure: `decay_in_block(b, p, q)` is a function
/// of `(b, p, q)` and the construction parameters alone, returning
/// finite, strictly positive values off the diagonal and 0 on it — the
/// [`decay_core::DecaySpace`] contract per block. Purity is what lets
/// checkpoints carry only a [`Self::signature`] instead of channel
/// state: a rebuilt channel with the same parameters replays the same
/// field.
pub trait TemporalBackend: Send + Sync {
    /// Number of nodes.
    fn len(&self) -> usize;

    /// Whether the field has no nodes (never true for valid channels;
    /// for API completeness).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Coherence block length in ticks (≥ 1).
    fn block_len(&self) -> Tick;

    /// The decay of `(from, to)` during coherence block `block`.
    fn decay_in_block(&self, block: u64, from: NodeId, to: NodeId) -> f64;

    /// The decays from `from` to each of `targets` during `block`, in
    /// order. Must agree bit-for-bit with per-pair
    /// [`Self::decay_in_block`] calls; the point of the method is
    /// *cost* — implementations with per-block derived state (mobility
    /// positions, shadowing fields) resolve it once for the whole row
    /// instead of once per pair. The default delegates pair by pair.
    fn decay_row_in_block(&self, block: u64, from: NodeId, targets: &[NodeId]) -> Vec<f64> {
        targets
            .iter()
            .map(|&to| self.decay_in_block(block, from, to))
            .collect()
    }

    /// A conservative candidate-receiver window for a reach scan: every
    /// node whose decay from `from` during `block` can possibly be
    /// `≤ reach` must appear (supersets, duplicates, and `from` itself
    /// are fine — callers re-filter against the exact field). `None`
    /// means no structural bound exists and the caller must scan all
    /// `n` nodes. The default declines.
    fn reach_candidates(&self, block: u64, from: NodeId, reach: f64) -> Option<Vec<NodeId>> {
        let _ = (block, from, reach);
        None
    }

    /// A non-zero fingerprint of the channel's configuration, recorded in
    /// engine checkpoints (format v3) and verified on restore.
    fn signature(&self) -> u64;
}

/// Folds key words into a non-zero channel signature (0 is reserved for
/// static backends).
pub(crate) fn signature_of(words: &[u64]) -> u64 {
    mix(words).max(1)
}

/// Reach-scan counters for one [`TemporalAdapter`] (cumulative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanStats {
    /// Reach scans performed (row builds plus uncached wide-reach
    /// scans) — at most one per (block, source) on the cached path.
    pub scans: u64,
    /// Total candidate pairs evaluated across those scans. Dividing by
    /// `scans` gives the effective candidate-window width; without
    /// structured hints it is `n`.
    pub pairs: u64,
}

/// One source's immutable per-block row cache.
struct SourceRow {
    /// Sorted candidate ids the row covers; `None` means every node
    /// (a dense row indexed by node).
    candidates: Option<Vec<NodeId>>,
    /// The largest reach the candidate window is valid for (`∞` for
    /// dense rows); queries beyond it bypass the row.
    window_reach: f64,
    /// Decays aligned with `candidates` (dense rows: indexed by node).
    decays: Vec<f64>,
    /// The first exact reach list materialized from this row, keyed by
    /// the reach bits (runs overwhelmingly use one reach value; other
    /// reaches re-filter `decays` without re-evaluating the field).
    list: OnceLock<(u64, Vec<NodeId>)>,
}

impl SourceRow {
    /// The cached decay for `to`, if the row covers it.
    fn lookup(&self, from: NodeId, to: NodeId) -> Option<f64> {
        match &self.candidates {
            None => self.decays.get(to.index()).copied(),
            Some(c) => {
                if from == to {
                    return Some(0.0);
                }
                c.binary_search(&to).ok().map(|k| self.decays[k])
            }
        }
    }

    /// The exact receiver list for `reach`, filtered from the cached
    /// decays (ascending node order, matching a brute-force scan).
    fn filter(&self, from: NodeId, reach: f64) -> Vec<NodeId> {
        match &self.candidates {
            None => (0..self.decays.len())
                .filter(|&j| j != from.index() && self.decays[j] <= reach)
                .map(NodeId::new)
                .collect(),
            Some(c) => c
                .iter()
                .zip(&self.decays)
                .filter(|&(_, &d)| d <= reach)
                .map(|(&v, _)| v)
                .collect(),
        }
    }
}

/// The immutable per-block snapshot: one lazily built [`SourceRow`] per
/// touched source. Snapshots are never mutated after a row is built —
/// rows fill in exactly once through their `OnceLock` — so readers need
/// no synchronization beyond the `EpochCell` load that handed them the
/// snapshot.
struct BlockSnapshot {
    block: u64,
    rows: Box<[OnceLock<Box<SourceRow>>]>,
}

impl BlockSnapshot {
    fn empty(block: u64, n: usize) -> Self {
        BlockSnapshot {
            block,
            rows: (0..n).map(|_| OnceLock::new()).collect(),
        }
    }
}

/// Adapts a [`TemporalBackend`] to the engine's [`DecayBackend`].
///
/// Reach sets are exact per block — a scan against the instantaneous
/// field over the backend's candidate window
/// ([`TemporalBackend::reach_candidates`], all `n` nodes when the
/// backend has no structural hint) — and cached in the block's
/// snapshot, so the scan cost amortizes over `block_len` ticks of
/// transmissions. The block-0 snapshot (the static deployment view) is
/// pinned independently of the current block's, so interleaving
/// `potential_receivers` with `potential_receivers_at` never thrashes
/// either cache.
pub struct TemporalAdapter {
    inner: Box<dyn TemporalBackend>,
    n: usize,
    /// The pinned block-0 snapshot backing the static view.
    block0: Arc<BlockSnapshot>,
    /// The current block's snapshot, swapped at block boundaries.
    current: EpochCell<BlockSnapshot>,
    /// All node ids in order, built once — unbounded-reach
    /// (`reach: None`) lists are sliced out of it per call (two
    /// memcpys around the source) instead of re-filtering `0..n`, and
    /// it is block-independent so it lives beside the snapshots.
    all_nodes: OnceLock<Vec<NodeId>>,
    /// Channel-side telemetry sink (row builds/hits, window widths,
    /// epoch traffic), surfaced through [`DecayBackend::telemetry`].
    /// Disjoint from the engine's counter set, so merged snapshots
    /// never double-count.
    telemetry: Counters,
}

/// Compile-time `Send + Sync` audit: the adapter is shared by resolver
/// lanes during parallel SINR resolution and moves between worker
/// threads when a run session is parked and resumed, so its whole cache
/// machinery (`EpochCell`, `OnceLock` rows, telemetry sink) must be
/// thread-safe. If a field regresses, this stops compiling.
#[allow(dead_code)]
fn _assert_adapter_is_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TemporalAdapter>();
    assert_send_sync::<BlockSnapshot>();
    assert_send_sync::<decay_core::EpochCell<BlockSnapshot>>();
}

impl TemporalAdapter {
    /// Wraps a temporal backend.
    ///
    /// # Panics
    ///
    /// Panics if the backend declares a zero block length.
    pub fn new(inner: impl TemporalBackend + 'static) -> Self {
        assert!(inner.block_len() >= 1, "coherence block must be >= 1 tick");
        let n = inner.len();
        let block0 = Arc::new(BlockSnapshot::empty(0, n));
        TemporalAdapter {
            inner: Box::new(inner),
            n,
            current: EpochCell::new(Arc::clone(&block0)),
            block0,
            all_nodes: OnceLock::new(),
            telemetry: Counters::new(),
        }
    }

    /// The wrapped temporal backend.
    pub fn inner(&self) -> &dyn TemporalBackend {
        &*self.inner
    }

    /// The coherence block covering `tick`.
    pub fn block_of(&self, tick: Tick) -> u64 {
        tick / self.inner.block_len()
    }

    /// Cumulative reach-scan counters (diagnostic; see E39). A view
    /// over the adapter's telemetry sink: `scans` is rows built,
    /// `pairs` the summed candidate-window widths.
    pub fn scan_stats(&self) -> ScanStats {
        ScanStats {
            scans: self.telemetry.get(Counter::RowsBuilt),
            pairs: self.telemetry.get(Counter::RowPairs),
        }
    }

    /// The snapshot for `block`, publishing a fresh one if the current
    /// block moved on. Block 0 is pinned and never republished.
    fn snapshot(&self, block: u64) -> Arc<BlockSnapshot> {
        if block == 0 {
            return Arc::clone(&self.block0);
        }
        let current = self.current.load();
        self.telemetry.add(Counter::EpochLoads, 1);
        if current.block == block {
            return current;
        }
        let n = self.n;
        self.current.update_if(|cur| {
            (cur.block != block).then(|| {
                self.telemetry.add(Counter::EpochSwaps, 1);
                Arc::new(BlockSnapshot::empty(block, n))
            })
        })
    }

    /// Evaluates one candidate window against the instantaneous field.
    fn scan(&self, block: u64, from: NodeId, reach: f64) -> SourceRow {
        let (candidates, window_reach) = match self.inner.reach_candidates(block, from, reach) {
            None => (None, f64::INFINITY),
            Some(mut c) => {
                c.retain(|&v| v != from && v.index() < self.n);
                c.sort_unstable();
                c.dedup();
                (Some(c), reach)
            }
        };
        let timer = self.telemetry.timer_start();
        let decays = match &candidates {
            None => {
                let all: Vec<NodeId> = (0..self.n).map(NodeId::new).collect();
                self.inner.decay_row_in_block(block, from, &all)
            }
            Some(c) => self.inner.decay_row_in_block(block, from, c),
        };
        self.telemetry.timer_stop(Timer::RowBuild, timer);
        self.telemetry.add(Counter::RowsBuilt, 1);
        self.telemetry.add(Counter::RowPairs, decays.len() as u64);
        SourceRow {
            candidates,
            window_reach,
            decays,
            list: OnceLock::new(),
        }
    }

    /// The row for (`snapshot.block`, `from`), built on first touch;
    /// `None` when the existing row's window is too narrow for `reach`
    /// (the caller falls back to an uncached exact scan).
    fn row<'a>(
        &self,
        snapshot: &'a BlockSnapshot,
        from: NodeId,
        reach: f64,
    ) -> Option<&'a SourceRow> {
        let cell = &snapshot.rows[from.index()];
        // Hit/miss attribution must be deterministic at any thread
        // count, so a *hit* is defined as "this lookup did not run the
        // build" (hits = lookups − builds) rather than "the row existed
        // when we first peeked". `get_or_init` runs the closure exactly
        // once per cell even when concurrent shards race, so both terms
        // are fixed by the access pattern alone.
        let mut built = false;
        let row = cell.get_or_init(|| {
            built = true;
            Box::new(self.scan(snapshot.block, from, reach))
        });
        if !built {
            self.telemetry.add(Counter::RowHits, 1);
        }
        (reach <= row.window_reach).then_some(&**row)
    }

    fn receivers_in_block(&self, block: u64, from: NodeId, reach: Option<f64>) -> Vec<NodeId> {
        let Some(r) = reach else {
            // Everyone but the source: slice the shared id list around
            // `from` (the trait returns an owned `Vec`, so one `O(n)`
            // allocation is unavoidable — but not an `O(n)` filter, and
            // not `O(n)` retained memory per source).
            let all = self
                .all_nodes
                .get_or_init(|| (0..self.n).map(NodeId::new).collect());
            let mut out = Vec::with_capacity(self.n.saturating_sub(1));
            out.extend_from_slice(&all[..from.index()]);
            out.extend_from_slice(&all[from.index() + 1..]);
            return out;
        };
        let snapshot = self.snapshot(block);
        match self.row(&snapshot, from, r) {
            Some(row) => {
                if let Some((bits, list)) = row.list.get() {
                    if *bits == r.to_bits() {
                        return list.clone();
                    }
                }
                let list = row.filter(from, r);
                let _ = row.list.set((r.to_bits(), list.clone()));
                list
            }
            // The cached row was built for a narrower reach: answer
            // exactly without disturbing it.
            None => self.scan(block, from, r).filter(from, r),
        }
    }
}

impl fmt::Debug for TemporalAdapter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TemporalAdapter")
            .field("n", &self.inner.len())
            .field("block_len", &self.inner.block_len())
            .field("signature", &self.inner.signature())
            .field("scan_stats", &self.scan_stats())
            .finish_non_exhaustive()
    }
}

impl DecayBackend for TemporalAdapter {
    fn len(&self) -> usize {
        self.inner.len()
    }

    /// The block-0 field (the deployment-time static view).
    fn decay(&self, from: NodeId, to: NodeId) -> f64 {
        if let Some(row) = self.block0.rows[from.index()].get() {
            if let Some(d) = row.lookup(from, to) {
                self.telemetry.add(Counter::RowHits, 1);
                return d;
            }
        }
        self.inner.decay_in_block(0, from, to)
    }

    fn decay_at(&self, tick: Tick, from: NodeId, to: NodeId) -> f64 {
        let block = self.block_of(tick);
        if block == 0 {
            return self.decay(from, to);
        }
        // Serve from the current snapshot's row when it covers the
        // pair; never publish from this path (a stale-block probe — a
        // monitor replaying history — must not evict the current
        // block's rows).
        let current = self.current.load();
        self.telemetry.add(Counter::EpochLoads, 1);
        if current.block == block {
            if let Some(row) = current.rows[from.index()].get() {
                if let Some(d) = row.lookup(from, to) {
                    self.telemetry.add(Counter::RowHits, 1);
                    return d;
                }
            }
        }
        self.inner.decay_in_block(block, from, to)
    }

    fn potential_receivers(&self, from: NodeId, reach: Option<f64>) -> Vec<NodeId> {
        self.receivers_in_block(0, from, reach)
    }

    fn potential_receivers_at(&self, tick: Tick, from: NodeId, reach: Option<f64>) -> Vec<NodeId> {
        self.receivers_in_block(self.block_of(tick), from, reach)
    }

    fn channel_signature(&self) -> u64 {
        self.inner.signature()
    }

    fn telemetry(&self) -> Option<&Counters> {
        Some(&self.telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    /// A toy field: decay |i - j|² scaled by (1 + block).
    struct Pulse {
        n: usize,
    }

    impl TemporalBackend for Pulse {
        fn len(&self) -> usize {
            self.n
        }
        fn block_len(&self) -> Tick {
            4
        }
        fn decay_in_block(&self, block: u64, from: NodeId, to: NodeId) -> f64 {
            if from == to {
                return 0.0;
            }
            let d = (from.index() as f64 - to.index() as f64).abs();
            d * d * (1.0 + block as f64)
        }
        fn signature(&self) -> u64 {
            signature_of(&[0xD0, self.n as u64])
        }
    }

    /// Evaluation counts per (block, from, to).
    type CallLedger = Arc<Mutex<HashMap<(u64, usize, usize), u64>>>;

    /// `Pulse` with an evaluation ledger: how often each (block, pair)
    /// was evaluated. The ledger is shared so the test keeps a handle
    /// after the backend moves into the adapter.
    struct CountingPulse {
        inner: Pulse,
        calls: CallLedger,
    }

    impl CountingPulse {
        fn new(n: usize) -> (Self, CallLedger) {
            let calls = Arc::new(Mutex::new(HashMap::new()));
            (
                CountingPulse {
                    inner: Pulse { n },
                    calls: Arc::clone(&calls),
                },
                calls,
            )
        }
    }

    impl TemporalBackend for CountingPulse {
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn block_len(&self) -> Tick {
            self.inner.block_len()
        }
        fn decay_in_block(&self, block: u64, from: NodeId, to: NodeId) -> f64 {
            *self
                .calls
                .lock()
                .unwrap()
                .entry((block, from.index(), to.index()))
                .or_insert(0) += 1;
            self.inner.decay_in_block(block, from, to)
        }
        fn signature(&self) -> u64 {
            self.inner.signature()
        }
    }

    #[test]
    fn adapter_maps_ticks_to_blocks() {
        let a = TemporalAdapter::new(Pulse { n: 8 });
        let (x, y) = (NodeId::new(1), NodeId::new(3));
        assert_eq!(a.decay_at(0, x, y), 4.0);
        assert_eq!(a.decay_at(3, x, y), 4.0, "same block");
        assert_eq!(a.decay_at(4, x, y), 8.0, "next block");
        assert_eq!(a.decay(x, y), 4.0, "static view is block 0");
        assert_eq!(a.channel_signature(), Pulse { n: 8 }.signature());
        assert_ne!(a.channel_signature(), 0);
    }

    #[test]
    fn reach_sets_track_the_block() {
        let a = TemporalAdapter::new(Pulse { n: 10 });
        let at0 = a.potential_receivers_at(0, NodeId::new(5), Some(4.0));
        // Block 0: d² ≤ 4 ⇒ distance ≤ 2.
        assert_eq!(
            at0,
            vec![3, 4, 6, 7]
                .into_iter()
                .map(NodeId::new)
                .collect::<Vec<_>>()
        );
        // Block 3: 4·d² ≤ 4 ⇒ distance ≤ 1 — the field tightened.
        let at12 = a.potential_receivers_at(12, NodeId::new(5), Some(4.0));
        assert_eq!(
            at12,
            vec![4, 6].into_iter().map(NodeId::new).collect::<Vec<_>>()
        );
        // Cached answer is identical on a repeat query.
        assert_eq!(
            a.potential_receivers_at(13, NodeId::new(5), Some(4.0)),
            at12
        );
        // No reach = everyone else, any block.
        assert_eq!(a.potential_receivers_at(12, NodeId::new(5), None).len(), 9);
    }

    /// The PR-4 regression: interleaved block-0 (static view) and
    /// block-N (tick-aware) reach queries once shared a single-slot
    /// cache, so each call cleared the other's entries and forced a
    /// fresh `O(n)` scan. With pinned per-block snapshots the backend
    /// is consulted at most once per (block, pair), however the calls
    /// interleave.
    #[test]
    fn interleaved_static_and_tick_queries_never_thrash() {
        let (backend, ledger) = CountingPulse::new(12);
        let a = TemporalAdapter::new(backend);
        let reach = Some(9.0);
        // Engine-shaped access: ticks advance monotonically (revisiting
        // a long-gone block legitimately rebuilds its snapshot), with a
        // static-view query — the deployment-time check that used to
        // clear the shared cache — wedged between every pair of
        // tick-aware queries.
        for tick in [4, 5, 8, 9, 12, 13, 40, 41] {
            for src in [0usize, 3, 7] {
                let from = NodeId::new(src);
                let at = a.potential_receivers_at(tick, from, reach);
                let fixed = a.potential_receivers(from, reach);
                assert_eq!(
                    at,
                    a.potential_receivers_at(tick, from, reach),
                    "tick {tick} src {src}"
                );
                assert_eq!(fixed, a.potential_receivers(from, reach));
            }
        }
        let calls = ledger.lock().unwrap();
        assert!(!calls.is_empty());
        for (&(block, i, j), &count) in calls.iter() {
            assert_eq!(
                count, 1,
                "decay_in_block({block}, {i}, {j}) evaluated {count} times"
            );
        }
        // Block 0 (the static view) plus blocks 1, 2, 3, 10 (ticks 4–41
        // at block_len 4) all appear.
        let blocks: std::collections::HashSet<u64> = calls.keys().map(|&(b, _, _)| b).collect();
        assert!(blocks.contains(&0), "static view evaluated block 0");
        assert!(blocks.len() >= 4, "tick-aware queries spanned blocks");
    }

    /// Unbounded-reach (`reach: None`) lists were rebuilt (an `O(n)`
    /// allocation) on every call; they are now cached per source.
    #[test]
    fn unbounded_reach_lists_are_cached() {
        let a = TemporalAdapter::new(Pulse { n: 64 });
        let from = NodeId::new(9);
        let first = a.potential_receivers_at(0, from, None);
        assert_eq!(first.len(), 63);
        // Same list from any block — and no field evaluations at all.
        assert_eq!(a.potential_receivers_at(400, from, None), first);
        assert_eq!(a.potential_receivers(from, None), first);
        assert_eq!(a.scan_stats().scans, 0, "reach: None never scans the field");
    }

    /// A wider reach than the cached row's window answers exactly
    /// without evicting the narrow row.
    #[test]
    fn wider_reach_bypasses_but_keeps_the_row() {
        struct Windowed;
        impl TemporalBackend for Windowed {
            fn len(&self) -> usize {
                10
            }
            fn block_len(&self) -> Tick {
                1
            }
            fn decay_in_block(&self, block: u64, from: NodeId, to: NodeId) -> f64 {
                Pulse { n: 10 }.decay_in_block(block, from, to)
            }
            fn reach_candidates(&self, _b: u64, from: NodeId, reach: f64) -> Option<Vec<NodeId>> {
                let w = reach.sqrt().ceil() as usize + 1;
                Some(
                    (from.index().saturating_sub(w)..=(from.index() + w).min(9))
                        .map(NodeId::new)
                        .collect(),
                )
            }
            fn signature(&self) -> u64 {
                signature_of(&[0xF1])
            }
        }
        let a = TemporalAdapter::new(Windowed);
        let from = NodeId::new(5);
        // Block 2 scales decays by 3: reach 3 ⇒ distance ≤ 1.
        let narrow = a.potential_receivers_at(2, from, Some(3.0));
        assert_eq!(narrow, vec![NodeId::new(4), NodeId::new(6)]);
        // Reach 27 ⇒ distance ≤ 3, wider than the cached row's window.
        let wide = a.potential_receivers_at(2, from, Some(27.0));
        assert_eq!(
            wide,
            vec![2, 3, 4, 6, 7, 8]
                .into_iter()
                .map(NodeId::new)
                .collect::<Vec<_>>()
        );
        // The narrow row still answers its own reach from cache.
        assert_eq!(a.potential_receivers_at(2, from, Some(3.0)), narrow);
    }
}
