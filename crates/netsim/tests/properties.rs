//! Property tests: the simulator's reception models, fault plans and the
//! PRR inference pipeline hold their invariants on random spaces.

use decay_core::{DecaySpace, NodeId};
use decay_netsim::{
    infer_decay_from_prr, run_probe_campaign, Action, FaultPlan, NodeBehavior, ReceptionModel,
    Simulator, SlotContext,
};
use decay_sinr::SinrParams;
use proptest::prelude::*;
use rand::Rng as _;

fn arb_space(n: usize) -> impl Strategy<Value = DecaySpace> {
    prop::collection::vec(0.5f64..20.0, n * n).prop_map(move |mut vals| {
        for i in 0..n {
            vals[i * n + i] = 0.0;
        }
        DecaySpace::from_matrix(n, vals).expect("positive off-diagonal")
    })
}

struct Chatty(f64);

impl NodeBehavior for Chatty {
    fn on_slot(&mut self, ctx: &mut SlotContext<'_>) -> Action {
        if ctx.rng.gen_range(0.0..1.0) < self.0 {
            Action::Transmit {
                power: 1.0,
                message: ctx.node.index() as u64,
            }
        } else {
            Action::Listen
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    #[test]
    fn downed_nodes_never_transmit_or_receive(
        space in arb_space(6),
        seed in 0u64..100,
        victim in 0usize..6,
        from in 0usize..20,
        len in 1usize..20,
    ) {
        let mut sim = Simulator::new(
            space,
            (0..6).map(|_| Chatty(0.5)).collect(),
            SinrParams::default(),
            seed,
        ).unwrap();
        sim.set_fault_plan(
            FaultPlan::none().with_outage(NodeId::new(victim), from, from + len),
        );
        for _ in 0..(from + len + 5) {
            let r = sim.step();
            let down = r.downed.contains(&NodeId::new(victim));
            let slot_in_outage = from <= r.slot && r.slot < from + len;
            prop_assert_eq!(down, slot_in_outage, "slot {}", r.slot);
            if down {
                prop_assert!(!r.transmitters.contains(&NodeId::new(victim)));
                prop_assert!(r.deliveries.iter().all(|d| d.to != NodeId::new(victim)));
            }
        }
    }

    #[test]
    fn rayleigh_prr_rates_are_probabilities_and_monotone_in_decay(
        space in arb_space(5),
        seed in 0u64..100,
    ) {
        let params = SinrParams::new(1.0, 0.3).unwrap();
        let prr = run_probe_campaign(&space, &params, ReceptionModel::Rayleigh, 120, 1.0, seed);
        for a in space.nodes() {
            for b in space.nodes() {
                if a == b { continue; }
                let r = prr.rate(a, b);
                prop_assert!((0.0..=1.0).contains(&r));
            }
        }
    }

    #[test]
    fn inference_roundtrip_preserves_decay_order_in_expectation(
        space in arb_space(4),
    ) {
        // With plenty of probes, larger true decay must not produce a
        // *much* smaller inferred decay (strict order can flip for close
        // pairs; a factor-2 inversion cannot).
        let params = SinrParams::new(1.0, 0.3).unwrap();
        let prr = run_probe_campaign(&space, &params, ReceptionModel::Rayleigh, 3000, 1.0, 7);
        let outcome = infer_decay_from_prr(&prr, 1.0, &params).unwrap();
        for (a, b, f_ab) in space.ordered_pairs() {
            for (c, d, f_cd) in space.ordered_pairs() {
                if f_ab >= 4.0 * f_cd {
                    let inf_ab = outcome.space.decay(a, b);
                    let inf_cd = outcome.space.decay(c, d);
                    prop_assert!(
                        inf_ab > inf_cd,
                        "truth {f_ab} vs {f_cd}, inferred {inf_ab} vs {inf_cd}"
                    );
                }
            }
        }
    }

    #[test]
    fn reception_models_share_node_decisions(
        space in arb_space(5),
        seed in 0u64..100,
    ) {
        // The fading RNG is a separate stream: protocol decisions must be
        // identical across reception models.
        let run = |model: ReceptionModel| {
            let mut sim = Simulator::new(
                space.clone(),
                (0..5).map(|_| Chatty(0.4)).collect(),
                SinrParams::new(1.0, 0.1).unwrap(),
                seed,
            ).unwrap();
            sim.set_reception_model(model);
            (0..30).map(|_| sim.step().transmitters).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(ReceptionModel::Threshold), run(ReceptionModel::Rayleigh));
    }
}
