//! Crash-fault injection for the simulator.
//!
//! A [`FaultPlan`] declares slot intervals during which given nodes are
//! *down*: a down node neither transmits, listens, nor runs its behavior
//! (crash-recovery semantics — state is frozen, not erased, and the node
//! resumes where it left off when the outage ends). Fault plans let tests
//! and experiments check that the randomized protocols of Section 3, whose
//! analyses only rely on *expected* interference bounds, degrade gracefully
//! rather than catastrophically when participants disappear.

use decay_core::NodeId;
use serde::{Deserialize, Serialize};

/// One contiguous outage of one node over the half-open slot interval
/// `[from_slot, until_slot)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Outage {
    /// The affected node.
    pub node: NodeId,
    /// First slot of the outage.
    pub from_slot: usize,
    /// First slot *after* the outage (use `usize::MAX` for a permanent
    /// crash).
    pub until_slot: usize,
}

impl Outage {
    /// Whether this outage covers the given slot.
    pub fn covers(&self, slot: usize) -> bool {
        self.from_slot <= slot && slot < self.until_slot
    }
}

/// A set of scheduled node outages.
///
/// # Examples
///
/// ```
/// use decay_core::NodeId;
/// use decay_netsim::FaultPlan;
///
/// let plan = FaultPlan::new(vec![])
///     .with_crash(NodeId::new(3), 10)
///     .with_outage(NodeId::new(1), 5, 8);
/// assert!(plan.is_down(NodeId::new(3), 10_000));
/// assert!(plan.is_down(NodeId::new(1), 6));
/// assert!(!plan.is_down(NodeId::new(1), 8));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    outages: Vec<Outage>,
}

impl FaultPlan {
    /// A plan with the given outages.
    pub fn new(outages: Vec<Outage>) -> Self {
        FaultPlan { outages }
    }

    /// The empty plan: no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a permanent crash of `node` starting at `from_slot`.
    #[must_use]
    pub fn with_crash(mut self, node: NodeId, from_slot: usize) -> Self {
        self.outages.push(Outage {
            node,
            from_slot,
            until_slot: usize::MAX,
        });
        self
    }

    /// Adds a temporary outage of `node` over `[from_slot, until_slot)`.
    #[must_use]
    pub fn with_outage(mut self, node: NodeId, from_slot: usize, until_slot: usize) -> Self {
        self.outages.push(Outage {
            node,
            from_slot,
            until_slot,
        });
        self
    }

    /// Whether `node` is down in `slot`.
    pub fn is_down(&self, node: NodeId, slot: usize) -> bool {
        self.outages
            .iter()
            .any(|o| o.node == node && o.covers(slot))
    }

    /// Whether the plan schedules no outages at all.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
    }

    /// The scheduled outages.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_open_interval_semantics() {
        let o = Outage {
            node: NodeId::new(0),
            from_slot: 2,
            until_slot: 5,
        };
        assert!(!o.covers(1));
        assert!(o.covers(2));
        assert!(o.covers(4));
        assert!(!o.covers(5));
    }

    #[test]
    fn crash_is_permanent() {
        let plan = FaultPlan::none().with_crash(NodeId::new(1), 3);
        assert!(!plan.is_down(NodeId::new(1), 2));
        assert!(plan.is_down(NodeId::new(1), 3));
        assert!(plan.is_down(NodeId::new(1), usize::MAX - 1));
        assert!(!plan.is_down(NodeId::new(0), 3));
    }

    #[test]
    fn empty_plan_never_downs() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(!plan.is_down(NodeId::new(0), 0));
    }

    #[test]
    fn overlapping_outages_union() {
        let plan = FaultPlan::new(vec![
            Outage {
                node: NodeId::new(2),
                from_slot: 0,
                until_slot: 4,
            },
            Outage {
                node: NodeId::new(2),
                from_slot: 3,
                until_slot: 7,
            },
        ]);
        for slot in 0..7 {
            assert!(plan.is_down(NodeId::new(2), slot), "slot {slot}");
        }
        assert!(!plan.is_down(NodeId::new(2), 7));
        assert_eq!(plan.outages().len(), 2);
    }
}
