//! Reception models: how simultaneous transmissions resolve into
//! deliveries at a listener.
//!
//! The paper's model is deterministic SINR *thresholding* — transmission
//! succeeds iff `SINR ≥ β` (Section 2.1) — and cites Dams, Kesselheim and
//! Hoefer [10] for the fact that stochastic-filter models such as Rayleigh
//! fading can be simulated by thresholding algorithms. The simulator
//! supports both, so that the near-thresholding relationship between SINR
//! level and packet reception rate (one of the experimentally verified
//! assumptions the paper lists in its introduction) can be measured rather
//! than assumed; experiment E30 does exactly that.

use serde::{Deserialize, Serialize};

/// How a listener decides whether it captures a transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReceptionModel {
    /// Deterministic SINR thresholding (Section 2.1): success iff
    /// `SINR ≥ β` computed from the decay matrix alone.
    #[default]
    Threshold,
    /// Rayleigh (fast) fading: every received power — signal and
    /// interference alike — is multiplied by an independent unit-mean
    /// exponential draw, fresh per (transmitter, listener, slot). The SINR
    /// test is then applied to the faded powers.
    ///
    /// For an interference-free probe at power `P` over decay `f` against
    /// noise `N`, the success probability is exactly
    /// `exp(-β · N · f / P)` — the closed form the PRR-based decay
    /// inference of [`crate::infer_decay_from_prr`] inverts.
    Rayleigh,
}

impl ReceptionModel {
    /// Whether receptions are deterministic given the actions of a slot.
    pub fn is_deterministic(self) -> bool {
        matches!(self, ReceptionModel::Threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_threshold() {
        assert_eq!(ReceptionModel::default(), ReceptionModel::Threshold);
        assert!(ReceptionModel::Threshold.is_deterministic());
        assert!(!ReceptionModel::Rayleigh.is_deterministic());
    }
}
