//! # decay-netsim
//!
//! A slot-synchronous SINR network simulator over decay spaces — the
//! execution substrate for the distributed algorithms the paper argues
//! carry over to arbitrary decay spaces (Section 3).
//!
//! Each slot, every node independently decides to [`Action::Transmit`],
//! [`Action::Listen`] or stay [`Action::Idle`]. A listening node receives
//! the message of its strongest incoming transmitter iff that signal's
//! SINR against all other transmissions (plus ambient noise) clears the
//! threshold `β` — the physical ("capture") reception model. Transmitting
//! nodes hear nothing. Per-node seeded RNGs keep runs exactly
//! reproducible.
//!
//! # Examples
//!
//! ```
//! use decay_core::DecaySpace;
//! use decay_netsim::{Action, NodeBehavior, Simulator, SlotContext};
//! use decay_sinr::SinrParams;
//!
//! /// Every node shouts its own id once, in its own slot.
//! struct RoundRobin;
//! impl NodeBehavior for RoundRobin {
//!     fn on_slot(&mut self, ctx: &mut SlotContext<'_>) -> Action {
//!         if ctx.slot % ctx.nodes == ctx.node.index() {
//!             Action::Transmit { power: 1.0, message: ctx.node.index() as u64 }
//!         } else {
//!             Action::Listen
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let space = DecaySpace::from_fn(3, |i, j| {
//!     ((i as f64) - (j as f64)).abs().powi(2)
//! })?;
//! let behaviors = (0..3).map(|_| RoundRobin).collect();
//! let mut sim = Simulator::new(space, behaviors, SinrParams::default(), 42)?;
//! let report = sim.step();
//! // Exactly one transmitter, everyone else hears it (no interference).
//! assert_eq!(report.transmitters.len(), 1);
//! assert_eq!(report.deliveries.len(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod faults;
mod prr;
mod reception;

pub use faults::{FaultPlan, Outage};
pub use prr::{
    compare_decays, infer_decay_from_prr, run_probe_campaign, InferenceError, InferenceOutcome,
    InferenceReport, PrrMatrix, PrrTracker,
};
pub use reception::ReceptionModel;

use decay_core::{DecaySpace, NodeId};
use decay_sinr::SinrParams;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// What a node does in one slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Transmit `message` at `power`; the node cannot receive this slot.
    Transmit {
        /// Transmission power (must be positive and finite).
        power: f64,
        /// Opaque payload.
        message: u64,
    },
    /// Listen for incoming messages.
    Listen,
    /// Neither transmit nor listen (radio off).
    Idle,
}

/// A successful reception.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delivery {
    /// The receiving node.
    pub to: NodeId,
    /// The transmitting node whose signal was captured.
    pub from: NodeId,
    /// The payload.
    pub message: u64,
}

/// Everything a behavior may consult when choosing its action.
///
/// The RNG is type-erased so the same behavior runs unmodified on every
/// execution substrate: the slot-synchronous [`Simulator`] here hands out
/// per-node [`StdRng`]s, while the event-driven `decay-engine` hands out
/// its own serializable per-node streams.
pub struct SlotContext<'a> {
    /// This node's id.
    pub node: NodeId,
    /// Total number of nodes in the network.
    pub nodes: usize,
    /// The current slot number (0-based).
    pub slot: usize,
    /// This node's private RNG (deterministic per node and seed).
    pub rng: &'a mut dyn RngCore,
}

impl std::fmt::Debug for SlotContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotContext")
            .field("node", &self.node)
            .field("nodes", &self.nodes)
            .field("slot", &self.slot)
            .finish_non_exhaustive()
    }
}

/// A node's protocol logic.
///
/// One behavior instance exists per node; the simulator never lets
/// behaviors inspect each other, so all coordination must flow through
/// messages — keeping simulated protocols honestly distributed.
pub trait NodeBehavior {
    /// Decides this node's action for the current slot.
    fn on_slot(&mut self, ctx: &mut SlotContext<'_>) -> Action;

    /// Called when this node successfully receives a message. `power` is
    /// the received signal power (the RSSI a real radio would report):
    /// transmit power divided by the decay from the sender.
    fn on_receive(&mut self, from: NodeId, message: u64, power: f64) {
        let _ = (from, message, power);
    }

    /// Called at slot end when this node transmitted, with the count of
    /// nodes that captured the transmission (enables acknowledgment-style
    /// analysis without extra message traffic; a physically honest
    /// protocol should ignore it unless modeling an ACK channel).
    fn on_transmit_result(&mut self, receivers: usize) {
        let _ = receivers;
    }
}

/// Outcome of one simulated slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotReport {
    /// The slot number.
    pub slot: usize,
    /// Who transmitted.
    pub transmitters: Vec<NodeId>,
    /// Successful receptions.
    pub deliveries: Vec<Delivery>,
    /// Nodes that were down this slot per the [`FaultPlan`].
    pub downed: Vec<NodeId>,
}

/// Cumulative statistics over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Slots simulated.
    pub slots: usize,
    /// Total transmissions.
    pub transmissions: usize,
    /// Total successful deliveries.
    pub deliveries: usize,
}

/// The slot-synchronous simulator.
#[derive(Debug)]
pub struct Simulator<B> {
    space: DecaySpace,
    behaviors: Vec<B>,
    params: SinrParams,
    rngs: Vec<StdRng>,
    slot: usize,
    stats: RunStats,
    reception: ReceptionModel,
    faults: FaultPlan,
    /// Fading draws live in their own stream so that switching reception
    /// models never perturbs the per-node protocol RNGs.
    fading_rng: StdRng,
}

impl<B: NodeBehavior> Simulator<B> {
    /// Creates a simulator; `behaviors[i]` drives node `i`.
    ///
    /// # Errors
    ///
    /// Returns an error if the behavior count does not match the space.
    pub fn new(
        space: DecaySpace,
        behaviors: Vec<B>,
        params: SinrParams,
        seed: u64,
    ) -> Result<Self, BehaviorCountMismatch> {
        if behaviors.len() != space.len() {
            return Err(BehaviorCountMismatch {
                nodes: space.len(),
                behaviors: behaviors.len(),
            });
        }
        let rngs = (0..space.len())
            .map(|i| StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        Ok(Simulator {
            space,
            behaviors,
            params,
            rngs,
            slot: 0,
            stats: RunStats::default(),
            reception: ReceptionModel::Threshold,
            faults: FaultPlan::none(),
            fading_rng: StdRng::seed_from_u64(seed ^ 0xD1B5_4A32_D192_ED03),
        })
    }

    /// Switches the reception model (default: deterministic thresholding).
    pub fn set_reception_model(&mut self, model: ReceptionModel) -> &mut Self {
        self.reception = model;
        self
    }

    /// The active reception model.
    pub fn reception_model(&self) -> ReceptionModel {
        self.reception
    }

    /// Installs a fault plan (default: no faults). Nodes that are down
    /// neither run their behavior nor transmit, listen, or receive; their
    /// state is frozen until the outage ends.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        self.faults = plan;
        self
    }

    /// The decay space being simulated.
    pub fn space(&self) -> &DecaySpace {
        &self.space
    }

    /// Cumulative run statistics.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// The current slot number (number of completed slots).
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Read access to a node's behavior (for harness-side inspection).
    pub fn behavior(&self, node: NodeId) -> &B {
        &self.behaviors[node.index()]
    }

    /// Simulates one slot and returns what happened.
    pub fn step(&mut self) -> SlotReport {
        let n = self.space.len();
        // Phase 1: collect actions; down nodes are forced idle without
        // running their behavior.
        let mut actions = Vec::with_capacity(n);
        let mut downed = Vec::new();
        for i in 0..n {
            if self.faults.is_down(NodeId::new(i), self.slot) {
                downed.push(NodeId::new(i));
                actions.push(Action::Idle);
                continue;
            }
            let mut ctx = SlotContext {
                node: NodeId::new(i),
                nodes: n,
                slot: self.slot,
                rng: &mut self.rngs[i],
            };
            let action = self.behaviors[i].on_slot(&mut ctx);
            if let Action::Transmit { power, .. } = action {
                assert!(
                    power.is_finite() && power > 0.0,
                    "node {i} transmitted with non-positive power"
                );
            }
            actions.push(action);
        }
        let transmitters: Vec<usize> = (0..n)
            .filter(|&i| matches!(actions[i], Action::Transmit { .. }))
            .collect();
        // Phase 2: resolve reception at every listener.
        let mut deliveries = Vec::new();
        for i in 0..n {
            if !matches!(actions[i], Action::Listen) {
                continue;
            }
            let rx = NodeId::new(i);
            // Received power from each transmitter; track the strongest.
            let mut best: Option<(usize, f64)> = None;
            let mut total = self.params.noise();
            for &t in &transmitters {
                let Action::Transmit { power, .. } = actions[t] else {
                    unreachable!()
                };
                let fade = match self.reception {
                    ReceptionModel::Threshold => 1.0,
                    // Unit-mean exponential via inverse CDF; `gen` draws
                    // from [0, 1), so `1 - u` is in (0, 1] and the log is
                    // finite.
                    ReceptionModel::Rayleigh => -(1.0 - self.fading_rng.gen::<f64>()).ln(),
                };
                let p = fade * power / self.space.decay(NodeId::new(t), rx);
                total += p;
                match best {
                    Some((_, bp)) if bp >= p => {}
                    _ => best = Some((t, p)),
                }
            }
            if let Some((t, p)) = best {
                let interference = total - p;
                let sinr = if interference > 0.0 {
                    p / interference
                } else {
                    f64::INFINITY
                };
                if sinr >= self.params.beta() * (1.0 - 1e-12) {
                    let Action::Transmit { message, .. } = actions[t] else {
                        unreachable!()
                    };
                    deliveries.push((
                        Delivery {
                            to: rx,
                            from: NodeId::new(t),
                            message,
                        },
                        p,
                    ));
                }
            }
        }
        // Phase 3: callbacks.
        for (d, power) in &deliveries {
            self.behaviors[d.to.index()].on_receive(d.from, d.message, *power);
        }
        for &t in &transmitters {
            let count = deliveries
                .iter()
                .filter(|(d, _)| d.from.index() == t)
                .count();
            self.behaviors[t].on_transmit_result(count);
        }
        let report = SlotReport {
            slot: self.slot,
            transmitters: transmitters.into_iter().map(NodeId::new).collect(),
            deliveries: deliveries.into_iter().map(|(d, _)| d).collect(),
            downed,
        };
        self.slot += 1;
        self.stats.slots += 1;
        self.stats.transmissions += report.transmitters.len();
        self.stats.deliveries += report.deliveries.len();
        report
    }

    /// Runs until `done` returns true or `max_slots` elapse; returns the
    /// number of slots executed by this call and whether `done` fired.
    pub fn run_until<F>(&mut self, max_slots: usize, mut done: F) -> (usize, bool)
    where
        F: FnMut(&SlotReport, &Self) -> bool,
    {
        for k in 0..max_slots {
            let report = self.step();
            if done(&report, self) {
                return (k + 1, true);
            }
        }
        (max_slots, false)
    }
}

/// Error: behavior count does not match the node count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BehaviorCountMismatch {
    /// Nodes in the space.
    pub nodes: usize,
    /// Behaviors supplied.
    pub behaviors: usize,
}

impl std::fmt::Display for BehaviorCountMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "expected {} behaviors for {} nodes, got {}",
            self.nodes, self.nodes, self.behaviors
        )
    }
}

impl std::error::Error for BehaviorCountMismatch {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn line(n: usize) -> DecaySpace {
        DecaySpace::from_fn(n, |i, j| ((i as f64) - (j as f64)).abs().powi(2)).unwrap()
    }

    /// Transmits with fixed probability, counts receptions.
    struct Aloha {
        p: f64,
        received: Vec<(NodeId, u64)>,
        acks: usize,
    }

    impl Aloha {
        fn new(p: f64) -> Self {
            Aloha {
                p,
                received: Vec::new(),
                acks: 0,
            }
        }
    }

    impl NodeBehavior for Aloha {
        fn on_slot(&mut self, ctx: &mut SlotContext<'_>) -> Action {
            if ctx.rng.gen_range(0.0..1.0) < self.p {
                Action::Transmit {
                    power: 1.0,
                    message: ctx.node.index() as u64,
                }
            } else {
                Action::Listen
            }
        }
        fn on_receive(&mut self, from: NodeId, message: u64, _power: f64) {
            self.received.push((from, message));
        }
        fn on_transmit_result(&mut self, receivers: usize) {
            self.acks += receivers;
        }
    }

    #[test]
    fn single_transmitter_reaches_everyone_noiseless() {
        struct OneShot;
        impl NodeBehavior for OneShot {
            fn on_slot(&mut self, ctx: &mut SlotContext<'_>) -> Action {
                if ctx.node.index() == 0 && ctx.slot == 0 {
                    Action::Transmit {
                        power: 1.0,
                        message: 77,
                    }
                } else {
                    Action::Listen
                }
            }
        }
        let mut sim = Simulator::new(
            line(5),
            (0..5).map(|_| OneShot).collect(),
            SinrParams::default(),
            1,
        )
        .unwrap();
        let r = sim.step();
        assert_eq!(r.transmitters, vec![NodeId::new(0)]);
        assert_eq!(r.deliveries.len(), 4);
        assert!(r.deliveries.iter().all(|d| d.message == 77));
    }

    #[test]
    fn two_transmitters_capture_resolution() {
        struct Pair;
        impl NodeBehavior for Pair {
            fn on_slot(&mut self, ctx: &mut SlotContext<'_>) -> Action {
                let last = ctx.nodes - 1;
                if ctx.node.index() == 0 || ctx.node.index() == last {
                    Action::Transmit {
                        power: 1.0,
                        message: ctx.node.index() as u64,
                    }
                } else {
                    Action::Listen
                }
            }
        }
        // 5 nodes on a line: transmitters at 0 and 4. Listener 1 hears 0
        // at power 1 vs 4 at 1/9: captures 0. Listener 2 is equidistant:
        // SINR exactly 1 >= beta = 1, captured.
        let mut sim = Simulator::new(
            line(5),
            (0..5).map(|_| Pair).collect(),
            SinrParams::default(),
            1,
        )
        .unwrap();
        let r = sim.step();
        assert_eq!(r.deliveries.len(), 3);
        let to1 = r
            .deliveries
            .iter()
            .find(|d| d.to == NodeId::new(1))
            .unwrap();
        assert_eq!(to1.from, NodeId::new(0));
    }

    #[test]
    fn beta_two_blocks_boundary_capture() {
        struct Pair;
        impl NodeBehavior for Pair {
            fn on_slot(&mut self, ctx: &mut SlotContext<'_>) -> Action {
                let last = ctx.nodes - 1;
                if ctx.node.index() == 0 || ctx.node.index() == last {
                    Action::Transmit {
                        power: 1.0,
                        message: 5,
                    }
                } else {
                    Action::Listen
                }
            }
        }
        let mut sim = Simulator::new(
            line(5),
            (0..5).map(|_| Pair).collect(),
            SinrParams::noiseless(2.0).unwrap(),
            1,
        )
        .unwrap();
        let r = sim.step();
        // Node 2: SINR 1 < 2 -> no capture. Nodes 1 and 3: SINR 9 >= 2.
        assert_eq!(r.deliveries.len(), 2);
        assert!(r.deliveries.iter().all(|d| d.to != NodeId::new(2)));
    }

    #[test]
    fn runs_are_deterministic_in_seed() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(
                line(8),
                (0..8).map(|_| Aloha::new(0.3)).collect(),
                SinrParams::default(),
                seed,
            )
            .unwrap();
            let mut log = Vec::new();
            for _ in 0..50 {
                log.push(sim.step());
            }
            log
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn callbacks_fire_and_stats_balance() {
        let mut sim = Simulator::new(
            line(6),
            (0..6).map(|_| Aloha::new(0.25)).collect(),
            SinrParams::default(),
            3,
        )
        .unwrap();
        for _ in 0..100 {
            sim.step();
        }
        let stats = sim.stats();
        assert!(stats.transmissions > 0);
        assert!(stats.deliveries > 0);
        let total_received: usize = (0..6)
            .map(|i| sim.behavior(NodeId::new(i)).received.len())
            .sum();
        assert_eq!(total_received, stats.deliveries);
        let total_acks: usize = (0..6).map(|i| sim.behavior(NodeId::new(i)).acks).sum();
        assert_eq!(total_acks, stats.deliveries);
    }

    #[test]
    fn run_until_stops_on_predicate() {
        let mut sim = Simulator::new(
            line(6),
            (0..6).map(|_| Aloha::new(0.3)).collect(),
            SinrParams::default(),
            5,
        )
        .unwrap();
        let (slots, fired) = sim.run_until(1000, |r, _| !r.deliveries.is_empty());
        assert!(fired);
        assert!(slots < 1000);
    }

    #[test]
    fn behavior_count_mismatch_is_rejected() {
        let err = Simulator::new(
            line(4),
            (0..3).map(|_| Aloha::new(0.1)).collect(),
            SinrParams::default(),
            1,
        )
        .err()
        .expect("mismatch must be rejected");
        assert_eq!(err.nodes, 4);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn transmitters_do_not_receive() {
        struct AllTransmit;
        impl NodeBehavior for AllTransmit {
            fn on_slot(&mut self, _ctx: &mut SlotContext<'_>) -> Action {
                Action::Transmit {
                    power: 1.0,
                    message: 1,
                }
            }
        }
        let mut sim = Simulator::new(
            line(4),
            (0..4).map(|_| AllTransmit).collect(),
            SinrParams::default(),
            1,
        )
        .unwrap();
        let r = sim.step();
        assert_eq!(r.transmitters.len(), 4);
        assert!(r.deliveries.is_empty());
    }

    #[test]
    fn down_nodes_neither_act_nor_receive() {
        struct Chatty;
        impl NodeBehavior for Chatty {
            fn on_slot(&mut self, _ctx: &mut SlotContext<'_>) -> Action {
                Action::Transmit {
                    power: 1.0,
                    message: 1,
                }
            }
        }
        let mut sim = Simulator::new(
            line(3),
            (0..3).map(|_| Chatty).collect(),
            SinrParams::default(),
            1,
        )
        .unwrap();
        sim.set_fault_plan(FaultPlan::none().with_outage(NodeId::new(1), 0, 2));
        let r0 = sim.step();
        assert_eq!(r0.downed, vec![NodeId::new(1)]);
        assert_eq!(r0.transmitters.len(), 2);
        let r1 = sim.step();
        assert_eq!(r1.downed, vec![NodeId::new(1)]);
        // Outage over: all three transmit again.
        let r2 = sim.step();
        assert!(r2.downed.is_empty());
        assert_eq!(r2.transmitters.len(), 3);
    }

    #[test]
    fn crashed_listener_hears_nothing() {
        struct OneTalks;
        impl NodeBehavior for OneTalks {
            fn on_slot(&mut self, ctx: &mut SlotContext<'_>) -> Action {
                if ctx.node.index() == 0 {
                    Action::Transmit {
                        power: 1.0,
                        message: 4,
                    }
                } else {
                    Action::Listen
                }
            }
        }
        let mut sim = Simulator::new(
            line(3),
            (0..3).map(|_| OneTalks).collect(),
            SinrParams::default(),
            1,
        )
        .unwrap();
        sim.set_fault_plan(FaultPlan::none().with_crash(NodeId::new(2), 0));
        let r = sim.step();
        assert_eq!(r.deliveries.len(), 1);
        assert_eq!(r.deliveries[0].to, NodeId::new(1));
    }

    #[test]
    fn rayleigh_runs_are_deterministic_and_differ_from_threshold() {
        let run = |model: ReceptionModel, seed: u64| {
            let mut sim = Simulator::new(
                line(8),
                (0..8).map(|_| Aloha::new(0.3)).collect(),
                SinrParams::new(1.0, 0.05).unwrap(),
                seed,
            )
            .unwrap();
            sim.set_reception_model(model);
            let mut log = Vec::new();
            for _ in 0..100 {
                log.push(sim.step());
            }
            log
        };
        assert_eq!(
            run(ReceptionModel::Rayleigh, 5),
            run(ReceptionModel::Rayleigh, 5)
        );
        // Fading has its own RNG stream, so node decisions are identical
        // but receptions differ.
        let th = run(ReceptionModel::Threshold, 5);
        let ray = run(ReceptionModel::Rayleigh, 5);
        let tx_th: Vec<_> = th.iter().map(|r| r.transmitters.clone()).collect();
        let tx_ray: Vec<_> = ray.iter().map(|r| r.transmitters.clone()).collect();
        assert_eq!(tx_th, tx_ray);
        assert_ne!(th, ray);
    }

    #[test]
    fn rayleigh_fading_can_fail_a_clear_link() {
        // Threshold: single transmitter, noise 0.5, signal 1 -> SINR 2 >= 1
        // always succeeds. Rayleigh: succeeds w.p. exp(-0.5) < 1, so over
        // many slots some failures must appear.
        struct OneTalks;
        impl NodeBehavior for OneTalks {
            fn on_slot(&mut self, ctx: &mut SlotContext<'_>) -> Action {
                if ctx.node.index() == 0 {
                    Action::Transmit {
                        power: 1.0,
                        message: 4,
                    }
                } else {
                    Action::Listen
                }
            }
        }
        let mut sim = Simulator::new(
            line(2),
            (0..2).map(|_| OneTalks).collect(),
            SinrParams::new(1.0, 0.5).unwrap(),
            1,
        )
        .unwrap();
        sim.set_reception_model(ReceptionModel::Rayleigh);
        let mut delivered = 0;
        for _ in 0..300 {
            delivered += sim.step().deliveries.len();
        }
        assert!(delivered > 100, "delivered {delivered}");
        assert!(delivered < 300, "fading never failed");
    }

    #[test]
    fn idle_nodes_neither_send_nor_receive() {
        struct Sleepy;
        impl NodeBehavior for Sleepy {
            fn on_slot(&mut self, ctx: &mut SlotContext<'_>) -> Action {
                if ctx.node.index() == 0 {
                    Action::Transmit {
                        power: 1.0,
                        message: 9,
                    }
                } else {
                    Action::Idle
                }
            }
        }
        let mut sim = Simulator::new(
            line(3),
            (0..3).map(|_| Sleepy).collect(),
            SinrParams::default(),
            1,
        )
        .unwrap();
        let r = sim.step();
        assert!(r.deliveries.is_empty());
    }
}
