//! Decay inference from packet reception rates.
//!
//! Section 2.2 of the paper notes that decay spaces "can also be inferred
//! by packet reception rates". This module implements that measurement
//! path end to end: a round-robin *probe campaign* in which every node
//! broadcasts alone in its own slots ([`run_probe_campaign`]) yields a
//! [`PrrMatrix`] of per-ordered-pair reception rates; under Rayleigh
//! fading the interference-free success probability has the closed form
//! `p = exp(-β·N·f/P)`, which [`infer_decay_from_prr`] inverts to recover
//! the decay matrix. [`compare_decays`] quantifies how faithful the
//! reconstruction is — experiment E31 runs the full pipeline and checks
//! that metricity and capacity decisions computed from the inferred space
//! agree with the ground truth.

use decay_core::{DecaySpace, NodeId};
use decay_sinr::SinrParams;
use serde::{Deserialize, Serialize};

use crate::{Action, NodeBehavior, ReceptionModel, Simulator, SlotContext};

/// Packet reception rates for every ordered (transmitter, receiver) pair,
/// produced by a probe campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrrMatrix {
    n: usize,
    rounds: usize,
    /// Row-major: `successes[tx * n + rx]`.
    successes: Vec<u32>,
}

impl PrrMatrix {
    /// Number of nodes probed.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Probe transmissions per ordered pair.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Raw success count for the ordered pair.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn successes(&self, from: NodeId, to: NodeId) -> u32 {
        assert!(from.index() < self.n && to.index() < self.n);
        self.successes[from.index() * self.n + to.index()]
    }

    /// The packet reception rate `successes / rounds` for the ordered
    /// pair; 0 for `from == to`.
    pub fn rate(&self, from: NodeId, to: NodeId) -> f64 {
        self.successes(from, to) as f64 / self.rounds as f64
    }
}

/// Probe behavior: transmit in your own round-robin slot, listen
/// otherwise, count which senders you heard.
struct Probe {
    power: f64,
    heard: Vec<u32>,
}

impl NodeBehavior for Probe {
    fn on_slot(&mut self, ctx: &mut SlotContext<'_>) -> Action {
        if ctx.slot % ctx.nodes == ctx.node.index() {
            Action::Transmit {
                power: self.power,
                message: ctx.node.index() as u64,
            }
        } else {
            Action::Listen
        }
    }

    fn on_receive(&mut self, from: NodeId, _message: u64, _power: f64) {
        self.heard[from.index()] += 1;
    }
}

/// Runs a round-robin probe campaign: `rounds` cycles in which each node
/// transmits alone at `power` while everyone else listens, under the given
/// reception model.
///
/// Probes are interference-free by construction, so with
/// [`ReceptionModel::Rayleigh`] the expected reception rate for pair
/// `(s, r)` is exactly `exp(-β·N·f(s,r)/P)`.
///
/// # Panics
///
/// Panics if `rounds` is zero or `power` is not positive and finite.
pub fn run_probe_campaign(
    space: &DecaySpace,
    params: &SinrParams,
    model: ReceptionModel,
    rounds: usize,
    power: f64,
    seed: u64,
) -> PrrMatrix {
    assert!(rounds > 0, "probe campaign needs at least one round");
    assert!(
        power.is_finite() && power > 0.0,
        "probe power must be positive"
    );
    let n = space.len();
    let behaviors = (0..n)
        .map(|_| Probe {
            power,
            heard: vec![0; n],
        })
        .collect();
    let mut sim = Simulator::new(space.clone(), behaviors, *params, seed)
        .expect("behavior count matches node count");
    sim.set_reception_model(model);
    for _ in 0..rounds * n {
        sim.step();
    }
    let mut successes = vec![0u32; n * n];
    for rx in 0..n {
        let heard = &sim.behavior(NodeId::new(rx)).heard;
        for tx in 0..n {
            successes[tx * n + rx] = heard[tx];
        }
    }
    PrrMatrix {
        n,
        rounds,
        successes,
    }
}

/// Streaming per-pair reception statistics over *arbitrary* traffic.
///
/// [`PrrMatrix`] comes from the dedicated interference-free probe
/// campaign; this tracker instead folds the [`SlotReport`]s of any
/// running protocol into per-ordered-pair attempt/success counts, so
/// harness-side code can read PRR out of real traffic without
/// re-instrumenting behaviors. (The event-driven scenario runner in
/// `decay-scenario` computes its protocol-level PRR from engine traces
/// instead; this export serves slot-synchronous experiments.)
///
/// An "attempt" at pair `(tx, rx)` is a slot in which `tx` transmitted
/// (every other node is a potential receiver under the broadcast
/// medium); a success is `rx` actually capturing that transmission.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrrTracker {
    n: usize,
    /// Slots in which each node transmitted.
    attempts: Vec<u64>,
    /// Row-major `successes[tx * n + rx]`.
    successes: Vec<u64>,
    /// Total deliveries folded in.
    deliveries: u64,
    /// Sliding window length in slots (0 = windowing disabled).
    window: usize,
    /// Retained recent slots, oldest first, for windowed queries.
    recent: std::collections::VecDeque<WindowSlot>,
}

/// One retained slot of the sliding window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct WindowSlot {
    slot: usize,
    transmitters: Vec<NodeId>,
    deliveries: Vec<(NodeId, NodeId)>,
}

impl PrrTracker {
    /// A tracker over `n` nodes with no traffic recorded yet (lifetime
    /// statistics only; see [`PrrTracker::with_window`]).
    pub fn new(n: usize) -> Self {
        PrrTracker {
            n,
            attempts: vec![0; n],
            successes: vec![0; n * n],
            deliveries: 0,
            window: 0,
            recent: std::collections::VecDeque::new(),
        }
    }

    /// A tracker that additionally keeps the last `window` slots of
    /// traffic for windowed PRR queries — the view that shows PRR
    /// *drift* under time-varying channels, where the lifetime average
    /// flattens every fade and mobility swing into one number.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_window(n: usize, window: usize) -> Self {
        assert!(window > 0, "sliding window needs at least one slot");
        PrrTracker {
            window,
            ..PrrTracker::new(n)
        }
    }

    /// Folds one slot's outcome into the statistics (and the sliding
    /// window, when one is configured — slots older than `window` slots
    /// before the report's slot are evicted).
    ///
    /// # Panics
    ///
    /// Panics if the report mentions nodes outside the tracked range.
    pub fn record(&mut self, report: &crate::SlotReport) {
        for t in &report.transmitters {
            self.attempts[t.index()] += 1;
        }
        for d in &report.deliveries {
            self.successes[d.from.index() * self.n + d.to.index()] += 1;
            self.deliveries += 1;
        }
        if self.window > 0 {
            self.recent.push_back(WindowSlot {
                slot: report.slot,
                transmitters: report.transmitters.clone(),
                deliveries: report.deliveries.iter().map(|d| (d.from, d.to)).collect(),
            });
            let horizon = report.slot.saturating_sub(self.window - 1);
            while self.recent.front().is_some_and(|s| s.slot < horizon) {
                self.recent.pop_front();
            }
        }
    }

    /// Folds one *engine-side* window of traffic into the statistics:
    /// a whole tick window collapses onto the synthetic slot `slot`,
    /// with the transmitters observed delivering in it and every
    /// `(from, to)` delivery pair. Window semantics match
    /// [`Self::record`] — slots older than `window` before `slot` are
    /// evicted.
    ///
    /// This is the feed used by `decay_engine::probe::WindowedPrr`:
    /// the event engine's delivery trace has no per-slot
    /// [`crate::SlotReport`]s (and no record of silent attempts), so
    /// attempts here count *delivering* transmitters per window.
    ///
    /// # Panics
    ///
    /// Panics if a delivery mentions nodes outside the tracked range.
    pub fn record_window(
        &mut self,
        slot: usize,
        transmitters: &[NodeId],
        deliveries: &[(NodeId, NodeId)],
    ) {
        let report = crate::SlotReport {
            slot,
            transmitters: transmitters.to_vec(),
            deliveries: deliveries
                .iter()
                .map(|&(from, to)| crate::Delivery {
                    to,
                    from,
                    message: 0,
                })
                .collect(),
            downed: Vec::new(),
        };
        self.record(&report);
    }

    /// The sliding window length in slots (0 when windowing is off).
    pub fn window(&self) -> usize {
        self.window
    }

    /// Attempts by `from` within the sliding window.
    pub fn windowed_attempts(&self, from: NodeId) -> u64 {
        self.recent
            .iter()
            .flat_map(|s| &s.transmitters)
            .filter(|&&t| t == from)
            .count() as u64
    }

    /// The packet reception rate of the ordered pair over the sliding
    /// window only: recent captures over recent attempts (0 when `from`
    /// has not transmitted within the window).
    ///
    /// # Panics
    ///
    /// Panics if the tracker was built without a window
    /// ([`PrrTracker::new`]).
    pub fn windowed_rate(&self, from: NodeId, to: NodeId) -> f64 {
        assert!(self.window > 0, "tracker was built without a window");
        let attempts = self.windowed_attempts(from);
        if attempts == 0 {
            return 0.0;
        }
        let successes = self
            .recent
            .iter()
            .flat_map(|s| &s.deliveries)
            .filter(|&&(f, t)| f == from && t == to)
            .count() as u64;
        successes as f64 / attempts as f64
    }

    /// Network-wide PRR over the sliding window: delivered
    /// (transmission, potential-receiver) opportunities over all of
    /// them, counting only retained slots.
    ///
    /// # Panics
    ///
    /// Panics if the tracker was built without a window.
    pub fn windowed_overall(&self) -> f64 {
        assert!(self.window > 0, "tracker was built without a window");
        let attempts: u64 = self
            .recent
            .iter()
            .map(|s| s.transmitters.len() as u64)
            .sum();
        let opportunities = attempts * (self.n as u64).saturating_sub(1);
        if opportunities == 0 {
            return 0.0;
        }
        let delivered: u64 = self.recent.iter().map(|s| s.deliveries.len() as u64).sum();
        delivered as f64 / opportunities as f64
    }

    /// Number of nodes tracked.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Slots in which `from` transmitted.
    pub fn attempts(&self, from: NodeId) -> u64 {
        self.attempts[from.index()]
    }

    /// Captures of `from` by `to`.
    pub fn successes(&self, from: NodeId, to: NodeId) -> u64 {
        self.successes[from.index() * self.n + to.index()]
    }

    /// The packet reception rate of the ordered pair: captures over
    /// transmission attempts (0 when `from` never transmitted).
    pub fn rate(&self, from: NodeId, to: NodeId) -> f64 {
        let attempts = self.attempts(from);
        if attempts == 0 {
            0.0
        } else {
            self.successes(from, to) as f64 / attempts as f64
        }
    }

    /// Mean receivers per transmission of `from` (its broadcast yield).
    pub fn yield_of(&self, from: NodeId) -> f64 {
        let attempts = self.attempts(from);
        if attempts == 0 {
            return 0.0;
        }
        let row = &self.successes[from.index() * self.n..(from.index() + 1) * self.n];
        row.iter().sum::<u64>() as f64 / attempts as f64
    }

    /// Network-wide PRR: delivered (transmission, potential-receiver)
    /// opportunities over all of them — `Σ successes / (Σ attempts ·
    /// (n - 1))`.
    pub fn overall(&self) -> f64 {
        let opportunities = self.attempts.iter().sum::<u64>() * (self.n as u64).saturating_sub(1);
        if opportunities == 0 {
            0.0
        } else {
            self.deliveries as f64 / opportunities as f64
        }
    }
}

/// Why PRR-based inference can fail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InferenceError {
    /// The channel has no ambient noise: under Rayleigh fading every
    /// interference-free probe then succeeds with probability 1 regardless
    /// of decay, so reception rates carry no decay information.
    NoiselessChannel,
    /// The probe power was not positive and finite.
    InvalidPower {
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for InferenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferenceError::NoiselessChannel => {
                write!(f, "cannot infer decays from PRR on a noiseless channel")
            }
            InferenceError::InvalidPower { value } => {
                write!(f, "probe power must be positive and finite, got {value}")
            }
        }
    }
}

impl std::error::Error for InferenceError {}

/// An inferred decay space plus the pairs whose rates pinned to 0 or 1 and
/// therefore only yield decay bounds, not estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceOutcome {
    /// The inferred decay space.
    pub space: DecaySpace,
    /// Pairs with zero successes: the true decay is at least the inferred
    /// value (right-censored).
    pub censored: Vec<(NodeId, NodeId)>,
    /// Pairs with all successes: the true decay is at most the inferred
    /// value (left-censored).
    pub saturated: Vec<(NodeId, NodeId)>,
}

impl InferenceOutcome {
    /// All pairs whose inferred value is only a bound; callers comparing
    /// against ground truth should exclude these.
    pub fn unreliable_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut v = self.censored.clone();
        v.extend_from_slice(&self.saturated);
        v
    }
}

/// Inverts the Rayleigh probe model `p = exp(-β·N·f/P)` to recover decays:
/// `f = -P·ln(p) / (β·N)`.
///
/// Rates of exactly 0 or 1 are continuity-corrected to
/// `1/(2·rounds)` and `1 - 1/(2·rounds)` respectively and reported as
/// censored/saturated in the outcome.
///
/// # Errors
///
/// Returns [`InferenceError::NoiselessChannel`] when `params.noise() == 0`
/// and [`InferenceError::InvalidPower`] for bad `power`.
pub fn infer_decay_from_prr(
    prr: &PrrMatrix,
    power: f64,
    params: &SinrParams,
) -> Result<InferenceOutcome, InferenceError> {
    if params.noise() == 0.0 {
        return Err(InferenceError::NoiselessChannel);
    }
    if !(power.is_finite() && power > 0.0) {
        return Err(InferenceError::InvalidPower { value: power });
    }
    let n = prr.nodes();
    let rounds = prr.rounds() as f64;
    let scale = power / (params.beta() * params.noise());
    let mut censored = Vec::new();
    let mut saturated = Vec::new();
    let space = DecaySpace::from_fn(n, |i, j| {
        let s = prr.successes(NodeId::new(i), NodeId::new(j));
        let p = if s == 0 {
            censored.push((NodeId::new(i), NodeId::new(j)));
            1.0 / (2.0 * rounds)
        } else if s as f64 >= rounds {
            saturated.push((NodeId::new(i), NodeId::new(j)));
            1.0 - 1.0 / (2.0 * rounds)
        } else {
            s as f64 / rounds
        };
        -p.ln() * scale
    })
    .expect("corrected rates are in (0, 1), so inferred decays are positive and finite");
    Ok(InferenceOutcome {
        space,
        censored,
        saturated,
    })
}

/// Agreement statistics between a ground-truth and an inferred decay
/// space, on the log scale (decays are ratio quantities).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Mean of `|log10(f̂/f)|` over compared pairs.
    pub mean_abs_log10_error: f64,
    /// Maximum of `|log10(f̂/f)|` over compared pairs.
    pub max_abs_log10_error: f64,
    /// Pearson correlation between `ln f` and `ln f̂`.
    pub log_correlation: f64,
    /// Number of ordered pairs compared.
    pub pairs: usize,
}

/// Compares two decay spaces over the same node set, skipping the given
/// pairs (typically the censored/saturated ones).
///
/// # Panics
///
/// Panics if the spaces have different sizes.
pub fn compare_decays(
    truth: &DecaySpace,
    inferred: &DecaySpace,
    skip: &[(NodeId, NodeId)],
) -> InferenceReport {
    assert_eq!(
        truth.len(),
        inferred.len(),
        "spaces must have the same node count"
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (a, b, f_true) in truth.ordered_pairs() {
        if skip.contains(&(a, b)) {
            continue;
        }
        xs.push(f_true.ln());
        ys.push(inferred.decay(a, b).ln());
    }
    let pairs = xs.len();
    if pairs == 0 {
        return InferenceReport {
            mean_abs_log10_error: 0.0,
            max_abs_log10_error: 0.0,
            log_correlation: 1.0,
            pairs,
        };
    }
    let ln10 = std::f64::consts::LN_10;
    let mut sum = 0.0;
    let mut max = 0.0_f64;
    for (x, y) in xs.iter().zip(&ys) {
        let e = ((y - x) / ln10).abs();
        sum += e;
        max = max.max(e);
    }
    let mean_x = xs.iter().sum::<f64>() / pairs as f64;
    let mean_y = ys.iter().sum::<f64>() / pairs as f64;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        cov += (x - mean_x) * (y - mean_y);
        var_x += (x - mean_x).powi(2);
        var_y += (y - mean_y).powi(2);
    }
    let log_correlation = if var_x > 0.0 && var_y > 0.0 {
        cov / (var_x * var_y).sqrt()
    } else {
        // A constant series carries no correlation signal; report 0.
        0.0
    };
    InferenceReport {
        mean_abs_log10_error: sum / pairs as f64,
        max_abs_log10_error: max,
        log_correlation,
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, alpha: f64) -> DecaySpace {
        DecaySpace::from_fn(n, |i, j| ((i as f64) - (j as f64)).abs().powf(alpha)).unwrap()
    }

    #[test]
    fn tracker_accumulates_arbitrary_traffic() {
        // Round-robin traffic (each node transmits alone in its slot on a
        // noiseless line) delivers to everyone: PRR 1 on every pair.
        struct RoundRobin;
        impl NodeBehavior for RoundRobin {
            fn on_slot(&mut self, ctx: &mut SlotContext<'_>) -> Action {
                if ctx.slot % ctx.nodes == ctx.node.index() {
                    Action::Transmit {
                        power: 1.0,
                        message: 0,
                    }
                } else {
                    Action::Listen
                }
            }
        }
        let n = 4;
        let mut sim = Simulator::new(
            line(n, 2.0),
            (0..n).map(|_| RoundRobin).collect(),
            SinrParams::default(),
            1,
        )
        .unwrap();
        let mut tracker = PrrTracker::new(n);
        for _ in 0..3 * n {
            tracker.record(&sim.step());
        }
        assert_eq!(tracker.nodes(), n);
        for tx in 0..n {
            assert_eq!(tracker.attempts(NodeId::new(tx)), 3);
            assert_eq!(tracker.yield_of(NodeId::new(tx)), (n - 1) as f64);
            for rx in 0..n {
                if tx != rx {
                    assert_eq!(tracker.rate(NodeId::new(tx), NodeId::new(rx)), 1.0);
                    assert_eq!(tracker.successes(NodeId::new(tx), NodeId::new(rx)), 3);
                }
            }
        }
        assert_eq!(tracker.overall(), 1.0);
    }

    /// Hand-built slot reports: node 0 transmits every slot; `delivered`
    /// controls whether node 1 captures it.
    fn synthetic_report(slot: usize, delivered: bool) -> crate::SlotReport {
        crate::SlotReport {
            slot,
            transmitters: vec![NodeId::new(0)],
            deliveries: if delivered {
                vec![crate::Delivery {
                    to: NodeId::new(1),
                    from: NodeId::new(0),
                    message: 7,
                }]
            } else {
                vec![]
            },
            downed: vec![],
        }
    }

    #[test]
    fn windowed_rate_tracks_drift_the_lifetime_average_hides() {
        // A channel that works for 50 slots, then fades out completely:
        // exactly the regime time-varying channels produce.
        let (from, to) = (NodeId::new(0), NodeId::new(1));
        let mut tracker = PrrTracker::with_window(2, 20);
        for slot in 0..50 {
            tracker.record(&synthetic_report(slot, true));
        }
        assert_eq!(tracker.windowed_rate(from, to), 1.0);
        for slot in 50..100 {
            tracker.record(&synthetic_report(slot, false));
        }
        // Lifetime average still says "half works"...
        assert_eq!(tracker.rate(from, to), 0.5);
        // ...while the window has seen the fade.
        assert_eq!(tracker.windowed_rate(from, to), 0.0);
        assert_eq!(tracker.windowed_overall(), 0.0);
        assert_eq!(tracker.windowed_attempts(from), 20);
        assert_eq!(tracker.window(), 20);

        // Partial recovery shows up at window resolution.
        for slot in 100..110 {
            tracker.record(&synthetic_report(slot, true));
        }
        assert_eq!(tracker.windowed_rate(from, to), 0.5, "10 of last 20");
        assert_eq!(tracker.rate(from, to), 60.0 / 110.0);
    }

    #[test]
    fn record_window_matches_equivalent_slot_reports() {
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let mut via_reports = PrrTracker::with_window(3, 4);
        let mut via_windows = PrrTracker::with_window(3, 4);
        for slot in 0..6 {
            via_reports.record(&synthetic_report(slot, slot % 2 == 0));
            let pairs: &[(NodeId, NodeId)] = if slot % 2 == 0 { &[(a, b)] } else { &[] };
            via_windows.record_window(slot, &[a], pairs);
        }
        assert_eq!(via_windows.attempts(a), via_reports.attempts(a));
        assert_eq!(via_windows.successes(a, b), via_reports.successes(a, b));
        assert_eq!(
            via_windows.windowed_rate(a, b),
            via_reports.windowed_rate(a, b)
        );
        assert_eq!(
            via_windows.windowed_overall(),
            via_reports.windowed_overall()
        );
    }

    #[test]
    fn window_eviction_follows_the_report_slot() {
        let mut tracker = PrrTracker::with_window(3, 8);
        tracker.record(&synthetic_report(0, true));
        // A jump in slot numbers (paused simulation, sparse recording)
        // evicts everything older than the window.
        tracker.record(&synthetic_report(100, false));
        assert_eq!(tracker.windowed_attempts(NodeId::new(0)), 1);
        assert_eq!(tracker.windowed_rate(NodeId::new(0), NodeId::new(1)), 0.0);
        // Lifetime stats keep the full history.
        assert_eq!(tracker.attempts(NodeId::new(0)), 2);
        assert_eq!(tracker.rate(NodeId::new(0), NodeId::new(1)), 0.5);
    }

    #[test]
    fn windowed_queries_are_empty_safe() {
        let tracker = PrrTracker::with_window(4, 5);
        assert_eq!(tracker.windowed_overall(), 0.0);
        assert_eq!(tracker.windowed_rate(NodeId::new(0), NodeId::new(1)), 0.0);
        assert_eq!(tracker.windowed_attempts(NodeId::new(2)), 0);
        // Lifetime-only trackers report window 0.
        assert_eq!(PrrTracker::new(4).window(), 0);
    }

    #[test]
    fn windowed_tracker_agrees_with_lifetime_inside_one_window() {
        // While total traffic fits in the window, both views agree.
        struct RoundRobin;
        impl NodeBehavior for RoundRobin {
            fn on_slot(&mut self, ctx: &mut SlotContext<'_>) -> Action {
                if ctx.slot % ctx.nodes == ctx.node.index() {
                    Action::Transmit {
                        power: 1.0,
                        message: 0,
                    }
                } else {
                    Action::Listen
                }
            }
        }
        let n = 4;
        let mut sim = Simulator::new(
            line(n, 2.0),
            (0..n).map(|_| RoundRobin).collect(),
            SinrParams::default(),
            1,
        )
        .unwrap();
        let mut tracker = PrrTracker::with_window(n, 100);
        for _ in 0..3 * n {
            tracker.record(&sim.step());
        }
        for tx in 0..n {
            for rx in 0..n {
                if tx != rx {
                    let (a, b) = (NodeId::new(tx), NodeId::new(rx));
                    assert_eq!(tracker.windowed_rate(a, b), tracker.rate(a, b));
                }
            }
        }
        assert_eq!(tracker.windowed_overall(), tracker.overall());
    }

    #[test]
    fn tracker_is_quiet_without_traffic() {
        let tracker = PrrTracker::new(5);
        assert_eq!(tracker.overall(), 0.0);
        assert_eq!(tracker.rate(NodeId::new(0), NodeId::new(1)), 0.0);
        assert_eq!(tracker.yield_of(NodeId::new(2)), 0.0);
        // Degenerate sizes never underflow the opportunity count.
        assert_eq!(PrrTracker::new(0).overall(), 0.0);
        assert_eq!(PrrTracker::new(1).overall(), 0.0);
    }

    #[test]
    fn threshold_noiseless_probes_always_succeed() {
        let s = line(4, 2.0);
        let prr = run_probe_campaign(
            &s,
            &SinrParams::default(),
            ReceptionModel::Threshold,
            5,
            1.0,
            1,
        );
        for (a, b, _) in s.ordered_pairs() {
            assert_eq!(prr.successes(a, b), 5, "{a} -> {b}");
            assert_eq!(prr.rate(a, b), 1.0);
        }
    }

    #[test]
    fn campaign_is_deterministic_in_seed() {
        let s = line(4, 2.0);
        let params = SinrParams::new(1.0, 0.2).unwrap();
        let a = run_probe_campaign(&s, &params, ReceptionModel::Rayleigh, 50, 1.0, 9);
        let b = run_probe_campaign(&s, &params, ReceptionModel::Rayleigh, 50, 1.0, 9);
        let c = run_probe_campaign(&s, &params, ReceptionModel::Rayleigh, 50, 1.0, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rayleigh_rates_track_the_closed_form() {
        // p = exp(-beta N f / P): check the empirical rate is close for a
        // pair with moderate decay.
        let s = line(2, 1.0); // f = 1 both ways
        let params = SinrParams::new(1.0, 0.5).unwrap();
        let prr = run_probe_campaign(&s, &params, ReceptionModel::Rayleigh, 4000, 1.0, 3);
        let expect = (-0.5_f64).exp(); // ~0.6065
        let got = prr.rate(NodeId::new(0), NodeId::new(1));
        assert!(
            (got - expect).abs() < 0.03,
            "rate {got} vs closed form {expect}"
        );
    }

    #[test]
    fn inference_recovers_decays() {
        let s = line(5, 1.2);
        let params = SinrParams::new(1.0, 0.3).unwrap();
        let prr = run_probe_campaign(&s, &params, ReceptionModel::Rayleigh, 3000, 1.0, 7);
        let outcome = infer_decay_from_prr(&prr, 1.0, &params).unwrap();
        let report = compare_decays(&s, &outcome.space, &outcome.unreliable_pairs());
        assert!(report.pairs > 0);
        assert!(
            report.mean_abs_log10_error < 0.1,
            "mean log error {}",
            report.mean_abs_log10_error
        );
        assert!(
            report.log_correlation > 0.9,
            "correlation {}",
            report.log_correlation
        );
    }

    #[test]
    fn extreme_decays_are_censored() {
        // f(0,1) = 1 but f(0,2) = 200: with N = 0.5 the far pair succeeds
        // w.p. e^{-100}, i.e. never in any realistic campaign.
        let s =
            DecaySpace::from_matrix(3, vec![0.0, 1.0, 200.0, 1.0, 0.0, 200.0, 200.0, 200.0, 0.0])
                .unwrap();
        let params = SinrParams::new(1.0, 0.5).unwrap();
        let prr = run_probe_campaign(&s, &params, ReceptionModel::Rayleigh, 200, 1.0, 11);
        let outcome = infer_decay_from_prr(&prr, 1.0, &params).unwrap();
        assert!(outcome.censored.contains(&(NodeId::new(0), NodeId::new(2))));
        // Censored estimate is a lower bound that still dominates the
        // resolvable pairs.
        assert!(
            outcome.space.decay(NodeId::new(0), NodeId::new(2))
                > outcome.space.decay(NodeId::new(0), NodeId::new(1))
        );
    }

    #[test]
    fn noiseless_inference_is_rejected() {
        let s = line(3, 2.0);
        let prr = run_probe_campaign(
            &s,
            &SinrParams::default(),
            ReceptionModel::Threshold,
            5,
            1.0,
            1,
        );
        let err = infer_decay_from_prr(&prr, 1.0, &SinrParams::default()).unwrap_err();
        assert_eq!(err, InferenceError::NoiselessChannel);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn invalid_power_is_rejected() {
        let s = line(3, 2.0);
        let params = SinrParams::new(1.0, 0.1).unwrap();
        let prr = run_probe_campaign(&s, &params, ReceptionModel::Threshold, 5, 1.0, 1);
        assert!(matches!(
            infer_decay_from_prr(&prr, 0.0, &params),
            Err(InferenceError::InvalidPower { .. })
        ));
    }

    #[test]
    fn compare_decays_identity_is_exact() {
        let s = line(4, 2.0);
        let r = compare_decays(&s, &s, &[]);
        assert_eq!(r.mean_abs_log10_error, 0.0);
        assert_eq!(r.max_abs_log10_error, 0.0);
        assert!(r.log_correlation > 0.999);
    }

    #[test]
    fn compare_decays_skip_list_is_honored() {
        let s = line(3, 2.0);
        let all: Vec<_> = s.ordered_pairs().map(|(a, b, _)| (a, b)).collect();
        let r = compare_decays(&s, &s, &all);
        assert_eq!(r.pairs, 0);
    }
}
