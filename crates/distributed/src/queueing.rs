//! Dynamic packet scheduling / stability (the paper's transfer list cites
//! Kesselheim [44] and Ásgeirsson–Halldórsson–Mitra [2, 3]).
//!
//! Packets arrive at links by a Bernoulli process; each slot a scheduler
//! picks a feasible set of backlogged links to transmit. A scheduler is
//! *stable* at arrival rate `λ` when queues do not grow without bound.
//! This module provides the slotted queueing loop plus two schedulers:
//! the centralized max-backlog-greedy and the distributed probabilistic
//! one, letting experiments trace the stability region on any decay
//! space.

use decay_sinr::{AffectanceMatrix, LinkId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Scheduler choices for the queueing simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheduler {
    /// Centralized: scan backlogged links by decreasing queue length,
    /// admit while the scheduled set stays feasible (longest-queue-first
    /// greedy; feasibility is hereditary so the incremental check is
    /// sound).
    LongestQueueGreedy,
    /// Distributed: every backlogged link transmits independently with a
    /// fixed probability; successes drain (ALOHA-style baseline).
    Probabilistic {
        /// Per-slot transmit probability (scaled to 0–1000 to stay `Eq`;
        /// 500 means 0.5).
        per_mille: u16,
    },
}

/// Parameters of a queueing run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueingConfig {
    /// Per-link per-slot packet arrival probability `λ`.
    pub arrival_rate: f64,
    /// Number of slots to simulate.
    pub slots: usize,
    /// Scheduler to drive transmissions.
    pub scheduler: Scheduler,
    /// RNG seed.
    pub seed: u64,
}

/// Outcome of a queueing run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueingReport {
    /// Final queue length per link.
    pub final_queues: Vec<usize>,
    /// Mean total backlog over the last quarter of the run.
    pub mean_backlog: f64,
    /// Total packets delivered.
    pub delivered: usize,
    /// Total packets that arrived.
    pub arrived: usize,
    /// Mean backlog over the *first* quarter (for drift comparison).
    pub early_backlog: f64,
}

impl QueueingReport {
    /// A pragmatic stability verdict: the late-run backlog has not grown
    /// to more than double the early-run backlog plus slack.
    pub fn looks_stable(&self) -> bool {
        self.mean_backlog <= 2.0 * self.early_backlog + 4.0
    }
}

/// Runs the slotted queueing simulation on the given affectance matrix.
///
/// Transmission success is evaluated exactly: the scheduled set drains
/// those members whose in-affectance from the other scheduled links is at
/// most 1 (i.e. `SINR ≥ β`).
///
/// # Panics
///
/// Panics on degenerate configs (`λ` outside `[0, 1]`, zero slots).
pub fn run_queueing(aff: &AffectanceMatrix, config: &QueueingConfig) -> QueueingReport {
    assert!(
        (0.0..=1.0).contains(&config.arrival_rate),
        "arrival rate must be a probability"
    );
    assert!(config.slots > 0, "need at least one slot");
    let m = aff.len();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut queues = vec![0usize; m];
    let mut arrived = 0usize;
    let mut delivered = 0usize;
    let quarter = (config.slots / 4).max(1);
    let mut early_sum = 0usize;
    let mut late_sum = 0usize;
    for slot in 0..config.slots {
        // Arrivals.
        for q in queues.iter_mut() {
            if rng.gen_range(0.0..1.0) < config.arrival_rate {
                *q += 1;
                arrived += 1;
            }
        }
        // Schedule.
        let backlogged: Vec<LinkId> = (0..m)
            .filter(|&i| queues[i] > 0 && aff.noise_factor(LinkId::new(i)).is_finite())
            .map(LinkId::new)
            .collect();
        let scheduled: Vec<LinkId> = match config.scheduler {
            Scheduler::LongestQueueGreedy => {
                let mut order = backlogged.clone();
                order.sort_by(|a, b| {
                    queues[b.index()]
                        .cmp(&queues[a.index()])
                        .then(a.index().cmp(&b.index()))
                });
                // Admit while the set stays feasible (feasibility is
                // hereditary, so the incremental check is sound). Using a
                // fixed affectance slack here instead would refuse to
                // saturate instances whose full link set is feasible.
                let mut chosen: Vec<LinkId> = Vec::new();
                for v in order {
                    chosen.push(v);
                    if !aff.is_feasible(&chosen) {
                        chosen.pop();
                    }
                }
                chosen
            }
            Scheduler::Probabilistic { per_mille } => backlogged
                .iter()
                .copied()
                .filter(|_| rng.gen_range(0u16..1000) < per_mille)
                .collect(),
        };
        // Resolve successes exactly.
        for &v in &scheduled {
            let others: Vec<LinkId> = scheduled.iter().copied().filter(|&w| w != v).collect();
            if aff.in_affectance_raw(&others, v) <= 1.0 + 1e-12 {
                queues[v.index()] -= 1;
                delivered += 1;
            }
        }
        let backlog: usize = queues.iter().sum();
        if slot < quarter {
            early_sum += backlog;
        } else if slot >= config.slots - quarter {
            late_sum += backlog;
        }
    }
    QueueingReport {
        final_queues: queues,
        mean_backlog: late_sum as f64 / quarter as f64,
        delivered,
        arrived,
        early_backlog: early_sum as f64 / quarter as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decay_core::{DecaySpace, NodeId};
    use decay_sinr::{Link, LinkSet, PowerAssignment, SinrParams};

    fn parallel(m: usize, gap: f64) -> AffectanceMatrix {
        let mut pos = Vec::new();
        for i in 0..m {
            pos.push(i as f64 * gap);
            pos.push(i as f64 * gap + 1.0);
        }
        let s = DecaySpace::from_fn(pos.len(), |i, j| (pos[i] - pos[j]).abs().powi(2)).unwrap();
        let links: Vec<Link> = (0..m)
            .map(|i| Link::new(NodeId::new(2 * i), NodeId::new(2 * i + 1)))
            .collect();
        let ls = LinkSet::new(&s, links).unwrap();
        let powers = PowerAssignment::unit().powers(&s, &ls).unwrap();
        AffectanceMatrix::build(&s, &ls, &powers, &SinrParams::default()).unwrap()
    }

    #[test]
    fn light_load_is_stable_under_greedy() {
        let aff = parallel(8, 6.0);
        let report = run_queueing(
            &aff,
            &QueueingConfig {
                arrival_rate: 0.2,
                slots: 4000,
                scheduler: Scheduler::LongestQueueGreedy,
                seed: 3,
            },
        );
        assert!(report.looks_stable(), "backlog {}", report.mean_backlog);
        // Little's-law sanity: deliveries track arrivals.
        assert!(report.delivered as f64 >= 0.9 * report.arrived as f64);
    }

    #[test]
    fn overload_is_unstable() {
        // Crowded links: capacity per slot is well below 8 while arrivals
        // average 0.9 * 8 = 7.2 packets per slot.
        let aff = parallel(8, 1.5);
        let report = run_queueing(
            &aff,
            &QueueingConfig {
                arrival_rate: 0.9,
                slots: 2000,
                scheduler: Scheduler::LongestQueueGreedy,
                seed: 3,
            },
        );
        assert!(!report.looks_stable(), "backlog {}", report.mean_backlog);
        assert!(report.mean_backlog > 100.0);
    }

    #[test]
    fn greedy_beats_probabilistic_at_moderate_load() {
        let aff = parallel(8, 3.0);
        let cfg = |scheduler| QueueingConfig {
            arrival_rate: 0.4,
            slots: 3000,
            scheduler,
            seed: 7,
        };
        let greedy = run_queueing(&aff, &cfg(Scheduler::LongestQueueGreedy));
        let aloha = run_queueing(&aff, &cfg(Scheduler::Probabilistic { per_mille: 400 }));
        assert!(greedy.mean_backlog <= aloha.mean_backlog + 1.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let aff = parallel(5, 4.0);
        let cfg = QueueingConfig {
            arrival_rate: 0.3,
            slots: 500,
            scheduler: Scheduler::LongestQueueGreedy,
            seed: 11,
        };
        assert_eq!(run_queueing(&aff, &cfg), run_queueing(&aff, &cfg));
    }

    #[test]
    fn conservation_of_packets() {
        let aff = parallel(6, 5.0);
        let report = run_queueing(
            &aff,
            &QueueingConfig {
                arrival_rate: 0.5,
                slots: 1000,
                scheduler: Scheduler::Probabilistic { per_mille: 300 },
                seed: 9,
            },
        );
        let remaining: usize = report.final_queues.iter().sum();
        assert_eq!(report.arrived, report.delivered + remaining);
    }
}
