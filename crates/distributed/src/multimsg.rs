//! Multiple-message broadcast ([65, 66]) and global single-message
//! broadcast ([13]) — annulus-argument protocols from the paper's
//! Section 3.3 list.
//!
//! `k` messages start at `k` source nodes; every node must eventually
//! know all of them, with dissemination hopping through the decay space
//! (multi-hop: distant nodes can only be reached through relays). The
//! protocol is the standard randomized gossip in the physical model: each
//! slot, a node knowing at least one message transmits a uniformly random
//! known message with probability `p_send`, otherwise listens. With `k =
//! 1` and a single source this is the broadcast of [13].
//!
//! The round complexity of these protocols is governed by the fading
//! parameter `γ` of the space (Theorem 2): the analyses only need the
//! expected-interference bound of the annulus argument. Experiment E28
//! measures completion slots against `n`, `k`, and the space.

use decay_core::{DecaySpace, NodeId};
use decay_netsim::{Action, FaultPlan, NodeBehavior, Simulator, SlotContext};
use decay_sinr::SinrParams;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Maximum number of distinct messages (knowledge is a `u64` bitmask).
pub const MAX_MESSAGES: usize = 64;

/// Parameters of a multi-message broadcast run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiBroadcastConfig {
    /// Per-slot transmission probability for informed nodes.
    pub p_send: f64,
    /// Uniform transmission power.
    pub power: f64,
    /// Give up after this many slots.
    pub max_slots: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MultiBroadcastConfig {
    fn default() -> Self {
        MultiBroadcastConfig {
            p_send: 0.15,
            power: 1.0,
            max_slots: 100_000,
            seed: 1,
        }
    }
}

/// Outcome of a multi-message broadcast run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiBroadcastReport {
    /// Whether every node learned every message within the cap.
    pub completed: bool,
    /// Slots used.
    pub slots: usize,
    /// Messages known per node at the end.
    pub known_counts: Vec<usize>,
    /// Number of messages in play.
    pub messages: usize,
}

impl MultiBroadcastReport {
    /// Fraction of (node, message) pairs delivered.
    pub fn coverage(&self) -> f64 {
        if self.messages == 0 || self.known_counts.is_empty() {
            return 1.0;
        }
        let total: usize = self.known_counts.iter().sum();
        total as f64 / (self.messages * self.known_counts.len()) as f64
    }
}

struct Gossip {
    known: u64,
    p_send: f64,
    power: f64,
}

impl Gossip {
    fn known_count(&self) -> usize {
        self.known.count_ones() as usize
    }
}

impl NodeBehavior for Gossip {
    fn on_slot(&mut self, ctx: &mut SlotContext<'_>) -> Action {
        if self.known == 0 || ctx.rng.gen_range(0.0..1.0) >= self.p_send {
            return Action::Listen;
        }
        // Pick a uniformly random known message.
        let count = self.known.count_ones();
        let pick = ctx.rng.gen_range(0..count);
        let mut seen = 0;
        for bit in 0..64 {
            if self.known & (1 << bit) != 0 {
                if seen == pick {
                    return Action::Transmit {
                        power: self.power,
                        message: bit,
                    };
                }
                seen += 1;
            }
        }
        unreachable!("count_ones and the scan agree");
    }

    fn on_receive(&mut self, _from: NodeId, message: u64, _power: f64) {
        self.known |= 1 << message;
    }
}

/// Runs multi-message gossip: message `i` starts at `sources[i]`.
///
/// # Panics
///
/// Panics if `sources` is empty or longer than [`MAX_MESSAGES`], if a
/// source is out of range, or on degenerate configs.
pub fn run_multi_broadcast(
    space: &DecaySpace,
    params: &SinrParams,
    sources: &[NodeId],
    config: &MultiBroadcastConfig,
) -> MultiBroadcastReport {
    run_multi_broadcast_with_faults(space, params, sources, config, &FaultPlan::none())
}

/// [`run_multi_broadcast`] under a crash-fault plan: down nodes neither
/// gossip nor learn. Completion requires every node still alive at the
/// slot cap (i.e. not scheduled down at `max_slots`) to know every
/// message; a permanently crashed *source* that never spoke makes
/// completion impossible, which the report shows as `completed = false`.
///
/// # Panics
///
/// Same conditions as [`run_multi_broadcast`].
pub fn run_multi_broadcast_with_faults(
    space: &DecaySpace,
    params: &SinrParams,
    sources: &[NodeId],
    config: &MultiBroadcastConfig,
    faults: &FaultPlan,
) -> MultiBroadcastReport {
    assert!(
        !sources.is_empty() && sources.len() <= MAX_MESSAGES,
        "need between 1 and {MAX_MESSAGES} sources"
    );
    for s in sources {
        assert!(s.index() < space.len(), "source {s} out of range");
    }
    assert!(
        config.p_send > 0.0 && config.p_send <= 1.0,
        "p_send must be in (0, 1]"
    );
    assert!(config.power > 0.0, "power must be positive");
    assert!(config.max_slots > 0, "need at least one slot");
    let n = space.len();
    let k = sources.len();
    let full: u64 = if k == 64 { u64::MAX } else { (1 << k) - 1 };
    let behaviors: Vec<Gossip> = (0..n)
        .map(|i| {
            let mut known = 0u64;
            for (msg, s) in sources.iter().enumerate() {
                if s.index() == i {
                    known |= 1 << msg;
                }
            }
            Gossip {
                known,
                p_send: config.p_send,
                power: config.power,
            }
        })
        .collect();
    let mut sim = Simulator::new(space.clone(), behaviors, *params, config.seed)
        .expect("behavior count matches node count");
    sim.set_fault_plan(faults.clone());
    let alive: Vec<bool> = (0..n)
        .map(|i| !faults.is_down(NodeId::new(i), config.max_slots))
        .collect();
    let (slots, completed) = sim.run_until(config.max_slots, |_, sim| {
        (0..n).all(|i| !alive[i] || sim.behavior(NodeId::new(i)).known == full)
    });
    MultiBroadcastReport {
        completed,
        slots,
        known_counts: (0..n)
            .map(|i| sim.behavior(NodeId::new(i)).known_count())
            .collect(),
        messages: k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> DecaySpace {
        DecaySpace::from_fn(n, |i, j| ((i as f64) - (j as f64)).abs().powi(2)).unwrap()
    }

    #[test]
    fn single_message_broadcast_completes() {
        let s = line(10);
        let report = run_multi_broadcast(
            &s,
            &SinrParams::default(),
            &[NodeId::new(0)],
            &MultiBroadcastConfig::default(),
        );
        assert!(report.completed, "stuck at coverage {}", report.coverage());
        assert!(report.known_counts.iter().all(|&c| c == 1));
        assert!((report.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_message_from_opposite_ends_completes() {
        let s = line(8);
        let report = run_multi_broadcast(
            &s,
            &SinrParams::default(),
            &[NodeId::new(0), NodeId::new(7), NodeId::new(3)],
            &MultiBroadcastConfig::default(),
        );
        assert!(report.completed);
        assert_eq!(report.messages, 3);
        assert!(report.known_counts.iter().all(|&c| c == 3));
    }

    #[test]
    fn noise_limits_range_and_gossip_relays_through() {
        // With noise 0.01, a single transmitter reaches decay < 100, i.e.
        // distance < 10 on the line: node 0 cannot reach node 12 directly,
        // only via relays.
        let s = line(13);
        let params = SinrParams::new(1.0, 0.01).unwrap();
        let report = run_multi_broadcast(
            &s,
            &params,
            &[NodeId::new(0)],
            &MultiBroadcastConfig::default(),
        );
        assert!(report.completed, "multihop relay failed");
    }

    #[test]
    fn coverage_is_partial_when_capped_early() {
        let s = line(20);
        let params = SinrParams::new(1.0, 0.01).unwrap();
        let report = run_multi_broadcast(
            &s,
            &params,
            &[NodeId::new(0)],
            &MultiBroadcastConfig {
                max_slots: 2,
                ..Default::default()
            },
        );
        assert!(!report.completed);
        assert!(report.coverage() < 1.0);
        assert!(report.coverage() > 0.0, "sources always know their message");
    }

    #[test]
    fn deterministic_in_seed() {
        let s = line(7);
        let cfg = MultiBroadcastConfig::default();
        let a = run_multi_broadcast(&s, &SinrParams::default(), &[NodeId::new(2)], &cfg);
        let b = run_multi_broadcast(&s, &SinrParams::default(), &[NodeId::new(2)], &cfg);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_is_rejected() {
        let s = line(3);
        run_multi_broadcast(
            &s,
            &SinrParams::default(),
            &[NodeId::new(9)],
            &MultiBroadcastConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "need between 1 and")]
    fn empty_sources_are_rejected() {
        let s = line(3);
        run_multi_broadcast(
            &s,
            &SinrParams::default(),
            &[],
            &MultiBroadcastConfig::default(),
        );
    }
}
