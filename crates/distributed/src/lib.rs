//! # decay-distributed
//!
//! Distributed protocols over decay spaces, demonstrating the paper's
//! Section 3 program: once the fading parameter `γ` (and, for capacity,
//! amicability) of a decay space is bounded, the standard randomized
//! distributed algorithms run unchanged — only their round complexity
//! scales with the space's parameters instead of with geometric constants.
//!
//! * [`regret_capacity_game`] — distributed capacity by multiplicative-
//!   weights regret minimization (\[14], \[1]).
//! * [`adversarial_regret_game`] — the same game under jamming (\[11]) and
//!   changing spectrum availability / sleeping experts (\[12]).
//! * [`run_local_broadcast`] — randomized local broadcast with fixed
//!   transmit probability (the annulus-argument family [22, 69]).
//! * [`run_multi_broadcast`] — global and multiple-message broadcast
//!   (\[13], \[65, 66]).
//! * [`run_contention`] — distributed contention resolution (\[45, 28]).
//! * [`run_coloring`] — distributed coloring in the physical model (\[67]).
//! * [`run_queueing`] — dynamic packet scheduling / queue stability
//!   (\[44], \[2, 3] in the paper's transfer list).
//! * [`run_dominating_set`] — distributed dominating set (\[55]).
//! * [`run_local_broadcast_event`] / [`run_contention_event`] — the
//!   broadcast and contention protocols ported natively to the
//!   event-driven `decay_engine`, scaling to 100k+ nodes on lazy decay
//!   backends with churn, latency, jamming and checkpointing.
//!
//! All are deterministic in their seeds and run on
//! [`decay_netsim::Simulator`], [`decay_engine::Engine`], or directly on
//! affectance matrices.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adversarial;
mod broadcast;
mod coloring;
mod contention;
mod dominating;
mod event_broadcast;
mod event_contention;
mod multimsg;
mod queueing;
mod regret;

pub use adversarial::{
    adversarial_regret_game, AdversarialConfig, AdversarialOutcome, AvailabilityModel, JammingModel,
};
pub use broadcast::{neighborhood_sizes, run_local_broadcast, BroadcastConfig, BroadcastReport};
pub use coloring::{
    is_proper_coloring, mutual_neighbor_graph, run_coloring, ColoringConfig, ColoringReport,
};
pub use contention::{run_contention, ContentionConfig, ContentionReport, ContentionStrategy};
pub use dominating::{
    greedy_dominating_set, run_dominating_set, DominatingConfig, DominatingReport,
};
pub use event_broadcast::{
    build_broadcast_engine, jam_schedule_from_model, run_local_broadcast_event,
    EventBroadcastConfig, EventBroadcastReport, EventBroadcaster,
};
pub use event_contention::{
    build_contention_engine, run_contention_event, ContentionNode, EventContentionConfig,
    EventContentionReport,
};
pub use multimsg::{
    run_multi_broadcast, run_multi_broadcast_with_faults, MultiBroadcastConfig,
    MultiBroadcastReport, MAX_MESSAGES,
};
pub use queueing::{run_queueing, QueueingConfig, QueueingReport, Scheduler};
pub use regret::{regret_capacity_game, RegretConfig, RegretOutcome};
