//! Event-driven local broadcast: the [`crate::run_local_broadcast`]
//! protocol ported natively to `decay-engine`.
//!
//! The protocol is unchanged — every node owns one message and transmits
//! with per-slot probability `p` until its whole decay-`F` neighborhood
//! has heard it — but the *execution* is event-driven: instead of waking
//! every node every slot to flip a `p`-coin, each node schedules its next
//! transmission tick directly from the geometric distribution
//! `Geom(p)` and sleeps in listening mode in between. A tick costs
//! `O(transmitters · k)` work rather than `O(n)`, which is what makes
//! 100k+-node broadcast runs practical — with churn, jamming, latency
//! and checkpointing available for free from the engine.

use std::collections::BTreeSet;

use decay_core::NodeId;
use decay_engine::{
    ChurnConfig, Codec, CodecError, DecayBackend, Engine, EngineConfig, EngineError, EngineStats,
    EventBehavior, JamSchedule, LatencyModel, NodeCtx, Tick,
};
use decay_netsim::ReceptionModel;
use decay_sinr::SinrParams;
use serde::{Deserialize, Serialize};

use crate::adversarial::JammingModel;

/// Maps the adversarial jammer models onto the engine's jam schedule, so
/// jamming experiments port directly from the regret game to the engine.
pub fn jam_schedule_from_model(model: JammingModel) -> JamSchedule {
    match model {
        JammingModel::None => JamSchedule::None,
        JammingModel::Periodic { period } => JamSchedule::Periodic {
            period: period as Tick,
        },
        // The engine jammer blankets whole ticks; per-link targeting
        // collapses onto the round probability.
        JammingModel::Random { round_prob, .. } => JamSchedule::Random { prob: round_prob },
    }
}

/// Parameters of an event-driven local broadcast run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventBroadcastConfig {
    /// Neighborhood radius in decay: node `z` must hear node `u` whenever
    /// `f(u, z) ≤ F`.
    pub neighborhood_decay: f64,
    /// Transmit probability per tick; `None` selects `0.5 / Δ`.
    pub probability: Option<f64>,
    /// Transmission power (uniform).
    pub power: f64,
    /// Tick budget before giving up.
    pub max_ticks: Tick,
    /// How often the driver pauses the engine to measure coverage
    /// (completion is detected at this granularity).
    pub check_interval: Tick,
    /// Reception model.
    pub reception: ReceptionModel,
    /// Decay beyond which signals are ignored (see
    /// [`EngineConfig::reach_decay`]); `None` is exact but `O(n)` per
    /// transmission.
    pub reach_decay: Option<f64>,
    /// Top-k affectance pruning (see [`EngineConfig::top_k`]).
    pub top_k: Option<usize>,
    /// Node churn, if any.
    pub churn: Option<ChurnConfig>,
    /// Jamming, in the adversarial module's vocabulary.
    pub jamming: JammingModel,
    /// Delivery latency model.
    pub latency: LatencyModel,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EventBroadcastConfig {
    fn default() -> Self {
        EventBroadcastConfig {
            neighborhood_decay: 16.0,
            probability: None,
            power: 1.0,
            max_ticks: 50_000,
            check_interval: 64,
            reception: ReceptionModel::Threshold,
            reach_decay: None,
            top_k: None,
            churn: None,
            jamming: JammingModel::None,
            latency: LatencyModel::Immediate,
            seed: 1,
        }
    }
}

/// Outcome of an event-driven local broadcast run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventBroadcastReport {
    /// Tick (at check granularity) by which every required pair was
    /// delivered; `None` when the budget ran out first.
    pub completed_at: Option<Tick>,
    /// Fraction of required (sender, neighbor) pairs delivered.
    pub coverage: f64,
    /// Number of required pairs.
    pub required_pairs: usize,
    /// The transmit probability used.
    pub probability: f64,
    /// The maximum neighborhood size Δ.
    pub max_neighborhood: usize,
    /// Engine counters at the end of the run.
    pub stats: EngineStats,
    /// The engine's rolling delivery-trace hash (equal hashes = equal
    /// delivery traces; the determinism acceptance check).
    pub trace_hash: u64,
}

/// The event-driven broadcaster behavior.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventBroadcaster {
    p: f64,
    power: f64,
    /// Messages (sender indices) heard so far.
    heard: BTreeSet<u64>,
}

impl EventBroadcaster {
    /// A broadcaster transmitting with per-tick probability `p`.
    pub fn new(p: f64, power: f64) -> Self {
        EventBroadcaster {
            p,
            power,
            heard: BTreeSet::new(),
        }
    }

    /// Whether this node has heard `sender`'s message.
    pub fn has_heard(&self, sender: NodeId) -> bool {
        self.heard.contains(&(sender.index() as u64))
    }

    /// Next transmission gap drawn from `Geom(p)` (support `1, 2, ...`).
    fn next_gap(&self, ctx: &mut NodeCtx<'_>) -> Tick {
        decay_engine::geometric_gap(ctx.rng, self.p)
    }
}

impl EventBehavior for EventBroadcaster {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.listen();
        let gap = self.next_gap(ctx);
        ctx.wake_in(gap);
    }

    fn on_wake(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.transmit(self.power, ctx.node.index() as u64);
        ctx.listen();
        let gap = self.next_gap(ctx);
        ctx.wake_in(gap);
    }

    fn on_receive(&mut self, _ctx: &mut NodeCtx<'_>, _from: NodeId, message: u64, _power: f64) {
        self.heard.insert(message);
    }
}

/// The probe-API re-tune hook: a controller directive replaces the
/// per-tick transmit probability. Already-scheduled wake-ups keep their
/// tick; the new probability governs every gap drawn afterwards.
impl decay_engine::probe::Tunable for EventBroadcaster {
    fn set_probability(&mut self, p: f64) {
        assert!(
            p.is_finite() && p > 0.0 && p <= 1.0,
            "broadcast probability must be in (0, 1]"
        );
        self.p = p;
    }
}

impl Codec for EventBroadcaster {
    fn encode(&self, out: &mut Vec<u8>) {
        self.p.encode(out);
        self.power.encode(out);
        self.heard.iter().copied().collect::<Vec<u64>>().encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let p = f64::decode(input)?;
        let power = f64::decode(input)?;
        let heard = Vec::<u64>::decode(input)?.into_iter().collect();
        Ok(EventBroadcaster { p, power, heard })
    }
}

/// Builds the broadcast engine without driving it — for callers that
/// want to checkpoint/resume or interleave their own instrumentation.
///
/// Returns the engine plus the required-pair lists (`required[u]` holds
/// the nodes that must hear `u`).
///
/// # Errors
///
/// Returns an error for degenerate configs (see [`EngineError`]).
pub fn build_broadcast_engine<Bk: DecayBackend + 'static>(
    backend: Bk,
    params: &SinrParams,
    config: &EventBroadcastConfig,
) -> Result<(Engine<EventBroadcaster>, Vec<Vec<NodeId>>), EngineError> {
    let radius_ok = config.neighborhood_decay.is_finite() && config.neighborhood_decay > 0.0;
    if !radius_ok {
        return Err(EngineError::InvalidConfig {
            reason: "neighborhood radius must be positive".to_string(),
        });
    }
    let power_ok = config.power.is_finite() && config.power > 0.0;
    if !power_ok {
        return Err(EngineError::InvalidConfig {
            reason: "power must be positive".to_string(),
        });
    }
    if let Some(reach) = config.reach_decay {
        // A reach cutoff below the neighborhood radius would make some
        // required pairs physically undeliverable: the run could never
        // complete, indistinguishable from a slow one.
        if reach < config.neighborhood_decay {
            return Err(EngineError::InvalidConfig {
                reason: "reach_decay must be at least neighborhood_decay".to_string(),
            });
        }
    }
    let n = backend.len();
    // Who must hear whom (the in-range out-neighbors of each node).
    let required: Vec<Vec<NodeId>> = (0..n)
        .map(|u| backend.potential_receivers(NodeId::new(u), Some(config.neighborhood_decay)))
        .collect();
    let delta = required.iter().map(Vec::len).max().unwrap_or(0);
    let p = match config.probability {
        Some(p) => {
            if !(p > 0.0 && p < 1.0) {
                return Err(EngineError::InvalidConfig {
                    reason: "probability must be in (0, 1)".to_string(),
                });
            }
            p
        }
        None => (0.5 / delta.max(1) as f64).min(0.5),
    };
    let behaviors = (0..n)
        .map(|_| EventBroadcaster::new(p, config.power))
        .collect();
    let engine_config = EngineConfig {
        reach_decay: config.reach_decay,
        top_k: config.top_k,
        reception: config.reception,
        latency: config.latency,
        churn: config.churn,
        jamming: jam_schedule_from_model(config.jamming),
        ..EngineConfig::default()
    };
    let engine = Engine::new(backend, behaviors, *params, engine_config, config.seed)?;
    Ok((engine, required))
}

/// Counts delivered required pairs by inspecting node state.
fn covered_pairs(engine: &Engine<EventBroadcaster>, required: &[Vec<NodeId>]) -> usize {
    required
        .iter()
        .enumerate()
        .map(|(u, receivers)| {
            receivers
                .iter()
                .filter(|&&z| engine.behavior(z).has_heard(NodeId::new(u)))
                .count()
        })
        .sum()
}

/// Runs event-driven local broadcast to completion or budget exhaustion.
///
/// # Panics
///
/// Panics on degenerate configs (mirroring
/// [`crate::run_local_broadcast`]'s contract).
pub fn run_local_broadcast_event<Bk: DecayBackend + 'static>(
    backend: Bk,
    params: &SinrParams,
    config: &EventBroadcastConfig,
) -> EventBroadcastReport {
    assert!(config.max_ticks > 0, "tick budget must be positive");
    assert!(config.check_interval > 0, "check interval must be positive");
    let (mut engine, required) =
        build_broadcast_engine(backend, params, config).expect("valid broadcast config");
    let required_pairs: usize = required.iter().map(Vec::len).sum();
    let probability = engine.behavior(NodeId::new(0)).p;
    let max_neighborhood = required.iter().map(Vec::len).max().unwrap_or(0);
    // The generic probed driver supplies the pause grid; this protocol
    // only contributes its completion predicate (coverage of every
    // required pair).
    let completed_at = decay_engine::drive_until(
        &mut engine,
        config.max_ticks,
        config.check_interval,
        &mut [],
        |e| covered_pairs(e, &required) == required_pairs,
    );
    let covered = covered_pairs(&engine, &required);
    EventBroadcastReport {
        completed_at,
        coverage: if required_pairs == 0 {
            1.0
        } else {
            covered as f64 / required_pairs as f64
        },
        required_pairs,
        probability,
        max_neighborhood,
        stats: engine.stats(),
        trace_hash: engine.trace_hash(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decay_core::DecaySpace;
    use decay_engine::{DenseBackend, LazyBackend};

    fn line_space(n: usize, alpha: f64) -> DecaySpace {
        DecaySpace::from_fn(n, |i, j| ((i as f64) - (j as f64)).abs().powf(alpha)).unwrap()
    }

    fn line_backend(n: usize, alpha: f64) -> LazyBackend {
        let last = n - 1;
        LazyBackend::from_fn(n, move |i, j| ((i as f64) - (j as f64)).abs().powf(alpha))
            .with_neighbor_hint(move |i, reach| {
                let w = reach.powf(1.0 / alpha).ceil() as usize;
                (i.saturating_sub(w)..=(i + w).min(last)).collect()
            })
    }

    #[test]
    fn event_broadcast_completes_on_small_line() {
        let report = run_local_broadcast_event(
            DenseBackend::new(line_space(8, 3.0)),
            &SinrParams::default(),
            &EventBroadcastConfig {
                neighborhood_decay: 8.0,
                ..Default::default()
            },
        );
        assert_eq!(report.coverage, 1.0);
        assert!(report.completed_at.is_some());
        assert!(report.required_pairs > 0);
        assert!(report.stats.transmissions > 0);
    }

    #[test]
    fn lazy_backend_matches_coverage_semantics() {
        let report = run_local_broadcast_event(
            line_backend(64, 2.0),
            &SinrParams::default(),
            &EventBroadcastConfig {
                neighborhood_decay: 4.0,
                reach_decay: Some(100.0),
                top_k: Some(8),
                ..Default::default()
            },
        );
        assert_eq!(report.coverage, 1.0, "report: {report:?}");
    }

    #[test]
    fn deterministic_in_seed() {
        let run = |seed| {
            run_local_broadcast_event(
                line_backend(32, 2.0),
                &SinrParams::default(),
                &EventBroadcastConfig {
                    neighborhood_decay: 4.0,
                    reach_decay: Some(64.0),
                    seed,
                    ..Default::default()
                },
            )
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3).trace_hash, run(4).trace_hash);
    }

    #[test]
    fn churn_slows_but_does_not_wedge_broadcast() {
        let base = EventBroadcastConfig {
            neighborhood_decay: 8.0,
            max_ticks: 20_000,
            seed: 5,
            ..Default::default()
        };
        let clean = run_local_broadcast_event(
            DenseBackend::new(line_space(10, 3.0)),
            &SinrParams::default(),
            &base,
        );
        let churned = run_local_broadcast_event(
            DenseBackend::new(line_space(10, 3.0)),
            &SinrParams::default(),
            &EventBroadcastConfig {
                churn: Some(ChurnConfig {
                    interval: 8,
                    leave_prob: 0.3,
                    join_prob: 0.9,
                }),
                ..base
            },
        );
        let c = clean.completed_at.expect("clean run completes");
        assert!(churned.stats.churn_leaves > 0, "churn never fired");
        // Under rejoin-heavy churn the run still finishes, just later (or
        // in the worst case exhausts a much larger budget with high
        // coverage).
        match churned.completed_at {
            Some(t) => assert!(t >= c / 2),
            None => assert!(churned.coverage > 0.5, "coverage {}", churned.coverage),
        }
    }

    #[test]
    fn periodic_jamming_maps_and_blanks_ticks() {
        let report = run_local_broadcast_event(
            DenseBackend::new(line_space(8, 3.0)),
            &SinrParams::default(),
            &EventBroadcastConfig {
                neighborhood_decay: 8.0,
                jamming: JammingModel::Periodic { period: 2 },
                seed: 9,
                ..Default::default()
            },
        );
        assert!(report.stats.jammed_ticks > 0);
        // Half the ticks are jammed; broadcast still completes.
        assert!(report.completed_at.is_some());
        assert!(matches!(
            jam_schedule_from_model(JammingModel::Random {
                round_prob: 0.25,
                link_prob: 0.5
            }),
            JamSchedule::Random { prob } if prob == 0.25
        ));
    }

    #[test]
    fn latency_delays_but_preserves_delivery() {
        let report = run_local_broadcast_event(
            DenseBackend::new(line_space(8, 3.0)),
            &SinrParams::default(),
            &EventBroadcastConfig {
                neighborhood_decay: 8.0,
                latency: LatencyModel::Jittered { base: 1, jitter: 3 },
                seed: 2,
                ..Default::default()
            },
        );
        assert_eq!(report.coverage, 1.0);
    }

    #[test]
    fn reach_below_neighborhood_is_rejected() {
        // Such a config could never complete (pairs past the reach are
        // undeliverable), so it must fail loudly, not time out quietly.
        let err = build_broadcast_engine(
            DenseBackend::new(line_space(8, 2.0)),
            &SinrParams::default(),
            &EventBroadcastConfig {
                neighborhood_decay: 16.0,
                reach_decay: Some(4.0),
                ..Default::default()
            },
        )
        .map(|(engine, required)| (engine.len(), required.len()))
        .expect_err("reach below neighborhood must be rejected");
        assert!(err.to_string().contains("reach_decay"));
    }
}
