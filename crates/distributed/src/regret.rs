//! Distributed capacity via regret minimization ([14], [1]; extended in
//! [11, 19, 12] — the family whose guarantees Theorem 4 improves to
//! `ζ^{O(1)}` in bounded-growth decay spaces).
//!
//! Each link runs multiplicative weights over two actions, *transmit* and
//! *idle*. A round samples every link's action; transmitting links
//! succeed when their in-affectance from the other transmitters stays at
//! most 1 (exactly `SINR ≥ β`). The transmit payoff is `+1` on success
//! and `−λ` on failure; idling pays 0. Since a link can evaluate its
//! counterfactual success from the observed interference, full-information
//! updates are honest here.
//!
//! The per-round success sets are feasible by construction, so the game
//! yields an anytime distributed capacity algorithm; its long-run average
//! tracks a constant fraction of the amicable core (Definition 4.2).

use decay_sinr::{AffectanceMatrix, LinkId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the regret game.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegretConfig {
    /// Number of rounds to play.
    pub rounds: usize,
    /// Multiplicative-weights learning rate `η`.
    pub learning_rate: f64,
    /// Penalty `λ` for a failed transmission.
    pub failure_penalty: f64,
    /// Exploration floor: transmit probabilities are clipped to
    /// `[floor, 1 − floor]`.
    pub probability_floor: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RegretConfig {
    fn default() -> Self {
        RegretConfig {
            rounds: 2000,
            learning_rate: 0.1,
            failure_penalty: 1.5,
            probability_floor: 0.01,
            seed: 1,
        }
    }
}

/// Outcome of a regret-game run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegretOutcome {
    /// The largest feasible success set observed in any round.
    pub best_feasible: Vec<LinkId>,
    /// Per-round count of successful links.
    pub success_history: Vec<usize>,
    /// Mean successes over the last quarter of the run (the "converged"
    /// throughput).
    pub converged_throughput: f64,
    /// Final transmit probabilities per link.
    pub final_probabilities: Vec<f64>,
}

/// Plays the regret-minimization capacity game over the given links.
///
/// # Panics
///
/// Panics on degenerate configs (zero rounds, non-positive learning rate,
/// floor outside `(0, 1/2)`).
pub fn regret_capacity_game(aff: &AffectanceMatrix, config: &RegretConfig) -> RegretOutcome {
    assert!(config.rounds > 0, "need at least one round");
    assert!(config.learning_rate > 0.0, "learning rate must be positive");
    assert!(
        config.probability_floor > 0.0 && config.probability_floor < 0.5,
        "probability floor must be in (0, 1/2)"
    );
    let m = aff.len();
    let ids: Vec<LinkId> = (0..m).map(LinkId::new).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Cumulative transmit payoff per link (idle payoff is identically 0).
    let mut score = vec![0.0_f64; m];
    let mut best_feasible: Vec<LinkId> = Vec::new();
    let mut history = Vec::with_capacity(config.rounds);

    let prob = |score: f64, cfg: &RegretConfig| -> f64 {
        // MW over {transmit, idle}: p = e^{ηS} / (e^{ηS} + 1), clipped.
        let x = (cfg.learning_rate * score).clamp(-30.0, 30.0).exp();
        (x / (x + 1.0)).clamp(cfg.probability_floor, 1.0 - cfg.probability_floor)
    };

    for _ in 0..config.rounds {
        // Sample actions.
        let transmitting: Vec<LinkId> = ids
            .iter()
            .copied()
            .filter(|&v| {
                aff.noise_factor(v).is_finite()
                    && rng.gen_range(0.0..1.0) < prob(score[v.index()], config)
            })
            .collect();
        // Counterfactual payoff for every link: would transmitting have
        // succeeded against the *other* transmitters?
        let mut successes: Vec<LinkId> = Vec::new();
        for &v in &ids {
            if !aff.noise_factor(v).is_finite() {
                continue;
            }
            let others: Vec<LinkId> = transmitting.iter().copied().filter(|&w| w != v).collect();
            let ok = aff.in_affectance_raw(&others, v) <= 1.0 + 1e-12;
            let payoff = if ok { 1.0 } else { -config.failure_penalty };
            score[v.index()] += payoff;
            if ok && transmitting.contains(&v) {
                successes.push(v);
            }
        }
        history.push(successes.len());
        if successes.len() > best_feasible.len() {
            best_feasible = successes;
        }
    }
    let tail = config.rounds - config.rounds / 4;
    let converged =
        history[tail..].iter().sum::<usize>() as f64 / (config.rounds - tail).max(1) as f64;
    RegretOutcome {
        best_feasible,
        success_history: history,
        converged_throughput: converged,
        final_probabilities: (0..m).map(|i| prob(score[i], config)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decay_core::{DecaySpace, NodeId};
    use decay_sinr::{Link, LinkSet, PowerAssignment, SinrParams};

    fn parallel(m: usize, gap: f64) -> AffectanceMatrix {
        let mut pos = Vec::new();
        for i in 0..m {
            pos.push(i as f64 * gap);
            pos.push(i as f64 * gap + 1.0);
        }
        let s = DecaySpace::from_fn(pos.len(), |i, j| (pos[i] - pos[j]).abs().powi(2)).unwrap();
        let links: Vec<Link> = (0..m)
            .map(|i| Link::new(NodeId::new(2 * i), NodeId::new(2 * i + 1)))
            .collect();
        let ls = LinkSet::new(&s, links).unwrap();
        let powers = PowerAssignment::unit().powers(&s, &ls).unwrap();
        AffectanceMatrix::build(&s, &ls, &powers, &SinrParams::default()).unwrap()
    }

    #[test]
    fn sparse_instance_converges_to_everyone_on() {
        let aff = parallel(6, 40.0);
        let out = regret_capacity_game(&aff, &RegretConfig::default());
        assert_eq!(out.best_feasible.len(), 6);
        assert!(
            out.converged_throughput > 5.0,
            "throughput = {}",
            out.converged_throughput
        );
        for p in &out.final_probabilities {
            assert!(*p > 0.9, "probability {p} should saturate");
        }
    }

    #[test]
    fn crowded_instance_learns_restraint() {
        // Adjacent links at the SINR boundary: everyone transmitting
        // yields zero throughput, the game must learn to alternate.
        let aff = parallel(8, 1.8);
        let out = regret_capacity_game(&aff, &RegretConfig::default());
        assert!(!out.best_feasible.is_empty());
        assert!(aff.is_feasible(&out.best_feasible));
        assert!(
            out.converged_throughput >= 1.0,
            "throughput = {}",
            out.converged_throughput
        );
    }

    #[test]
    fn best_feasible_is_always_feasible() {
        for gap in [1.5, 2.5, 5.0] {
            let aff = parallel(7, gap);
            let out = regret_capacity_game(
                &aff,
                &RegretConfig {
                    rounds: 600,
                    ..Default::default()
                },
            );
            assert!(aff.is_feasible(&out.best_feasible), "gap {gap}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let aff = parallel(5, 3.0);
        let cfg = RegretConfig {
            rounds: 300,
            ..Default::default()
        };
        let a = regret_capacity_game(&aff, &cfg);
        let b = regret_capacity_game(&aff, &cfg);
        assert_eq!(a.success_history, b.success_history);
        let c = regret_capacity_game(&aff, &RegretConfig { seed: 99, ..cfg });
        assert_ne!(a.success_history, c.success_history);
    }

    #[test]
    fn history_length_matches_rounds() {
        let aff = parallel(4, 10.0);
        let out = regret_capacity_game(
            &aff,
            &RegretConfig {
                rounds: 123,
                ..Default::default()
            },
        );
        assert_eq!(out.success_history.len(), 123);
    }
}
