//! Distributed (Δ+1)-coloring in the physical model ([67], one of the
//! annulus-argument protocols of the paper's Section 3.3).
//!
//! Nodes must end up with colors such that no two *neighbors* — nodes
//! within mutual decay `f_max` of each other — share a color, using only
//! physical-layer message passing over the decay space. The protocol is
//! the classic announce-and-yield scheme:
//!
//! 1. An uncolored node, with probability `p_send`, claims the smallest
//!    color it has not heard a neighbor claim and announces it; otherwise
//!    it listens.
//! 2. A colored node keeps announcing its color with probability `p_send`
//!    so late neighbors learn of it.
//! 3. On hearing a *neighbor* (inferred from received power) announce its
//!    own color, the node with the larger id yields: it drops its color
//!    and rejoins the uncolored pool.
//!
//! Once the coloring is proper no node ever yields again, so properness is
//! also stability. The analysis of [67] bounds the rounds via exactly the
//! annulus argument that Theorem 2 transfers: the protocol is oblivious to
//! the space and only its round count depends on the fading parameter `γ`.
//! Experiment E27 measures rounds and colors against `Δ + 1`.

use decay_core::{DecaySpace, NodeId};
use decay_netsim::{Action, NodeBehavior, Simulator, SlotContext};
use decay_sinr::SinrParams;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of a distributed coloring run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColoringConfig {
    /// Two nodes are neighbors iff both directed decays are at most this.
    pub f_max: f64,
    /// Per-slot announcement probability.
    pub p_send: f64,
    /// Uniform transmission power.
    pub power: f64,
    /// Give up after this many slots.
    pub max_slots: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ColoringConfig {
    fn default() -> Self {
        ColoringConfig {
            f_max: 100.0,
            p_send: 0.2,
            power: 1.0,
            max_slots: 50_000,
            seed: 1,
        }
    }
}

/// Outcome of a coloring run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColoringReport {
    /// Whether a proper coloring was reached within the slot cap.
    pub completed: bool,
    /// Slots used.
    pub slots: usize,
    /// Final color per node (`None` = still uncolored).
    pub colors: Vec<Option<usize>>,
    /// Number of distinct colors in use at the end.
    pub colors_used: usize,
    /// Maximum neighborhood size Δ of the neighbor graph.
    pub max_degree: usize,
}

/// The mutual-range neighbor graph: `u ~ v` iff
/// `max(f(u,v), f(v,u)) <= f_max`. Mutual range guarantees each side can
/// eventually hear the other, which the yield rule needs to terminate.
pub fn mutual_neighbor_graph(space: &DecaySpace, f_max: f64) -> Vec<Vec<usize>> {
    let n = space.len();
    let mut adj = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if space.pair_max(NodeId::new(i), NodeId::new(j)) <= f_max {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    adj
}

/// Whether `colors` properly colors the graph (all nodes colored, no
/// monochromatic edge).
pub fn is_proper_coloring(adj: &[Vec<usize>], colors: &[Option<usize>]) -> bool {
    colors.iter().all(Option::is_some)
        && adj
            .iter()
            .enumerate()
            .all(|(u, nbrs)| nbrs.iter().all(|&v| colors[u] != colors[v]))
}

struct ColoringNode {
    /// This node's own id (the yield rule compares ids).
    rank: usize,
    color: Option<usize>,
    /// Colors heard from neighbors (grow-only; a stale entry only wastes a
    /// color, never breaks properness).
    taken: Vec<bool>,
    p_send: f64,
    power: f64,
    f_max: f64,
}

impl ColoringNode {
    fn smallest_free(&self) -> usize {
        self.taken
            .iter()
            .position(|&t| !t)
            .unwrap_or(self.taken.len())
    }

    fn mark_taken(&mut self, color: usize) {
        if color >= self.taken.len() {
            self.taken.resize(color + 1, false);
        }
        self.taken[color] = true;
    }
}

impl NodeBehavior for ColoringNode {
    fn on_slot(&mut self, ctx: &mut SlotContext<'_>) -> Action {
        if ctx.rng.gen_range(0.0..1.0) >= self.p_send {
            return Action::Listen;
        }
        if self.color.is_none() {
            self.color = Some(self.smallest_free());
        }
        Action::Transmit {
            power: self.power,
            message: self.color.expect("just set") as u64,
        }
    }

    fn on_receive(&mut self, from: NodeId, message: u64, power: f64) {
        // Uniform power lets the receiver infer the decay from the RSSI;
        // announcements from beyond f_max concern other neighborhoods.
        let decay = self.power / power;
        if decay > self.f_max * (1.0 + 1e-9) {
            return;
        }
        let their_color = message as usize;
        self.mark_taken(their_color);
        // Yield rule: on a conflict, the larger id gives way.
        if self.color == Some(their_color) && from.index() < self.rank {
            self.color = None;
        }
    }
}

/// Runs the distributed coloring protocol.
///
/// # Panics
///
/// Panics on degenerate configs (non-positive `f_max`/`power`, `p_send`
/// outside `(0, 1]`, zero `max_slots`).
pub fn run_coloring(
    space: &DecaySpace,
    params: &SinrParams,
    config: &ColoringConfig,
) -> ColoringReport {
    assert!(config.f_max > 0.0, "f_max must be positive");
    assert!(
        config.p_send > 0.0 && config.p_send <= 1.0,
        "p_send must be in (0, 1]"
    );
    assert!(config.power > 0.0, "power must be positive");
    assert!(config.max_slots > 0, "need at least one slot");
    let n = space.len();
    let adj = mutual_neighbor_graph(space, config.f_max);
    let max_degree = adj.iter().map(Vec::len).max().unwrap_or(0);
    let behaviors: Vec<ColoringNode> = (0..n)
        .map(|i| ColoringNode {
            color: None,
            taken: Vec::new(),
            p_send: config.p_send,
            power: config.power,
            f_max: config.f_max,
            rank: i,
        })
        .collect();
    let mut sim = Simulator::new(space.clone(), behaviors, *params, config.seed)
        .expect("behavior count matches node count");
    let adj_check = adj.clone();
    let (slots, completed) = sim.run_until(config.max_slots, |_, sim| {
        let colors: Vec<Option<usize>> =
            (0..n).map(|i| sim.behavior(NodeId::new(i)).color).collect();
        is_proper_coloring(&adj_check, &colors)
    });
    let colors: Vec<Option<usize>> = (0..n).map(|i| sim.behavior(NodeId::new(i)).color).collect();
    let mut used: Vec<usize> = colors.iter().flatten().copied().collect();
    used.sort_unstable();
    used.dedup();
    ColoringReport {
        completed,
        slots,
        colors,
        colors_used: used.len(),
        max_degree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, spacing: f64) -> DecaySpace {
        DecaySpace::from_fn(n, |i, j| {
            ((i as f64) - (j as f64)).abs().powi(2) * spacing * spacing
        })
        .unwrap()
    }

    #[test]
    fn neighbor_graph_respects_f_max() {
        let s = line(5, 1.0); // decays 1, 4, 9, 16
        let adj = mutual_neighbor_graph(&s, 4.0);
        assert_eq!(adj[0], vec![1, 2]);
        assert_eq!(adj[2], vec![0, 1, 3, 4]);
    }

    #[test]
    fn proper_coloring_predicate() {
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        assert!(is_proper_coloring(&adj, &[Some(0), Some(1), Some(0)]));
        assert!(!is_proper_coloring(&adj, &[Some(0), Some(0), Some(1)]));
        assert!(!is_proper_coloring(&adj, &[Some(0), None, Some(1)]));
    }

    #[test]
    fn line_network_gets_properly_colored() {
        let s = line(8, 1.0);
        let config = ColoringConfig {
            f_max: 4.0, // neighbors at distance 1 and 2
            ..Default::default()
        };
        let report = run_coloring(&s, &SinrParams::default(), &config);
        assert!(report.completed, "did not color in {} slots", report.slots);
        let adj = mutual_neighbor_graph(&s, config.f_max);
        assert!(is_proper_coloring(&adj, &report.colors));
        assert!(report.max_degree >= 2);
        // Announce-and-yield is not tightly (Δ+1); but it must stay within
        // a small factor on a line.
        assert!(
            report.colors_used <= report.max_degree + 2,
            "used {} colors for Δ = {}",
            report.colors_used,
            report.max_degree
        );
    }

    #[test]
    fn isolated_nodes_color_trivially() {
        let s = line(4, 100.0);
        let config = ColoringConfig {
            f_max: 4.0, // nobody is anybody's neighbor
            ..Default::default()
        };
        let report = run_coloring(&s, &SinrParams::default(), &config);
        assert!(report.completed);
        assert_eq!(report.max_degree, 0);
        // With no conflicts everyone takes color 0.
        assert_eq!(report.colors_used, 1);
    }

    #[test]
    fn deterministic_in_seed() {
        let s = line(6, 1.0);
        let config = ColoringConfig {
            f_max: 4.0,
            ..Default::default()
        };
        let a = run_coloring(&s, &SinrParams::default(), &config);
        let b = run_coloring(&s, &SinrParams::default(), &config);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "p_send must be in (0, 1]")]
    fn invalid_p_send_is_rejected() {
        let s = line(3, 1.0);
        run_coloring(
            &s,
            &SinrParams::default(),
            &ColoringConfig {
                p_send: 0.0,
                ..Default::default()
            },
        );
    }
}
