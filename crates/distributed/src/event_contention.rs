//! Event-driven contention resolution: the [`crate::run_contention`]
//! protocol ported to `decay-engine`.
//!
//! Each link's sender must deliver one packet to its dedicated receiver,
//! reacting only to its own successes and failures. The port replaces
//! the per-slot coin flip with geometric wake scheduling (an undelivered
//! sender at probability `p` sleeps `Geom(p)` ticks between attempts) and
//! replaces the centralized affectance oracle with the engine's physical
//! reception resolution: an attempt succeeds when the link's receiver
//! actually captures the transmission under SINR. Backoff senders
//! recover multiplicatively over the *elapsed* ticks since their last
//! attempt, the event-driven equivalent of the slot simulator's per-slot
//! recovery.

use decay_core::{DecaySpace, NodeId};
use decay_engine::{
    Codec, CodecError, DecayBackend, DenseBackend, Engine, EngineConfig, EngineStats,
    EventBehavior, NodeCtx, Tick,
};
use decay_sinr::SinrParams;
use serde::{Deserialize, Serialize};

use crate::contention::ContentionStrategy;

/// Parameters of an event-driven contention run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventContentionConfig {
    /// Sender strategy (shared with the slot-synchronous port).
    pub strategy: ContentionStrategy,
    /// Give up after this many ticks.
    pub max_ticks: Tick,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EventContentionConfig {
    fn default() -> Self {
        EventContentionConfig {
            strategy: ContentionStrategy::Fixed { p: 0.1 },
            max_ticks: 20_000,
            seed: 1,
        }
    }
}

/// Outcome of an event-driven contention run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventContentionReport {
    /// Tick at which each link delivered (`None` = never).
    pub delivered_at: Vec<Option<Tick>>,
    /// Whether every viable link delivered.
    pub all_delivered: bool,
    /// Total transmission attempts.
    pub transmissions: u64,
    /// Ticks simulated.
    pub ticks_used: Tick,
    /// Engine counters.
    pub stats: EngineStats,
}

impl EventContentionReport {
    /// Number of links that delivered.
    pub fn delivered(&self) -> usize {
        self.delivered_at.iter().filter(|t| t.is_some()).count()
    }

    /// The last delivery tick (the makespan), if anything delivered.
    pub fn makespan(&self) -> Option<Tick> {
        self.delivered_at.iter().flatten().copied().max()
    }
}

/// Per-node behavior: a link sender or its passive receiver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ContentionNode {
    /// An undelivered sender driving one link.
    Sender {
        /// The dedicated receiver.
        peer: NodeId,
        /// Current transmission probability.
        prob: f64,
        /// Probability cap (the strategy's starting value).
        start: f64,
        /// Failure multiplier.
        down: f64,
        /// Per-tick recovery multiplier.
        up: f64,
        /// Probability floor.
        floor: f64,
        /// Tick of the last attempt (for elapsed-time recovery).
        last_attempt: Tick,
        /// When the packet was delivered.
        delivered_at: Option<Tick>,
        /// Whether the link can clear the noise floor at all.
        viable: bool,
        /// Attempts so far.
        attempts: u64,
    },
    /// A passive receiver.
    Receiver {
        /// The link's sender.
        peer: NodeId,
    },
}

impl ContentionNode {
    fn schedule_next(&mut self, ctx: &mut NodeCtx<'_>) {
        if let ContentionNode::Sender {
            prob,
            delivered_at: None,
            viable: true,
            ..
        } = self
        {
            let gap = decay_engine::geometric_gap(ctx.rng, *prob);
            ctx.wake_in(gap);
        }
    }
}

impl EventBehavior for ContentionNode {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        match self {
            ContentionNode::Receiver { .. } => ctx.listen(),
            ContentionNode::Sender { .. } => {
                // Senders do not listen; they learn from the transmit
                // result, as in the slot-synchronous port.
                ctx.sleep();
                self.schedule_next(ctx);
            }
        }
    }

    fn on_wake(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now;
        if let ContentionNode::Sender {
            peer,
            prob,
            start,
            up,
            last_attempt,
            delivered_at: None,
            viable: true,
            attempts,
            ..
        } = self
        {
            // Elapsed-tick recovery toward the cap.
            let gap = now.saturating_sub(*last_attempt);
            if gap > 0 && *up > 1.0 {
                *prob = (*prob * up.powf(gap as f64)).min(*start);
            }
            *last_attempt = now;
            *attempts += 1;
            ctx.transmit(1.0, peer.index() as u64);
            self.schedule_next(ctx);
        }
    }

    fn on_transmit_result(&mut self, ctx: &mut NodeCtx<'_>, receivers: &[NodeId]) {
        if let ContentionNode::Sender {
            peer,
            prob,
            down,
            floor,
            delivered_at,
            ..
        } = self
        {
            if delivered_at.is_none() {
                if receivers.contains(peer) {
                    *delivered_at = Some(ctx.now);
                } else {
                    *prob = (*prob * *down).max(*floor);
                }
            }
        }
    }
}

/// The probe-API re-tune hook: a controller directive re-centers an
/// undelivered sender's probability schedule — current probability and
/// recovery cap (`start`) move to `p`, so the backoff dynamics
/// (`down`/`up`) operate around the new set point instead of silently
/// recovering back to the old one. The failure floor keeps its
/// strategy-configured value, lowered only when needed to preserve
/// `floor ≤ start` — a one-way ratchet: a floor once lowered for a
/// small set point stays low when the set point later rises, so
/// backoff below the new set point remains possible. Receivers and
/// delivered senders are unaffected.
impl decay_engine::probe::Tunable for ContentionNode {
    fn set_probability(&mut self, p: f64) {
        assert!(
            p.is_finite() && p > 0.0 && p <= 1.0,
            "contention probability must be in (0, 1]"
        );
        if let ContentionNode::Sender {
            prob,
            start,
            floor,
            delivered_at: None,
            ..
        } = self
        {
            *prob = p;
            *start = p;
            *floor = (*floor).min(p);
        }
    }
}

/// Byte-level state capture, so contention runs can checkpoint/resume
/// through `decay_engine::Checkpoint` (the offline serde stand-in cannot
/// serialize; see `decay_engine::codec`).
impl Codec for ContentionNode {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ContentionNode::Receiver { peer } => {
                out.push(0);
                peer.encode(out);
            }
            ContentionNode::Sender {
                peer,
                prob,
                start,
                down,
                up,
                floor,
                last_attempt,
                delivered_at,
                viable,
                attempts,
            } => {
                out.push(1);
                peer.encode(out);
                prob.encode(out);
                start.encode(out);
                down.encode(out);
                up.encode(out);
                floor.encode(out);
                last_attempt.encode(out);
                delivered_at.encode(out);
                viable.encode(out);
                attempts.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(input)? {
            0 => Ok(ContentionNode::Receiver {
                peer: NodeId::decode(input)?,
            }),
            1 => Ok(ContentionNode::Sender {
                peer: NodeId::decode(input)?,
                prob: f64::decode(input)?,
                start: f64::decode(input)?,
                down: f64::decode(input)?,
                up: f64::decode(input)?,
                floor: f64::decode(input)?,
                last_attempt: Tick::decode(input)?,
                delivered_at: Option::<Tick>::decode(input)?,
                viable: bool::decode(input)?,
                attempts: u64::decode(input)?,
            }),
            tag => Err(CodecError::InvalidTag {
                tag,
                ty: "ContentionNode",
            }),
        }
    }
}

/// Builds a contention engine over any [`DecayBackend`] without driving
/// it — the seam declarative scenarios compile through, and the entry
/// point for callers that want churn/jamming/latency dynamics (via
/// `engine_config`) or checkpoint/resume around a contention run.
///
/// Returns the engine plus the sender of each link, in link order.
///
/// # Panics
///
/// Panics on out-of-range strategy parameters, out-of-range link
/// endpoints, or links sharing endpoints.
pub fn build_contention_engine<Bk: DecayBackend + 'static>(
    backend: Bk,
    links: &[(NodeId, NodeId)],
    params: &SinrParams,
    strategy: ContentionStrategy,
    engine_config: EngineConfig,
    seed: u64,
) -> (Engine<ContentionNode>, Vec<NodeId>) {
    let n = backend.len();
    let (start, down, up, floor) = match strategy {
        ContentionStrategy::Fixed { p } => {
            assert!(p > 0.0 && p <= 1.0, "fixed probability must be in (0, 1]");
            (p, 1.0, 1.0, p)
        }
        ContentionStrategy::Backoff {
            start,
            down,
            up,
            floor,
        } => {
            assert!(start > 0.0 && start <= 1.0, "start must be in (0, 1]");
            assert!(down > 0.0 && down < 1.0, "down must be in (0, 1)");
            assert!(up >= 1.0, "up must be at least 1");
            assert!(floor > 0.0 && floor <= start, "floor must be in (0, start]");
            (start, down, up, floor)
        }
    };
    let mut behaviors: Vec<ContentionNode> = (0..n)
        .map(|_| ContentionNode::Receiver {
            peer: NodeId::new(usize::MAX),
        })
        .collect();
    let mut sender_of_link = Vec::with_capacity(links.len());
    let mut used = vec![false; n];
    for &(s, r) in links {
        assert!(
            s.index() < n && r.index() < n && s != r,
            "link endpoints out of range"
        );
        // One behavior per node: links must be endpoint-disjoint, or a
        // node's Sender/Receiver role would be silently overwritten.
        assert!(
            !used[s.index()] && !used[r.index()],
            "links must not share endpoints (node {} or {} appears twice)",
            s,
            r
        );
        used[s.index()] = true;
        used[r.index()] = true;
        // A link that cannot clear the noise floor alone can never
        // deliver; its sender stays silent (mirrors run_contention).
        let viable = params.noise() == 0.0
            || (1.0 / backend.decay(s, r)) / params.noise() >= params.beta() * (1.0 - 1e-12);
        behaviors[r.index()] = ContentionNode::Receiver { peer: s };
        behaviors[s.index()] = ContentionNode::Sender {
            peer: r,
            prob: start,
            start,
            down,
            up,
            floor,
            last_attempt: 0,
            delivered_at: None,
            viable,
            attempts: 0,
        };
        sender_of_link.push(s);
    }
    let engine = Engine::new(backend, behaviors, *params, engine_config, seed)
        .expect("behavior count matches backend");
    (engine, sender_of_link)
}

/// Runs event-driven contention resolution over `links` (sender,
/// receiver) pairs on `space`. Links must be endpoint-disjoint (each
/// node drives or terminates at most one link): the port models roles
/// as one behavior per node.
///
/// # Panics
///
/// Panics on degenerate configs, out-of-range link endpoints, or links
/// sharing endpoints.
pub fn run_contention_event(
    space: &DecaySpace,
    links: &[(NodeId, NodeId)],
    params: &SinrParams,
    config: &EventContentionConfig,
) -> EventContentionReport {
    assert!(config.max_ticks > 0, "need at least one tick");
    let (mut engine, sender_of_link) = build_contention_engine(
        DenseBackend::new(space.clone()),
        links,
        params,
        config.strategy,
        EngineConfig::default(),
        config.seed,
    );
    // The generic probed driver supplies the pause grid; this protocol
    // only contributes its completion predicate (every viable link
    // delivered).
    decay_engine::drive_until(&mut engine, config.max_ticks, 64, &mut [], |e| {
        sender_of_link.iter().all(|&s| {
            matches!(
                e.behavior(s),
                ContentionNode::Sender {
                    delivered_at: Some(_),
                    ..
                } | ContentionNode::Sender { viable: false, .. }
            )
        })
    });
    let ticks_used = engine.now();
    let mut delivered_at = Vec::with_capacity(links.len());
    let mut transmissions = 0;
    let mut all_delivered = true;
    for &s in &sender_of_link {
        let ContentionNode::Sender {
            delivered_at: d,
            viable,
            attempts,
            ..
        } = engine.behavior(s)
        else {
            unreachable!("sender behavior replaced")
        };
        delivered_at.push(*d);
        transmissions += attempts;
        if *viable && d.is_none() {
            all_delivered = false;
        }
    }
    EventContentionReport {
        delivered_at,
        all_delivered,
        transmissions,
        ticks_used,
        stats: engine.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `m` parallel unit links spaced `gap` apart on a line.
    fn parallel(m: usize, gap: f64) -> (DecaySpace, Vec<(NodeId, NodeId)>) {
        let mut pos = Vec::new();
        for i in 0..m {
            pos.push(i as f64 * gap);
            pos.push(i as f64 * gap + 1.0);
        }
        let space = DecaySpace::from_fn(pos.len(), |i, j| (pos[i] - pos[j]).abs().powi(2)).unwrap();
        let links = (0..m)
            .map(|i| (NodeId::new(2 * i), NodeId::new(2 * i + 1)))
            .collect();
        (space, links)
    }

    #[test]
    fn sparse_instance_finishes_fast() {
        let (space, links) = parallel(8, 50.0);
        let report = run_contention_event(
            &space,
            &links,
            &SinrParams::default(),
            &EventContentionConfig::default(),
        );
        assert!(report.all_delivered, "delivered {}", report.delivered());
        assert_eq!(report.delivered(), 8);
        assert!(report.ticks_used < 2_000, "ticks {}", report.ticks_used);
    }

    #[test]
    fn dense_instance_still_completes() {
        let (space, links) = parallel(10, 1.5);
        let report = run_contention_event(
            &space,
            &links,
            &SinrParams::default(),
            &EventContentionConfig::default(),
        );
        assert!(report.all_delivered, "delivered {}", report.delivered());
        assert!(report.makespan().is_some());
    }

    #[test]
    fn backoff_adapts_and_completes() {
        let (space, links) = parallel(10, 1.5);
        let report = run_contention_event(
            &space,
            &links,
            &SinrParams::default(),
            &EventContentionConfig {
                strategy: ContentionStrategy::Backoff {
                    start: 0.5,
                    down: 0.5,
                    up: 1.05,
                    floor: 0.01,
                },
                ..Default::default()
            },
        );
        assert!(report.all_delivered);
    }

    #[test]
    fn noise_floor_losers_never_deliver() {
        let (space, links) = parallel(3, 30.0);
        // Each link has length 1 -> decay 1 -> signal 1; but rebuild with
        // length-3 links: use noise high enough that SNR < beta.
        let report = run_contention_event(
            &space,
            &links,
            &SinrParams::new(1.0, 2.0).unwrap(),
            &EventContentionConfig {
                max_ticks: 500,
                ..Default::default()
            },
        );
        // decay 1, noise 2 -> SNR 0.5 < 1: hopeless.
        assert_eq!(report.delivered(), 0);
        assert_eq!(report.transmissions, 0);
        assert!(report.all_delivered, "hopeless links do not block verdict");
    }

    #[test]
    fn deterministic_in_seed() {
        let (space, links) = parallel(6, 2.0);
        let run = |seed| {
            run_contention_event(
                &space,
                &links,
                &SinrParams::default(),
                &EventContentionConfig {
                    seed,
                    ..Default::default()
                },
            )
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1).delivered_at, run(7).delivered_at);
    }

    #[test]
    #[should_panic(expected = "share endpoints")]
    fn shared_endpoints_are_rejected() {
        let (space, _) = parallel(2, 10.0);
        // Node 0 is sender of one link and receiver of another.
        let links = vec![
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(2), NodeId::new(0)),
        ];
        run_contention_event(
            &space,
            &links,
            &SinrParams::default(),
            &EventContentionConfig::default(),
        );
    }
}
