//! Distributed contention resolution ([45], refined in [28] — both on the
//! paper's transfer list).
//!
//! Every link must deliver one packet; senders know nothing about each
//! other and react only to their own successes and failures. Each slot an
//! undelivered link transmits with its current probability; it succeeds
//! when its in-affectance from the other transmitters is at most 1
//! (`SINR ≥ β`), upon which it leaves the game. Proposition 1 transfers
//! the GEO-SINR guarantees verbatim: the completion time scales with the
//! schedule length `T` of the instance and the decay-space parameters
//! rather than with geometric constants; experiment E26 measures the
//! ratio to the centralized schedule length.
//!
//! Two sender strategies are provided: a fixed transmission probability
//! (the analysis-friendly baseline) and multiplicative backoff (halve on
//! failure, recover slowly), the practical variant.

use decay_sinr::{AffectanceMatrix, LinkId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How an undelivered sender chooses its transmission probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ContentionStrategy {
    /// Transmit with a fixed probability every slot.
    Fixed {
        /// The transmission probability.
        p: f64,
    },
    /// Start at `start`; multiply by `down` (< 1) after a failed
    /// transmission and by `up` (> 1) after every slot without a failure,
    /// clamped to `[floor, start]`.
    Backoff {
        /// Initial (and maximum) probability.
        start: f64,
        /// Multiplier after a failure (in `(0, 1)`).
        down: f64,
        /// Recovery multiplier (≥ 1).
        up: f64,
        /// Minimum probability (> 0).
        floor: f64,
    },
}

impl ContentionStrategy {
    fn validate(&self) {
        match *self {
            ContentionStrategy::Fixed { p } => {
                assert!(p > 0.0 && p <= 1.0, "fixed probability must be in (0, 1]");
            }
            ContentionStrategy::Backoff {
                start,
                down,
                up,
                floor,
            } => {
                assert!(start > 0.0 && start <= 1.0, "start must be in (0, 1]");
                assert!(down > 0.0 && down < 1.0, "down must be in (0, 1)");
                assert!(up >= 1.0, "up must be at least 1");
                assert!(floor > 0.0 && floor <= start, "floor must be in (0, start]");
            }
        }
    }
}

/// Parameters of a contention-resolution run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionConfig {
    /// Sender strategy.
    pub strategy: ContentionStrategy,
    /// Give up after this many slots.
    pub max_slots: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ContentionConfig {
    fn default() -> Self {
        ContentionConfig {
            strategy: ContentionStrategy::Fixed { p: 0.1 },
            max_slots: 20_000,
            seed: 1,
        }
    }
}

/// Outcome of a contention-resolution run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionReport {
    /// Slot in which each link delivered (`None` = never, within the cap;
    /// links that cannot clear the noise floor alone can never deliver).
    pub delivered_slot: Vec<Option<usize>>,
    /// Slots simulated (`max_slots` unless everyone finished earlier).
    pub slots_used: usize,
    /// Whether every viable link delivered.
    pub all_delivered: bool,
    /// Total transmission attempts across all links.
    pub transmissions: usize,
}

impl ContentionReport {
    /// Number of links that delivered.
    pub fn delivered(&self) -> usize {
        self.delivered_slot.iter().filter(|s| s.is_some()).count()
    }

    /// The last delivery slot (the makespan), if anything delivered.
    pub fn makespan(&self) -> Option<usize> {
        self.delivered_slot.iter().flatten().copied().max()
    }
}

/// Runs contention resolution until every viable link has delivered once
/// or `max_slots` elapse.
///
/// # Panics
///
/// Panics on degenerate configs (see [`ContentionStrategy`]) or zero
/// `max_slots`.
pub fn run_contention(aff: &AffectanceMatrix, config: &ContentionConfig) -> ContentionReport {
    config.strategy.validate();
    assert!(config.max_slots > 0, "need at least one slot");
    let m = aff.len();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let viable: Vec<bool> = (0..m)
        .map(|i| aff.noise_factor(LinkId::new(i)).is_finite())
        .collect();
    let (start_p, down, up, floor) = match config.strategy {
        ContentionStrategy::Fixed { p } => (p, 1.0, 1.0, p),
        ContentionStrategy::Backoff {
            start,
            down,
            up,
            floor,
        } => (start, down, up, floor),
    };
    let mut prob = vec![start_p; m];
    let mut delivered_slot: Vec<Option<usize>> = vec![None; m];
    let mut transmissions = 0usize;
    let mut slots_used = 0usize;
    for slot in 0..config.max_slots {
        slots_used = slot + 1;
        let active: Vec<usize> = (0..m)
            .filter(|&i| viable[i] && delivered_slot[i].is_none())
            .collect();
        if active.is_empty() {
            slots_used = slot;
            break;
        }
        let transmitting: Vec<LinkId> = active
            .iter()
            .copied()
            .filter(|&i| rng.gen_range(0.0..1.0) < prob[i])
            .map(LinkId::new)
            .collect();
        transmissions += transmitting.len();
        for &v in &transmitting {
            let others: Vec<LinkId> = transmitting.iter().copied().filter(|&w| w != v).collect();
            let ok = aff.in_affectance_raw(&others, v) <= 1.0 + 1e-12;
            let i = v.index();
            if ok {
                delivered_slot[i] = Some(slot);
            } else {
                prob[i] = (prob[i] * down).max(floor);
            }
        }
        // Slow recovery for everyone who did not just fail.
        for &i in &active {
            if !transmitting.contains(&LinkId::new(i)) || delivered_slot[i].is_some() {
                prob[i] = (prob[i] * up).min(start_p);
            }
        }
    }
    let all_delivered = (0..m).all(|i| !viable[i] || delivered_slot[i].is_some());
    ContentionReport {
        delivered_slot,
        slots_used,
        all_delivered,
        transmissions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decay_core::{DecaySpace, NodeId};
    use decay_sinr::{Link, LinkSet, PowerAssignment, SinrParams};

    fn parallel(m: usize, gap: f64) -> AffectanceMatrix {
        let mut pos = Vec::new();
        for i in 0..m {
            pos.push(i as f64 * gap);
            pos.push(i as f64 * gap + 1.0);
        }
        let s = DecaySpace::from_fn(pos.len(), |i, j| (pos[i] - pos[j]).abs().powi(2)).unwrap();
        let ls = LinkSet::new(
            &s,
            (0..m)
                .map(|i| Link::new(NodeId::new(2 * i), NodeId::new(2 * i + 1)))
                .collect(),
        )
        .unwrap();
        let powers = PowerAssignment::unit().powers(&s, &ls).unwrap();
        AffectanceMatrix::build(&s, &ls, &powers, &SinrParams::default()).unwrap()
    }

    #[test]
    fn sparse_instance_finishes_fast() {
        let aff = parallel(8, 50.0);
        let report = run_contention(&aff, &ContentionConfig::default());
        assert!(report.all_delivered);
        assert_eq!(report.delivered(), 8);
        // With p = 0.1 and no interference, expect ~10 slots per link.
        assert!(report.slots_used < 500, "slots {}", report.slots_used);
    }

    #[test]
    fn dense_instance_still_completes() {
        let aff = parallel(10, 1.5);
        let report = run_contention(&aff, &ContentionConfig::default());
        assert!(report.all_delivered, "delivered {}", report.delivered());
    }

    #[test]
    fn backoff_completes_and_adapts() {
        let aff = parallel(10, 1.5);
        let report = run_contention(
            &aff,
            &ContentionConfig {
                strategy: ContentionStrategy::Backoff {
                    start: 0.5,
                    down: 0.5,
                    up: 1.05,
                    floor: 0.01,
                },
                ..Default::default()
            },
        );
        assert!(report.all_delivered);
        assert!(report.makespan().is_some());
    }

    #[test]
    fn noise_floor_losers_never_deliver() {
        let mut pos = Vec::new();
        for i in 0..3 {
            pos.push(i as f64 * 30.0);
            pos.push(i as f64 * 30.0 + 3.0);
        }
        let s = DecaySpace::from_fn(6, |i, j| (pos[i] - pos[j]).abs().powi(2)).unwrap();
        let ls = LinkSet::new(
            &s,
            (0..3)
                .map(|i| Link::new(NodeId::new(2 * i), NodeId::new(2 * i + 1)))
                .collect(),
        )
        .unwrap();
        let powers = PowerAssignment::unit().powers(&s, &ls).unwrap();
        // Signal 1/9, noise 1: hopeless.
        let aff =
            AffectanceMatrix::build(&s, &ls, &powers, &SinrParams::new(1.0, 1.0).unwrap()).unwrap();
        let report = run_contention(
            &aff,
            &ContentionConfig {
                max_slots: 200,
                ..Default::default()
            },
        );
        assert_eq!(report.delivered(), 0);
        // Hopeless links do not prevent the "all viable delivered" verdict.
        assert!(report.all_delivered);
        assert_eq!(report.transmissions, 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let aff = parallel(6, 2.0);
        let a = run_contention(&aff, &ContentionConfig::default());
        let b = run_contention(&aff, &ContentionConfig::default());
        assert_eq!(a, b);
        let c = run_contention(
            &aff,
            &ContentionConfig {
                seed: 7,
                ..Default::default()
            },
        );
        assert_ne!(a.delivered_slot, c.delivered_slot);
    }

    #[test]
    fn higher_probability_finishes_sparse_instances_sooner() {
        let aff = parallel(6, 80.0);
        let slow = run_contention(
            &aff,
            &ContentionConfig {
                strategy: ContentionStrategy::Fixed { p: 0.02 },
                ..Default::default()
            },
        );
        let fast = run_contention(
            &aff,
            &ContentionConfig {
                strategy: ContentionStrategy::Fixed { p: 0.9 },
                ..Default::default()
            },
        );
        assert!(fast.slots_used <= slow.slots_used);
    }

    #[test]
    #[should_panic(expected = "fixed probability")]
    fn invalid_probability_is_rejected() {
        let aff = parallel(2, 10.0);
        run_contention(
            &aff,
            &ContentionConfig {
                strategy: ContentionStrategy::Fixed { p: 0.0 },
                ..Default::default()
            },
        );
    }
}
