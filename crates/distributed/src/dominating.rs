//! Distributed dominating set under SINR (the paper's transfer list cites
//! Scheideler–Richa–Santi [55], an `O(log n)`-slot protocol).
//!
//! Every node must end up either a *dominator* or within decay `F` of one
//! it has actually heard. The protocol is the classic announce/acknowledge
//! dynamics: candidates announce themselves with a fixed probability;
//! an announcement that is captured by at least one listener promotes the
//! sender to dominator (the capture acts as the ACK the radio layer
//! provides); candidates that hear a dominator within their neighborhood
//! become dominated and go passive. Dominators keep announcing so that
//! late candidates can still hear them.

use decay_core::{DecaySpace, NodeId};
use decay_netsim::{Action, NodeBehavior, Simulator, SlotContext};
use decay_sinr::SinrParams;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters for the dominating-set protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DominatingConfig {
    /// Neighborhood radius in decay: hearing a dominator `u` with
    /// `f(u, z) ≤ F` dominates `z`.
    pub neighborhood_decay: f64,
    /// Announcement probability; `None` selects `0.5 / Δ`.
    pub probability: Option<f64>,
    /// Transmission power (uniform).
    pub power: f64,
    /// Slot budget.
    pub max_slots: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DominatingConfig {
    fn default() -> Self {
        DominatingConfig {
            neighborhood_decay: 16.0,
            probability: None,
            power: 1.0,
            max_slots: 50_000,
            seed: 1,
        }
    }
}

/// Outcome of a dominating-set run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DominatingReport {
    /// The elected dominators.
    pub dominators: Vec<NodeId>,
    /// Slots until no candidate remained (`None` if the budget ran out).
    pub completed_in: Option<usize>,
    /// Whether every node is a dominator or heard one within `F`.
    pub valid: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Candidate,
    Dominator,
    Dominated,
}

#[derive(Debug, Clone, Copy)]
struct DominatingNode {
    role: Role,
    p: f64,
    power: f64,
    /// Minimum RSSI at which a heard dominator counts as in-neighborhood:
    /// decay(u, z) <= F  <=>  received power >= P/F (uniform power).
    min_rssi: f64,
}

const DOMINATOR_FLAG: u64 = 1 << 63;

impl NodeBehavior for DominatingNode {
    fn on_slot(&mut self, ctx: &mut SlotContext<'_>) -> Action {
        let announce = match self.role {
            Role::Candidate | Role::Dominator => ctx.rng.gen_range(0.0..1.0) < self.p,
            Role::Dominated => false,
        };
        if announce {
            let mut msg = ctx.node.index() as u64;
            if self.role == Role::Dominator {
                msg |= DOMINATOR_FLAG;
            }
            Action::Transmit {
                power: self.power,
                message: msg,
            }
        } else {
            Action::Listen
        }
    }

    fn on_receive(&mut self, _from: NodeId, message: u64, power: f64) {
        // Hearing a dominator loudly enough (RSSI encodes the decay under
        // uniform power) dominates a candidate.
        if self.role == Role::Candidate && message & DOMINATOR_FLAG != 0 && power >= self.min_rssi {
            self.role = Role::Dominated;
        }
    }

    fn on_transmit_result(&mut self, receivers: usize) {
        // A captured announcement is the ACK that promotes a candidate.
        if self.role == Role::Candidate && receivers > 0 {
            self.role = Role::Dominator;
        }
    }
}

/// Runs the dominating-set protocol; see the module docs.
///
/// # Panics
///
/// Panics on degenerate configs.
pub fn run_dominating_set(
    space: &DecaySpace,
    params: &SinrParams,
    config: &DominatingConfig,
) -> DominatingReport {
    assert!(config.neighborhood_decay > 0.0, "radius must be positive");
    assert!(config.power > 0.0, "power must be positive");
    assert!(config.max_slots > 0, "slot budget must be positive");
    let n = space.len();
    let delta = crate::broadcast::neighborhood_sizes(space, config.neighborhood_decay)
        .into_iter()
        .max()
        .unwrap_or(0);
    let p = match config.probability {
        Some(p) => {
            assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1)");
            p
        }
        None => (0.5 / delta.max(1) as f64).min(0.5),
    };
    let behaviors = vec![
        DominatingNode {
            role: Role::Candidate,
            p,
            power: config.power,
            min_rssi: config.power / config.neighborhood_decay,
        };
        n
    ];
    let mut sim = Simulator::new(space.clone(), behaviors, *params, config.seed)
        .expect("behavior count matches");
    let mut completed_in = None;
    for slot in 0..config.max_slots {
        sim.step();
        let done = (0..n).all(|i| sim.behavior(NodeId::new(i)).role != Role::Candidate);
        if done {
            completed_in = Some(slot + 1);
            break;
        }
    }
    // Any leftover candidates dominate themselves (budget exhaustion).
    let dominators: Vec<NodeId> = (0..n)
        .filter(|&i| sim.behavior(NodeId::new(i)).role != Role::Dominated)
        .map(NodeId::new)
        .collect();
    let valid = (0..n).all(|i| {
        sim.behavior(NodeId::new(i)).role != Role::Dominated
            || dominators
                .iter()
                .any(|&u| space.decay(u, NodeId::new(i)) <= config.neighborhood_decay)
    });
    DominatingReport {
        dominators,
        completed_in,
        valid,
    }
}

/// Centralized greedy dominating set (coverage baseline): repeatedly pick
/// the node covering the most uncovered nodes within decay `F`.
pub fn greedy_dominating_set(space: &DecaySpace, f_max: f64) -> Vec<NodeId> {
    let n = space.len();
    let mut covered = vec![false; n];
    let mut dominators = Vec::new();
    while covered.iter().any(|&c| !c) {
        let best = space
            .nodes()
            .max_by_key(|&u| {
                space
                    .nodes()
                    .filter(|&z| !covered[z.index()] && (z == u || space.decay(u, z) <= f_max))
                    .count()
            })
            .expect("non-empty space");
        dominators.push(best);
        for z in space.nodes() {
            if z == best || space.decay(best, z) <= f_max {
                covered[z.index()] = true;
            }
        }
    }
    dominators
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, alpha: f64) -> DecaySpace {
        DecaySpace::from_fn(n, |i, j| ((i as f64) - (j as f64)).abs().powf(alpha)).unwrap()
    }

    #[test]
    fn protocol_produces_valid_dominating_set() {
        let s = line(12, 3.0);
        let report = run_dominating_set(
            &s,
            &SinrParams::default(),
            &DominatingConfig {
                neighborhood_decay: 8.0,
                ..Default::default()
            },
        );
        assert!(report.valid);
        assert!(report.completed_in.is_some());
        assert!(!report.dominators.is_empty());
        assert!(report.dominators.len() < 12);
    }

    #[test]
    fn greedy_baseline_covers() {
        let s = line(12, 3.0);
        let doms = greedy_dominating_set(&s, 8.0);
        for z in s.nodes() {
            assert!(
                doms.contains(&z) || doms.iter().any(|&u| s.decay(u, z) <= 8.0),
                "{z} uncovered"
            );
        }
        // F = 8 at alpha 3 covers distance 2: ceil(12/5) = 3 dominators.
        assert!(doms.len() <= 4, "greedy used {} dominators", doms.len());
    }

    #[test]
    fn protocol_size_tracks_greedy_within_factor() {
        let s = line(16, 3.0);
        let report = run_dominating_set(
            &s,
            &SinrParams::default(),
            &DominatingConfig {
                neighborhood_decay: 8.0,
                seed: 5,
                ..Default::default()
            },
        );
        let greedy = greedy_dominating_set(&s, 8.0);
        assert!(report.valid);
        // Distributed protocols pay a constant blow-up over the greedy.
        assert!(
            report.dominators.len() <= 6 * greedy.len(),
            "protocol {} vs greedy {}",
            report.dominators.len(),
            greedy.len()
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let s = line(10, 3.0);
        let cfg = DominatingConfig {
            neighborhood_decay: 8.0,
            seed: 9,
            ..Default::default()
        };
        let a = run_dominating_set(&s, &SinrParams::default(), &cfg);
        let b = run_dominating_set(&s, &SinrParams::default(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_budget_still_returns_valid_cover() {
        let s = line(10, 2.0);
        let report = run_dominating_set(
            &s,
            &SinrParams::default(),
            &DominatingConfig {
                neighborhood_decay: 4.0,
                max_slots: 1,
                ..Default::default()
            },
        );
        // Leftover candidates self-dominate, so validity always holds.
        assert!(report.valid);
    }
}
