//! Adversarially perturbed regret learning: jamming ([11]) and changing
//! spectrum availability / sleeping experts ([12]).
//!
//! The paper's transfer list extends the regret-based distributed capacity
//! family to jammed channels and to links whose spectrum comes and goes.
//! Both perturbations plug into the same multiplicative-weights game as
//! [`crate::regret_capacity_game`]:
//!
//! * **Jamming** — in a jammed round, a chosen subset of links cannot
//!   succeed no matter what (the jammer owns their channel). A jammed
//!   link *detects* the jamming (the jammer's signal is physically
//!   observable as an interference level no set of legitimate senders
//!   could produce) and discards the round from its learning — the
//!   robustness mechanism that lets the guarantee of [11] track the
//!   optimum of the *clean* rounds instead of collapsing. A naive learner
//!   that charges itself for jammed rounds drives its transmit probability
//!   to the floor once the jamming rate exceeds `1/(1+λ)`.
//! * **Availability** — a link may only play in rounds where its spectrum
//!   is available (the *sleeping experts* setting of [12]); asleep links
//!   neither transmit nor update, and their regret is measured only over
//!   awake rounds.
//!
//! Experiment E29 measures both: throughput degradation as the jamming
//! rate grows, and per-link conditional success under random availability.

use decay_sinr::{AffectanceMatrix, LinkId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How the jammer behaves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JammingModel {
    /// No jamming.
    None,
    /// Each round is jammed independently with probability `round_prob`;
    /// in a jammed round each link is targeted with probability
    /// `link_prob`.
    Random {
        /// Probability that a round is jammed.
        round_prob: f64,
        /// Probability that a given link is targeted in a jammed round.
        link_prob: f64,
    },
    /// Every `period`-th round jams all links (a periodic burst jammer).
    Periodic {
        /// Burst period in rounds (≥ 1; 1 jams every round).
        period: usize,
    },
}

/// How spectrum availability behaves (the sleeping-experts dimension).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AvailabilityModel {
    /// Every link is available every round.
    Always,
    /// Each link is independently available with probability `prob` each
    /// round.
    Random {
        /// Per-round availability probability.
        prob: f64,
    },
    /// Links take turns: link `i` is available in round `t` iff
    /// `t % groups == i % groups` (disjoint spectrum slices).
    RoundRobin {
        /// Number of spectrum slices.
        groups: usize,
    },
}

/// Parameters of the adversarial regret game.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdversarialConfig {
    /// Number of rounds.
    pub rounds: usize,
    /// Multiplicative-weights learning rate.
    pub learning_rate: f64,
    /// Penalty for a failed transmission.
    pub failure_penalty: f64,
    /// Transmit-probability clipping floor.
    pub probability_floor: f64,
    /// Jammer model.
    pub jamming: JammingModel,
    /// Availability model.
    pub availability: AvailabilityModel,
    /// RNG seed (drives actions, the jammer, and availability).
    pub seed: u64,
}

impl Default for AdversarialConfig {
    fn default() -> Self {
        AdversarialConfig {
            rounds: 3000,
            learning_rate: 0.1,
            failure_penalty: 1.5,
            probability_floor: 0.01,
            jamming: JammingModel::None,
            availability: AvailabilityModel::Always,
            seed: 1,
        }
    }
}

/// Outcome of an adversarial regret run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversarialOutcome {
    /// Per-round success counts.
    pub success_history: Vec<usize>,
    /// Rounds in which the jammer acted.
    pub jammed_rounds: usize,
    /// Mean successes over the last quarter of *clean* (unjammed) rounds.
    pub clean_throughput: f64,
    /// Largest feasible success set observed in any round.
    pub best_feasible: Vec<LinkId>,
    /// Per-link fraction of rounds the link was available.
    pub availability_rate: Vec<f64>,
    /// Per-link success rate over its available rounds (0 when never
    /// available).
    pub conditional_success: Vec<f64>,
}

/// Plays the regret game under jamming and availability adversaries.
///
/// # Panics
///
/// Panics on degenerate configs (zero rounds, bad probabilities, zero
/// period/groups).
pub fn adversarial_regret_game(
    aff: &AffectanceMatrix,
    config: &AdversarialConfig,
) -> AdversarialOutcome {
    assert!(config.rounds > 0, "need at least one round");
    assert!(config.learning_rate > 0.0, "learning rate must be positive");
    assert!(
        config.probability_floor > 0.0 && config.probability_floor < 0.5,
        "probability floor must be in (0, 1/2)"
    );
    match config.jamming {
        JammingModel::Random {
            round_prob,
            link_prob,
        } => {
            assert!(
                (0.0..=1.0).contains(&round_prob) && (0.0..=1.0).contains(&link_prob),
                "jamming probabilities must be in [0, 1]"
            );
        }
        JammingModel::Periodic { period } => assert!(period > 0, "period must be positive"),
        JammingModel::None => {}
    }
    match config.availability {
        AvailabilityModel::Random { prob } => {
            assert!(
                prob > 0.0 && prob <= 1.0,
                "availability probability must be in (0, 1]"
            );
        }
        AvailabilityModel::RoundRobin { groups } => {
            assert!(groups > 0, "need at least one spectrum slice");
        }
        AvailabilityModel::Always => {}
    }

    let m = aff.len();
    let ids: Vec<LinkId> = (0..m).map(LinkId::new).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut score = vec![0.0_f64; m];
    let mut history = Vec::with_capacity(config.rounds);
    let mut best_feasible: Vec<LinkId> = Vec::new();
    let mut jammed_rounds = 0usize;
    let mut available_rounds = vec![0usize; m];
    let mut available_successes = vec![0usize; m];
    let mut clean_tail_sum = 0usize;
    let mut clean_tail_rounds = 0usize;
    let tail_start = config.rounds - config.rounds / 4;

    let prob = |score: f64| -> f64 {
        let x = (config.learning_rate * score).clamp(-30.0, 30.0).exp();
        (x / (x + 1.0)).clamp(config.probability_floor, 1.0 - config.probability_floor)
    };

    for round in 0..config.rounds {
        // Availability mask.
        let available: Vec<bool> = (0..m)
            .map(|i| match config.availability {
                AvailabilityModel::Always => true,
                AvailabilityModel::Random { prob } => rng.gen_range(0.0..1.0) < prob,
                AvailabilityModel::RoundRobin { groups } => round % groups == i % groups,
            })
            .collect();
        // Jamming mask.
        let jam_round = match config.jamming {
            JammingModel::None => false,
            JammingModel::Random { round_prob, .. } => rng.gen_range(0.0..1.0) < round_prob,
            JammingModel::Periodic { period } => round % period == 0,
        };
        let jammed: Vec<bool> = (0..m)
            .map(|i| {
                jam_round
                    && match config.jamming {
                        JammingModel::None => false,
                        JammingModel::Random { link_prob, .. } => {
                            rng.gen_range(0.0..1.0) < link_prob
                        }
                        JammingModel::Periodic { .. } => true,
                    }
                    && available[i]
            })
            .collect();
        if jammed.iter().any(|&j| j) {
            jammed_rounds += 1;
        }

        let transmitting: Vec<LinkId> = ids
            .iter()
            .copied()
            .filter(|&v| {
                let i = v.index();
                available[i]
                    && aff.noise_factor(v).is_finite()
                    && rng.gen_range(0.0..1.0) < prob(score[i])
            })
            .collect();
        let mut successes: Vec<LinkId> = Vec::new();
        for &v in &ids {
            let i = v.index();
            if !available[i] || !aff.noise_factor(v).is_finite() {
                continue; // asleep experts are not charged
            }
            available_rounds[i] += 1;
            let others: Vec<LinkId> = transmitting.iter().copied().filter(|&w| w != v).collect();
            let ok = !jammed[i] && aff.in_affectance_raw(&others, v) <= 1.0 + 1e-12;
            // Jammed rounds are detected and discarded from learning;
            // only genuine congestion updates the score.
            if !jammed[i] {
                score[i] += if ok { 1.0 } else { -config.failure_penalty };
            }
            if ok && transmitting.contains(&v) {
                successes.push(v);
                available_successes[i] += 1;
            }
        }
        history.push(successes.len());
        if successes.len() > best_feasible.len() {
            best_feasible = successes;
        }
        if round >= tail_start && !jam_round {
            clean_tail_sum += history[round];
            clean_tail_rounds += 1;
        }
    }

    AdversarialOutcome {
        success_history: history,
        jammed_rounds,
        clean_throughput: clean_tail_sum as f64 / clean_tail_rounds.max(1) as f64,
        best_feasible,
        availability_rate: (0..m)
            .map(|i| available_rounds[i] as f64 / config.rounds as f64)
            .collect(),
        conditional_success: (0..m)
            .map(|i| {
                if available_rounds[i] == 0 {
                    0.0
                } else {
                    available_successes[i] as f64 / available_rounds[i] as f64
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decay_core::{DecaySpace, NodeId};
    use decay_sinr::{Link, LinkSet, PowerAssignment, SinrParams};

    fn parallel(m: usize, gap: f64) -> AffectanceMatrix {
        let mut pos = Vec::new();
        for i in 0..m {
            pos.push(i as f64 * gap);
            pos.push(i as f64 * gap + 1.0);
        }
        let s = DecaySpace::from_fn(pos.len(), |i, j| (pos[i] - pos[j]).abs().powi(2)).unwrap();
        let ls = LinkSet::new(
            &s,
            (0..m)
                .map(|i| Link::new(NodeId::new(2 * i), NodeId::new(2 * i + 1)))
                .collect(),
        )
        .unwrap();
        let powers = PowerAssignment::unit().powers(&s, &ls).unwrap();
        AffectanceMatrix::build(&s, &ls, &powers, &SinrParams::default()).unwrap()
    }

    #[test]
    fn no_adversary_matches_plain_regret_quality() {
        let aff = parallel(6, 40.0);
        let out = adversarial_regret_game(&aff, &AdversarialConfig::default());
        assert_eq!(out.jammed_rounds, 0);
        assert!(out.clean_throughput > 5.0, "{}", out.clean_throughput);
        assert_eq!(out.best_feasible.len(), 6);
        assert!(out.availability_rate.iter().all(|&a| a == 1.0));
    }

    #[test]
    fn periodic_jammer_is_survivable() {
        let aff = parallel(6, 40.0);
        let out = adversarial_regret_game(
            &aff,
            &AdversarialConfig {
                jamming: JammingModel::Periodic { period: 4 },
                ..Default::default()
            },
        );
        assert!(out.jammed_rounds >= 3000 / 4);
        // Clean rounds still converge to everyone transmitting.
        assert!(
            out.clean_throughput > 4.0,
            "clean throughput {}",
            out.clean_throughput
        );
    }

    #[test]
    fn heavier_jamming_hurts_total_but_not_clean_rounds() {
        let aff = parallel(5, 40.0);
        let mk = |round_prob| {
            adversarial_regret_game(
                &aff,
                &AdversarialConfig {
                    jamming: JammingModel::Random {
                        round_prob,
                        link_prob: 1.0,
                    },
                    ..Default::default()
                },
            )
        };
        let light = mk(0.1);
        let heavy = mk(0.5);
        let total = |o: &AdversarialOutcome| o.success_history.iter().sum::<usize>();
        assert!(total(&heavy) < total(&light));
        assert!(heavy.clean_throughput > 3.0, "{}", heavy.clean_throughput);
    }

    #[test]
    fn round_robin_availability_caps_rates() {
        let aff = parallel(6, 40.0);
        let out = adversarial_regret_game(
            &aff,
            &AdversarialConfig {
                availability: AvailabilityModel::RoundRobin { groups: 3 },
                rounds: 3000,
                ..Default::default()
            },
        );
        for (i, &rate) in out.availability_rate.iter().enumerate() {
            assert!((rate - 1.0 / 3.0).abs() < 0.01, "link {i} rate {rate}");
        }
        // Sparse instance: awake links should succeed almost always.
        for (i, &cs) in out.conditional_success.iter().enumerate() {
            assert!(cs > 0.8, "link {i} conditional success {cs}");
        }
    }

    #[test]
    fn random_availability_sleeping_experts_still_learn() {
        let aff = parallel(6, 30.0);
        let out = adversarial_regret_game(
            &aff,
            &AdversarialConfig {
                availability: AvailabilityModel::Random { prob: 0.5 },
                ..Default::default()
            },
        );
        for (i, &rate) in out.availability_rate.iter().enumerate() {
            assert!((rate - 0.5).abs() < 0.1, "link {i} rate {rate}");
            assert!(
                out.conditional_success[i] > 0.6,
                "link {i} cs {}",
                out.conditional_success[i]
            );
        }
    }

    #[test]
    fn best_feasible_is_feasible_under_adversaries() {
        let aff = parallel(8, 2.0);
        let out = adversarial_regret_game(
            &aff,
            &AdversarialConfig {
                jamming: JammingModel::Random {
                    round_prob: 0.3,
                    link_prob: 0.5,
                },
                availability: AvailabilityModel::Random { prob: 0.8 },
                ..Default::default()
            },
        );
        assert!(aff.is_feasible(&out.best_feasible));
    }

    #[test]
    fn deterministic_in_seed() {
        let aff = parallel(4, 5.0);
        let cfg = AdversarialConfig {
            rounds: 500,
            jamming: JammingModel::Random {
                round_prob: 0.2,
                link_prob: 0.7,
            },
            availability: AvailabilityModel::Random { prob: 0.7 },
            ..Default::default()
        };
        let a = adversarial_regret_game(&aff, &cfg);
        let b = adversarial_regret_game(&aff, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_is_rejected() {
        let aff = parallel(2, 10.0);
        adversarial_regret_game(
            &aff,
            &AdversarialConfig {
                jamming: JammingModel::Periodic { period: 0 },
                ..Default::default()
            },
        );
    }
}
