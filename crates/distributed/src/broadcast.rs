//! Randomized local broadcast over decay spaces (the [22, 69, 32] family
//! analyzed through the annulus argument of Section 3).
//!
//! Every node owns one message and must deliver it to its *neighborhood*:
//! all nodes within decay `F` of it. Nodes transmit with a fixed
//! probability `p` (default `c / Δ` with `Δ` the largest neighborhood
//! size) and listen otherwise — the classic decay-style dynamics whose
//! round complexity is governed by the fading parameter `γ` of the space.

use decay_core::DecaySpace;
use decay_netsim::{Action, NodeBehavior, ReceptionModel, Simulator, SlotContext};
use decay_sinr::SinrParams;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of a local broadcast run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BroadcastConfig {
    /// Neighborhood radius in decay: node `z` must hear node `u` whenever
    /// `f(u, z) ≤ F`.
    pub neighborhood_decay: f64,
    /// Transmit probability; `None` selects `0.5 / Δ` from the instance.
    pub probability: Option<f64>,
    /// Transmission power (uniform).
    pub power: f64,
    /// Slot budget before giving up.
    pub max_slots: usize,
    /// Reception model (thresholding by default; Rayleigh measures the
    /// \[10\] simulation claim — see experiment E34).
    pub reception: ReceptionModel,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BroadcastConfig {
    fn default() -> Self {
        BroadcastConfig {
            neighborhood_decay: 16.0,
            probability: None,
            power: 1.0,
            max_slots: 50_000,
            reception: ReceptionModel::Threshold,
            seed: 1,
        }
    }
}

/// Outcome of a local broadcast run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BroadcastReport {
    /// Slots until every required (sender, neighbor) pair was delivered;
    /// `None` when the budget ran out first.
    pub completed_in: Option<usize>,
    /// Fraction of required pairs delivered by the end of the run.
    pub coverage: f64,
    /// The number of required (sender, neighbor) pairs.
    pub required_pairs: usize,
    /// The transmit probability used.
    pub probability: f64,
    /// The maximum neighborhood size Δ of the instance.
    pub max_neighborhood: usize,
}

/// The fixed-probability broadcaster behavior.
#[derive(Debug, Clone, Copy)]
struct Broadcaster {
    p: f64,
    power: f64,
}

impl NodeBehavior for Broadcaster {
    fn on_slot(&mut self, ctx: &mut SlotContext<'_>) -> Action {
        if ctx.rng.gen_range(0.0..1.0) < self.p {
            Action::Transmit {
                power: self.power,
                message: ctx.node.index() as u64,
            }
        } else {
            Action::Listen
        }
    }
}

/// The in-neighborhood sizes: for each node `u`, how many nodes must hear
/// it (`|{z ≠ u : f(u, z) ≤ F}|`).
pub fn neighborhood_sizes(space: &DecaySpace, f_max: f64) -> Vec<usize> {
    space
        .nodes()
        .map(|u| {
            space
                .nodes()
                .filter(|&z| z != u && space.decay(u, z) <= f_max)
                .count()
        })
        .collect()
}

/// Runs randomized local broadcast; see the module docs.
///
/// # Panics
///
/// Panics on degenerate configs (non-positive decay radius, power or slot
/// budget; explicit probability outside `(0, 1)`).
pub fn run_local_broadcast(
    space: &DecaySpace,
    params: &SinrParams,
    config: &BroadcastConfig,
) -> BroadcastReport {
    assert!(
        config.neighborhood_decay > 0.0,
        "neighborhood radius must be positive"
    );
    assert!(config.power > 0.0, "power must be positive");
    assert!(config.max_slots > 0, "slot budget must be positive");
    let n = space.len();
    let sizes = neighborhood_sizes(space, config.neighborhood_decay);
    let delta = sizes.iter().copied().max().unwrap_or(0);
    let p = match config.probability {
        Some(p) => {
            assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1)");
            p
        }
        None => (0.5 / delta.max(1) as f64).min(0.5),
    };
    // Required ordered pairs (u delivered to z).
    let mut required = vec![false; n * n];
    let mut required_count = 0usize;
    for u in space.nodes() {
        for z in space.nodes() {
            if u != z && space.decay(u, z) <= config.neighborhood_decay {
                required[u.index() * n + z.index()] = true;
                required_count += 1;
            }
        }
    }
    let behaviors = vec![
        Broadcaster {
            p,
            power: config.power,
        };
        n
    ];
    let mut sim = Simulator::new(space.clone(), behaviors, *params, config.seed)
        .expect("behavior count matches");
    sim.set_reception_model(config.reception);
    let mut delivered = vec![false; n * n];
    let mut remaining = required_count;
    let mut completed_in = None;
    for slot in 0..config.max_slots {
        let report = sim.step();
        for d in &report.deliveries {
            let idx = d.from.index() * n + d.to.index();
            if required[idx] && !delivered[idx] {
                delivered[idx] = true;
                remaining -= 1;
            }
        }
        if remaining == 0 {
            completed_in = Some(slot + 1);
            break;
        }
    }
    BroadcastReport {
        completed_in,
        coverage: if required_count == 0 {
            1.0
        } else {
            (required_count - remaining) as f64 / required_count as f64
        },
        required_pairs: required_count,
        probability: p,
        max_neighborhood: delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, alpha: f64) -> DecaySpace {
        DecaySpace::from_fn(n, |i, j| ((i as f64) - (j as f64)).abs().powf(alpha)).unwrap()
    }

    #[test]
    fn broadcast_completes_on_small_line() {
        let s = line(8, 3.0);
        let report = run_local_broadcast(
            &s,
            &SinrParams::default(),
            &BroadcastConfig {
                neighborhood_decay: 8.0, // distance 2 at alpha = 3
                ..Default::default()
            },
        );
        assert_eq!(report.coverage, 1.0);
        assert!(report.completed_in.is_some());
        assert!(report.required_pairs > 0);
    }

    #[test]
    fn neighborhood_sizes_match_geometry() {
        let s = line(5, 2.0);
        // F = 4: neighbors within distance 2.
        let sizes = neighborhood_sizes(&s, 4.0);
        assert_eq!(sizes, vec![2, 3, 4, 3, 2]);
    }

    #[test]
    fn tiny_budget_reports_partial_coverage() {
        let s = line(12, 2.0);
        let report = run_local_broadcast(
            &s,
            &SinrParams::default(),
            &BroadcastConfig {
                neighborhood_decay: 9.0,
                max_slots: 2,
                ..Default::default()
            },
        );
        assert!(report.completed_in.is_none());
        assert!(report.coverage < 1.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let s = line(8, 3.0);
        let cfg = BroadcastConfig {
            neighborhood_decay: 8.0,
            ..Default::default()
        };
        let a = run_local_broadcast(&s, &SinrParams::default(), &cfg);
        let b = run_local_broadcast(&s, &SinrParams::default(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn denser_neighborhoods_take_longer() {
        let s = line(10, 2.0);
        let sparse = run_local_broadcast(
            &s,
            &SinrParams::default(),
            &BroadcastConfig {
                neighborhood_decay: 1.5, // only adjacent nodes
                seed: 3,
                ..Default::default()
            },
        );
        let dense = run_local_broadcast(
            &s,
            &SinrParams::default(),
            &BroadcastConfig {
                neighborhood_decay: 20.0, // distance up to ~4.5
                seed: 3,
                ..Default::default()
            },
        );
        let (Some(a), Some(b)) = (sparse.completed_in, dense.completed_in) else {
            panic!("both runs should complete");
        };
        assert!(b > a, "dense {b} should exceed sparse {a}");
    }

    #[test]
    fn explicit_probability_is_used() {
        let s = line(6, 3.0);
        let report = run_local_broadcast(
            &s,
            &SinrParams::default(),
            &BroadcastConfig {
                neighborhood_decay: 8.0,
                probability: Some(0.25),
                ..Default::default()
            },
        );
        assert_eq!(report.probability, 0.25);
    }

    #[test]
    fn rayleigh_broadcast_completes_with_bounded_slowdown() {
        // The [10] claim in miniature: moving from thresholding to a
        // randomized filter (Rayleigh) preserves correctness; the round
        // count inflates by a bounded factor, not asymptotically.
        let s = line(8, 3.0);
        let base = BroadcastConfig {
            neighborhood_decay: 8.0,
            seed: 5,
            ..Default::default()
        };
        let threshold = run_local_broadcast(&s, &SinrParams::default(), &base);
        let rayleigh = run_local_broadcast(
            &s,
            &SinrParams::default(),
            &BroadcastConfig {
                reception: ReceptionModel::Rayleigh,
                ..base
            },
        );
        let t = threshold.completed_in.expect("threshold completes");
        let r = rayleigh.completed_in.expect("rayleigh completes");
        assert!(
            r <= 20 * t.max(1),
            "rayleigh {r} slots vs threshold {t}: unbounded slowdown"
        );
    }
}
