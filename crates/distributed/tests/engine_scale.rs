//! The engine's scale acceptance test: event-driven local broadcast on a
//! 100k-node *lazy* decay space (never materialized — the dense matrix
//! would be 80 GB) with churn enabled, deterministic in the seed, and
//! resumable from a mid-run checkpoint to an identical final state.

use decay_core::NodeId;
use decay_distributed::{build_broadcast_engine, EventBroadcastConfig};
use decay_engine::{ChurnConfig, Engine, LazyBackend};
use decay_sinr::SinrParams;

const N: usize = 100_000;

/// Geometric path loss (α = 2) on a line of 100k unit-spaced nodes, with
/// an index-window neighbor hint so reachability queries are O(k).
fn backend() -> LazyBackend {
    LazyBackend::from_fn(N, |i, j| {
        let d = (i as f64) - (j as f64);
        d * d
    })
    .with_neighbor_hint(|i, reach| {
        let w = reach.sqrt().ceil() as usize;
        (i.saturating_sub(w)..=(i + w).min(N - 1)).collect()
    })
}

fn config(seed: u64) -> EventBroadcastConfig {
    EventBroadcastConfig {
        neighborhood_decay: 4.0,  // must reach neighbors within distance 2
        probability: Some(0.005), // ~500 concurrent transmitters per tick
        reach_decay: Some(100.0), // signals die past distance 10
        top_k: Some(4),           // prune SINR to the 4 strongest signals
        churn: Some(ChurnConfig {
            interval: 2,
            leave_prob: 0.2,
            join_prob: 0.8,
        }),
        seed,
        ..EventBroadcastConfig::default()
    }
}

const HORIZON: u64 = 120;
const SPLIT: u64 = 60;

#[test]
fn broadcast_100k_lazy_with_churn_is_deterministic_and_checkpointable() {
    let params = SinrParams::default();

    // Run 1: straight through.
    let (mut a, required) = build_broadcast_engine(backend(), &params, &config(42)).unwrap();
    a.run_until(HORIZON);
    let stats_a = a.stats();
    assert!(stats_a.transmissions > 10_000, "stats {stats_a:?}");
    assert!(stats_a.deliveries > 10_000, "stats {stats_a:?}");
    assert!(stats_a.churn_leaves > 0, "churn never fired: {stats_a:?}");
    // Broadcast is making real progress toward its required pairs.
    let covered: usize = required
        .iter()
        .enumerate()
        .map(|(u, receivers)| {
            receivers
                .iter()
                .filter(|&&z| a.behavior(z).has_heard(NodeId::new(u)))
                .count()
        })
        .sum();
    let total: usize = required.iter().map(Vec::len).sum();
    assert!(total > 300_000, "required pairs {total}");
    assert!(
        covered * 10 > total,
        "coverage too low: {covered}/{total} pairs"
    );

    // Run 2: same seed => identical delivery trace.
    let (mut b, _) = build_broadcast_engine(backend(), &params, &config(42)).unwrap();
    b.run_until(HORIZON);
    assert_eq!(a.trace_hash(), b.trace_hash(), "same seed diverged");
    assert_eq!(a.stats(), b.stats());

    // Run 3: different seed => different trace.
    let (mut c, _) = build_broadcast_engine(backend(), &params, &config(43)).unwrap();
    c.run_until(HORIZON);
    assert_ne!(a.trace_hash(), c.trace_hash(), "seeds did not matter");

    // Run 4: checkpoint mid-run, resume in a fresh engine, finish —
    // identical final state and trace.
    let (mut d, _) = build_broadcast_engine(backend(), &params, &config(42)).unwrap();
    d.run_until(SPLIT);
    let snapshot = d.checkpoint();
    d.run_until(HORIZON);
    let mut resumed = Engine::restore(backend(), snapshot).unwrap();
    resumed.run_until(HORIZON);
    assert_eq!(
        d.trace_hash(),
        a.trace_hash(),
        "split run diverged from straight run"
    );
    assert_eq!(resumed.trace_hash(), a.trace_hash(), "resumed run diverged");
    assert_eq!(resumed.stats(), a.stats());
    assert_eq!(resumed.checkpoint(), d.checkpoint(), "final states differ");
}
