//! Property tests: the distributed protocols keep their invariants on
//! arbitrary premetric decay spaces, not just geometric ones.

use decay_core::{DecaySpace, NodeId};
use decay_distributed::{
    adversarial_regret_game, run_contention, AdversarialConfig, AvailabilityModel,
    ContentionConfig, ContentionStrategy, JammingModel,
};
use decay_sinr::{AffectanceMatrix, Link, LinkId, LinkSet, PowerAssignment, SinrParams};
use proptest::prelude::*;

/// Random premetric with m links over 2m nodes.
fn arb_aff(m: usize) -> impl Strategy<Value = AffectanceMatrix> {
    prop::collection::vec(0.2f64..50.0, (2 * m) * (2 * m)).prop_map(move |mut vals| {
        let n = 2 * m;
        for i in 0..n {
            vals[i * n + i] = 0.0;
        }
        let space = DecaySpace::from_matrix(n, vals).expect("positive off-diagonal");
        let links: Vec<Link> = (0..m)
            .map(|i| Link::new(NodeId::new(2 * i), NodeId::new(2 * i + 1)))
            .collect();
        let links = LinkSet::new(&space, links).expect("valid links");
        let powers = PowerAssignment::unit().powers(&space, &links).unwrap();
        AffectanceMatrix::build(&space, &links, &powers, &SinrParams::default()).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    #[test]
    fn contention_delivers_only_viable_links(aff in arb_aff(5), seed in 0u64..100) {
        let report = run_contention(&aff, &ContentionConfig {
            strategy: ContentionStrategy::Fixed { p: 0.2 },
            max_slots: 5_000,
            seed,
        });
        for (i, slot) in report.delivered_slot.iter().enumerate() {
            if slot.is_some() {
                prop_assert!(aff.noise_factor(LinkId::new(i)).is_finite());
                prop_assert!(slot.unwrap() < report.slots_used.max(1));
            }
        }
        if let Some(makespan) = report.makespan() {
            prop_assert!(makespan < report.slots_used.max(1));
        }
    }

    #[test]
    fn contention_backoff_probability_strategies_agree_on_viability(
        aff in arb_aff(4),
        seed in 0u64..50,
    ) {
        let fixed = run_contention(&aff, &ContentionConfig {
            strategy: ContentionStrategy::Fixed { p: 0.3 },
            max_slots: 10_000,
            seed,
        });
        let backoff = run_contention(&aff, &ContentionConfig {
            strategy: ContentionStrategy::Backoff {
                start: 0.5, down: 0.5, up: 1.02, floor: 0.01,
            },
            max_slots: 10_000,
            seed,
        });
        // Viability is a property of the instance, not the strategy.
        prop_assert_eq!(fixed.all_delivered, backoff.all_delivered);
    }

    #[test]
    fn adversarial_best_feasible_is_feasible(
        aff in arb_aff(5),
        round_prob in 0.0f64..0.5,
        avail in 0.3f64..1.0,
        seed in 0u64..100,
    ) {
        let out = adversarial_regret_game(&aff, &AdversarialConfig {
            rounds: 300,
            jamming: JammingModel::Random { round_prob, link_prob: 0.5 },
            availability: AvailabilityModel::Random { prob: avail },
            seed,
            ..Default::default()
        });
        prop_assert!(aff.is_feasible(&out.best_feasible));
        prop_assert_eq!(out.success_history.len(), 300);
        for (i, &rate) in out.availability_rate.iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(&rate), "link {i} rate {rate}");
            let cs = out.conditional_success[i];
            prop_assert!((0.0..=1.0).contains(&cs), "link {i} cs {cs}");
        }
    }

    #[test]
    fn round_robin_availability_is_exact(aff in arb_aff(4), groups in 1usize..4) {
        let rounds = 600;
        let out = adversarial_regret_game(&aff, &AdversarialConfig {
            rounds,
            availability: AvailabilityModel::RoundRobin { groups },
            ..Default::default()
        });
        for (i, &rate) in out.availability_rate.iter().enumerate() {
            let expected = (rounds / groups
                + usize::from(rounds % groups > i % groups)) as f64
                / rounds as f64;
            prop_assert!((rate - expected).abs() < 1e-9, "link {i}: {rate} vs {expected}");
        }
    }
}
