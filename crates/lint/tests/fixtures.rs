//! Per-rule fixture tests: each rule catches its violation, an
//! annotated site passes, and out-of-scope code (tests, timing-gated
//! regions, excluded crates) is exempt.

use decay_lint::rules::{
    Config, RULE_ALLOW_SYNTAX, RULE_AMBIENT_ENTROPY, RULE_ATOMIC_ORDERING, RULE_HASH_ITERATION,
    RULE_UNORDERED_REDUCE, RULE_UNSAFE_SAFETY, RULE_WALL_CLOCK,
};
use decay_lint::{lint_source, Violation};

fn cfg() -> Config {
    Config::workspace()
}

fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
    violations.iter().map(|v| v.rule).collect()
}

// ---------------------------------------------------------------- D1

#[test]
fn d1_hash_decl_in_trace_crate_is_flagged() {
    let src = "pub struct S {\n    map: HashMap<u64, u32>,\n}\n";
    let r = lint_source("crates/core/src/x.rs", src, &cfg());
    assert_eq!(rules_of(&r.violations), vec![RULE_HASH_ITERATION]);
    assert_eq!(r.violations[0].line, 2);
}

#[test]
fn d1_annotated_lookup_only_decl_passes() {
    let src = concat!(
        "pub struct S {\n",
        "    // decay-lint: allow(hash-iteration) — lookup-only: keyed get/insert\n",
        "    map: HashMap<u64, u32>,\n",
        "}\n",
    );
    let r = lint_source("crates/core/src/x.rs", src, &cfg());
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(r.allows[0].used);
}

#[test]
fn d1_iteration_over_tracked_binding_is_flagged_even_when_decl_is_annotated() {
    let src = concat!(
        "// decay-lint: allow(hash-iteration) — lookup-only: keyed access\n",
        "let map: HashMap<u64, u32> = HashMap::new();\n",
        "for (k, v) in map.iter() {\n",
        "    use_it(k, v);\n",
        "}\n",
    );
    let r = lint_source("crates/core/src/x.rs", src, &cfg());
    assert_eq!(rules_of(&r.violations), vec![RULE_HASH_ITERATION]);
    assert_eq!(r.violations[0].line, 3, "the .iter() call site");
}

#[test]
fn d1_for_loop_over_tracked_binding_is_flagged() {
    let src = concat!(
        "// decay-lint: allow(hash-iteration) — lookup-only: keyed access\n",
        "let seen: HashSet<u64> = HashSet::new();\n",
        "for id in &seen {\n",
        "    use_it(id);\n",
        "}\n",
    );
    let r = lint_source("crates/core/src/x.rs", src, &cfg());
    assert_eq!(rules_of(&r.violations), vec![RULE_HASH_ITERATION]);
    assert_eq!(r.violations[0].line, 3);
}

#[test]
fn d1_does_not_apply_outside_trace_affecting_crates() {
    let src = "pub struct S {\n    map: HashMap<u64, u32>,\n}\n";
    let r = lint_source("crates/bench/src/x.rs", src, &cfg());
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn d1_test_code_is_exempt() {
    let src = concat!(
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    fn t() {\n",
        "        let map: HashMap<u64, u32> = HashMap::new();\n",
        "        for (k, _) in map.iter() {}\n",
        "    }\n",
        "}\n",
    );
    let r = lint_source("crates/core/src/x.rs", src, &cfg());
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

// ---------------------------------------------------------------- D2

#[test]
fn d2_ungated_instant_now_is_flagged() {
    let src = "fn f() {\n    let t = Instant::now();\n}\n";
    let r = lint_source("crates/engine/src/x.rs", src, &cfg());
    assert_eq!(rules_of(&r.violations), vec![RULE_WALL_CLOCK]);
    assert_eq!(r.violations[0].line, 2);
}

#[test]
fn d2_timing_gated_code_passes() {
    let src = concat!(
        "#[cfg(feature = \"telemetry-timing\")]\n",
        "fn f() {\n",
        "    let t = Instant::now();\n",
        "}\n",
    );
    let r = lint_source("crates/engine/src/x.rs", src, &cfg());
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn d2_annotated_report_only_site_passes() {
    let src = concat!(
        "fn f() {\n",
        "    // decay-lint: allow(wall-clock) — report-only elapsed display\n",
        "    let t = Instant::now();\n",
        "}\n",
    );
    let r = lint_source("crates/engine/src/x.rs", src, &cfg());
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn d2_excluded_crates_and_imports_are_exempt() {
    let bench = "fn f() {\n    let t = Instant::now();\n}\n";
    let r = lint_source("crates/bench/src/x.rs", bench, &cfg());
    assert!(r.violations.is_empty(), "bench is report-only harness");

    let import = "use std::time::Instant;\nfn f() {}\n";
    let r = lint_source("crates/engine/src/x.rs", import, &cfg());
    assert!(r.violations.is_empty(), "imports alone leak nothing");
}

#[test]
fn d2_systemtime_is_flagged() {
    let src = "fn f() -> SystemTime {\n    SystemTime::now()\n}\n";
    let r = lint_source("crates/core/src/x.rs", src, &cfg());
    assert_eq!(
        rules_of(&r.violations),
        vec![RULE_WALL_CLOCK, RULE_WALL_CLOCK]
    );
}

// ---------------------------------------------------------------- D3

#[test]
fn d3_ambient_entropy_is_flagged_everywhere_even_in_tests() {
    let src = concat!(
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    fn t() {\n",
        "        let mut rng = thread_rng();\n",
        "    }\n",
        "}\n",
    );
    // Support files (benches, integration tests) get D3 too.
    for path in ["crates/core/src/x.rs", "crates/bench/benches/x.rs"] {
        let r = lint_source(path, src, &cfg());
        assert_eq!(
            rules_of(&r.violations),
            vec![RULE_AMBIENT_ENTROPY],
            "{path}"
        );
        assert_eq!(r.violations[0].line, 4);
    }
}

#[test]
fn d3_all_entropy_tokens_are_caught() {
    for snippet in [
        "let r = rand::random::<u64>();",
        "let rng = SmallRng::from_entropy();",
        "let mut os = OsRng;",
        "getrandom(&mut buf);",
    ] {
        let src = format!("fn f() {{\n    {snippet}\n}}\n");
        let r = lint_source("crates/core/src/x.rs", &src, &cfg());
        assert_eq!(
            rules_of(&r.violations),
            vec![RULE_AMBIENT_ENTROPY],
            "{snippet}"
        );
    }
}

#[test]
fn d3_never_fires_on_comments_or_strings() {
    let src = "// thread_rng is forbidden\nlet s = \"thread_rng\";\n";
    let r = lint_source("crates/core/src/x.rs", src, &cfg());
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn d3_seeded_rng_passes() {
    let src = "let rng = SmallRng::seed_from_u64(seed);\n";
    let r = lint_source("crates/core/src/x.rs", src, &cfg());
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

// ---------------------------------------------------------------- D4

#[test]
fn d4_relaxed_outside_telemetry_sink_is_flagged() {
    let src = "fn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
    let r = lint_source("crates/engine/src/x.rs", src, &cfg());
    assert_eq!(rules_of(&r.violations), vec![RULE_ATOMIC_ORDERING]);
    assert_eq!(r.violations[0].line, 2);
}

#[test]
fn d4_relaxed_inside_telemetry_sink_passes() {
    let src = "fn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
    let r = lint_source("crates/core/src/telemetry.rs", src, &cfg());
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn d4_cmp_ordering_is_not_an_atomic_ordering() {
    let src = "fn f(a: u32, b: u32) -> Ordering {\n    if a < b { Ordering::Less } else { Ordering::Equal }\n}\n";
    let r = lint_source("crates/core/src/x.rs", src, &cfg());
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

fn cfg_with_table(table: &str) -> Config {
    let mut c = cfg();
    c.parse_table(table).expect("fixture table parses");
    c
}

#[test]
fn d4_table_match_passes() {
    let c = cfg_with_table("crates/core/src/fixture.rs swap SeqCst 1\n");
    let src = "fn f(p: &AtomicPtr<u8>, q: *mut u8) {\n    p.swap(q, Ordering::SeqCst);\n}\n";
    let r = lint_source("crates/core/src/fixture.rs", src, &c);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn d4_missing_audited_atomic_is_flagged() {
    let c = cfg_with_table("crates/core/src/fixture.rs swap SeqCst 1\n");
    let src = "fn f() {}\n";
    let r = lint_source("crates/core/src/fixture.rs", src, &c);
    assert_eq!(rules_of(&r.violations), vec![RULE_ATOMIC_ORDERING]);
    assert!(r.violations[0].message.contains("expected 1 `swap`"));
}

#[test]
fn d4_atomic_not_in_table_is_flagged() {
    let c = cfg_with_table("crates/core/src/fixture.rs swap SeqCst 1\n");
    let src = concat!(
        "fn f(p: &AtomicPtr<u8>, q: *mut u8, c: &AtomicU64) {\n",
        "    p.swap(q, Ordering::SeqCst);\n",
        "    c.store(1, Ordering::Release);\n",
        "}\n",
    );
    let r = lint_source("crates/core/src/fixture.rs", src, &c);
    assert_eq!(rules_of(&r.violations), vec![RULE_ATOMIC_ORDERING]);
    assert!(r.violations[0]
        .message
        .contains("`store` with `Ordering::Release`"));
}

#[test]
fn d4_weakened_ordering_is_flagged_both_ways() {
    // Table says SeqCst; the code drifted to Acquire.
    let c = cfg_with_table("crates/core/src/fixture.rs load SeqCst 1\n");
    let src = "fn f(c: &AtomicU64) -> u64 {\n    c.load(Ordering::Acquire)\n}\n";
    let r = lint_source("crates/core/src/fixture.rs", src, &c);
    let rules = rules_of(&r.violations);
    assert_eq!(rules, vec![RULE_ATOMIC_ORDERING, RULE_ATOMIC_ORDERING]);
}

#[test]
fn d4_test_code_is_not_audited() {
    let c = cfg_with_table("crates/core/src/fixture.rs swap SeqCst 1\n");
    let src = concat!(
        "fn f(p: &AtomicPtr<u8>, q: *mut u8) {\n",
        "    p.swap(q, Ordering::SeqCst);\n",
        "}\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    fn t(c: &AtomicU64) {\n",
        "        c.store(1, Ordering::Relaxed);\n",
        "    }\n",
        "}\n",
    );
    let r = lint_source("crates/core/src/fixture.rs", src, &c);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

// ---------------------------------------------------------------- D5

#[test]
fn d5_unsafe_without_safety_comment_is_flagged() {
    let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    let r = lint_source("crates/core/src/x.rs", src, &cfg());
    assert_eq!(rules_of(&r.violations), vec![RULE_UNSAFE_SAFETY]);
    assert_eq!(r.violations[0].line, 2);
}

#[test]
fn d5_safety_comment_same_line_or_above_passes() {
    let same =
        "fn f(p: *const u8) -> u8 {\n    unsafe { *p } // SAFETY: caller upholds validity\n}\n";
    let above = concat!(
        "fn f(p: *const u8) -> u8 {\n",
        "    // SAFETY: `p` is derived from a live &u8 two frames up and\n",
        "    // cannot dangle while this borrow is held.\n",
        "    unsafe { *p }\n",
        "}\n",
    );
    for src in [same, above] {
        let r = lint_source("crates/core/src/x.rs", src, &cfg());
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }
}

#[test]
fn d5_safety_comment_above_attributes_passes() {
    let src = concat!(
        "// SAFETY: JobPtr is only dereferenced before the barrier releases.\n",
        "#[allow(dead_code)]\n",
        "unsafe impl Send for JobPtr {}\n",
    );
    let r = lint_source("crates/core/src/x.rs", src, &cfg());
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

// ---------------------------------------------------------------- D6

#[test]
fn d6_unannotated_float_sum_in_merge_path_is_flagged() {
    let src = "fn f(xs: &[f64]) -> f64 {\n    xs.iter().sum()\n}\n";
    let r = lint_source("crates/sinr/src/affectance.rs", src, &cfg());
    assert_eq!(rules_of(&r.violations), vec![RULE_UNORDERED_REDUCE]);
    assert_eq!(r.violations[0].line, 2);
}

#[test]
fn d6_annotated_sum_passes() {
    let src = concat!(
        "fn f(xs: &[f64]) -> f64 {\n",
        "    // decay-lint: allow(unordered-reduce) — slice order is the contract\n",
        "    xs.iter().sum()\n",
        "}\n",
    );
    let r = lint_source("crates/sinr/src/affectance.rs", src, &cfg());
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn d6_min_max_folds_are_exempt() {
    let src =
        "fn f(xs: &[f64]) -> f64 {\n    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)\n}\n";
    let r = lint_source("crates/sinr/src/affectance.rs", src, &cfg());
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn d6_general_fold_is_flagged() {
    let src = "fn f(xs: &[f64]) -> f64 {\n    xs.iter().fold(0.0, |a, b| a + b)\n}\n";
    let r = lint_source("crates/engine/src/engine.rs", src, &cfg());
    // engine.rs is a real D6 file; the fixture source stands in for it.
    assert!(rules_of(&r.violations).contains(&RULE_UNORDERED_REDUCE));
}

#[test]
fn d6_only_applies_to_listed_files() {
    let src = "fn f(xs: &[f64]) -> f64 {\n    xs.iter().sum()\n}\n";
    let r = lint_source("crates/core/src/zeta.rs", src, &cfg());
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

// ------------------------------------------------------- allow-syntax

#[test]
fn bare_allow_without_justification_is_a_violation_and_suppresses_nothing() {
    let src = concat!(
        "// decay-lint: allow(wall-clock)\n",
        "let t = Instant::now();\n",
    );
    let r = lint_source("crates/engine/src/x.rs", src, &cfg());
    let rules = rules_of(&r.violations);
    assert!(rules.contains(&RULE_ALLOW_SYNTAX), "{rules:?}");
    assert!(
        rules.contains(&RULE_WALL_CLOCK),
        "bare allow must not suppress"
    );
}

#[test]
fn unknown_rule_name_in_allow_is_a_violation() {
    let src = "// decay-lint: allow(hash-order) — typo'd rule name\nlet x = 1;\n";
    let r = lint_source("crates/core/src/x.rs", src, &cfg());
    assert_eq!(rules_of(&r.violations), vec![RULE_ALLOW_SYNTAX]);
    assert!(r.violations[0].message.contains("hash-order"));
}

#[test]
fn unused_allow_is_reported_but_not_a_violation() {
    let src = "// decay-lint: allow(wall-clock) — stale: the call moved away\nlet x = 1;\n";
    let r = lint_source("crates/engine/src/x.rs", src, &cfg());
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.allows.len(), 1);
    assert!(!r.allows[0].used);
}

#[test]
fn allow_only_suppresses_the_named_rule() {
    let src = concat!(
        "// decay-lint: allow(hash-iteration) — wrong rule for this site\n",
        "let t = Instant::now();\n",
    );
    let r = lint_source("crates/engine/src/x.rs", src, &cfg());
    assert_eq!(rules_of(&r.violations), vec![RULE_WALL_CLOCK]);
}
