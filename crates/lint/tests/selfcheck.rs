//! The linter's strongest test: the live workspace itself.
//!
//! * `workspace_is_lint_clean` is the same gate CI runs — every
//!   violation in tree is either fixed or carries a justified allow.
//! * `lexer_line_accounting_matches_every_file` pins the stripped view
//!   to the raw view line-for-line, so findings always point at the
//!   right source line (a regression here once mis-attributed every
//!   engine.rs finding by two lines, thanks to a `\<newline>` string
//!   continuation).

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn workspace_is_lint_clean() {
    let report = decay_lint::lint_workspace(&workspace_root()).expect("workspace lints");
    assert!(
        report.violations.is_empty(),
        "the workspace must be decay-lint clean:\n{}",
        report.to_text()
    );
    assert!(report.files_scanned > 100, "walker found the workspace");
}

#[test]
fn workspace_has_no_stale_allows() {
    let report = decay_lint::lint_workspace(&workspace_root()).expect("workspace lints");
    let stale: Vec<String> = report
        .allows
        .iter()
        .filter(|a| !a.used)
        .map(|a| format!("{}:{}", a.path, a.line))
        .collect();
    assert!(
        stale.is_empty(),
        "allow annotations that suppress nothing (delete them): {stale:?}"
    );
}

#[test]
fn lexer_line_accounting_matches_every_file() {
    let root = workspace_root();
    for rel in decay_lint::walk::rust_sources(&root).expect("walk") {
        let source = std::fs::read_to_string(root.join(&rel)).expect("read");
        let model = decay_lint::FileModel::lex(&rel, &source);
        assert_eq!(
            model.lines.len(),
            source.lines().count(),
            "{rel}: stripped line count diverges from the raw file"
        );
        for (i, line) in model.lines.iter().enumerate() {
            assert_eq!(
                line.raw,
                source.lines().nth(i).unwrap(),
                "{rel}:{}: raw line mismatch",
                i + 1
            );
        }
    }
}
