//! A lightweight Rust lexer: enough structure for determinism linting,
//! nothing more.
//!
//! Two passes over each file:
//!
//! 1. **Strip**: comments and the *contents* of string/char literals are
//!    removed from a per-line "code" view (so a rule matching
//!    `thread_rng` can never fire on a doc comment or a fixture string),
//!    while comment text is kept separately for annotation parsing
//!    (`// decay-lint: allow(...)`, `// SAFETY:`).
//! 2. **Regions**: brace/paren/bracket depth is tracked to resolve
//!    `#[cfg(test)]` and `#[cfg(feature = "telemetry-timing")]` regions
//!    (attribute → the `{ ... }` block or `;`/`,`-terminated item it
//!    gates) and the current `mod` path, so rules can exempt test code
//!    and timing-gated code without a real parser.
//!
//! Known, accepted approximations (this is a lint, not a compiler):
//! `#[cfg(...)]` attributes are classified from their own source line
//! (multi-line attributes gate nothing), and a `cfg`-gated `struct`'s
//! region ends at its closing brace rather than covering later impls.

/// One source line, stripped and classified.
#[derive(Debug, Clone)]
pub struct LineInfo {
    /// The line with comments removed and literal contents blanked.
    pub code: String,
    /// The original line, verbatim.
    pub raw: String,
    /// Concatenated comment text appearing on this line.
    pub comment: String,
    /// Inside a `#[cfg(test)]` region (or a file-level test context).
    pub in_test: bool,
    /// Inside a `#[cfg(feature = "telemetry-timing")]` region.
    pub in_timing: bool,
    /// `::`-joined path of enclosing inline modules, `""` at top level.
    pub module_path: String,
}

impl LineInfo {
    /// Whether the stripped code on this line is blank.
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }
}

/// One `// decay-lint: allow(<rules>) — <justification>` annotation.
#[derive(Debug, Clone)]
pub struct AllowSite {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// 1-based code line the annotation suppresses (same line for a
    /// trailing comment, the next non-blank code line otherwise).
    pub target_line: usize,
    /// Rule names listed inside `allow(...)`.
    pub rules: Vec<String>,
    /// Text after the separator; empty means the annotation is bare.
    pub justification: String,
}

/// A lexed file: stripped lines plus parsed allow annotations.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    pub lines: Vec<LineInfo>,
    pub allows: Vec<AllowSite>,
}

impl FileModel {
    /// Lexes `source` as the file at `rel_path`.
    pub fn lex(rel_path: &str, source: &str) -> FileModel {
        let stripped = strip(source);
        let raws: Vec<&str> = source.lines().collect();
        let merged: Vec<StrippedLine> = stripped
            .into_iter()
            .enumerate()
            .map(|(i, (code, comment))| StrippedLine {
                code,
                comment,
                raw: raws.get(i).unwrap_or(&"").to_string(),
            })
            .collect();
        let lines = assign_regions(merged);
        let allows = parse_allows(&lines);
        FileModel {
            rel_path: rel_path.replace('\\', "/"),
            lines,
            allows,
        }
    }

    /// 1-based accessor (panics on 0 or out of range).
    pub fn line(&self, n: usize) -> &LineInfo {
        &self.lines[n - 1]
    }
}

struct StrippedLine {
    code: String,
    comment: String,
    raw: String,
}

/// Pass 1: per-line `(code, comment)` with literals blanked.
fn strip(source: &str) -> Vec<(String, String)> {
    #[derive(PartialEq)]
    enum State {
        Normal,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let chars: Vec<char> = source.chars().collect();
    let mut out = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Normal;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            out.push((std::mem::take(&mut code), std::mem::take(&mut comment)));
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b')
                    && !prev_is_ident(&chars, i)
                    && raw_str_hashes(&chars, i).is_some()
                {
                    let hashes = raw_str_hashes(&chars, i).expect("checked above");
                    let mut j = i;
                    while chars.get(j) != Some(&'"') {
                        j += 1;
                    }
                    code.push('"');
                    code.push('"');
                    state = State::RawStr(hashes);
                    i = j + 1;
                } else if c == '\'' {
                    // Char literal vs lifetime.
                    if next == Some('\\') {
                        i += 2;
                        while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                            i += 1;
                        }
                        if chars.get(i) == Some(&'\'') {
                            i += 1; // past the closing quote; a newline stays
                        }
                        code.push_str("' '");
                    } else if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                        code.push_str("' '");
                        i += 3;
                    } else {
                        code.push('\''); // lifetime
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                let next = chars.get(i + 1).copied();
                if c == '\\' && next.is_some() {
                    // A `\<newline>` continuation must leave the newline
                    // for the top-of-loop line emitter, or every line
                    // after it mis-numbers.
                    i += if next == Some('\n') { 1 } else { 2 };
                } else if c == '"' {
                    code.push('"');
                    state = State::Normal;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_str(&chars, i, hashes) {
                    code.push('"');
                    state = State::Normal;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        out.push((code, comment));
    }
    out
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If position `i` (at `r`, or `b` before `r`) starts a raw string
/// literal, returns its hash count.
fn raw_str_hashes(chars: &[char], mut i: usize) -> Option<u32> {
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    if chars.get(i) != Some(&'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) == Some(&'"') {
        Some(hashes)
    } else {
        None // raw identifier like r#fn, or a plain `r` / `b` ident
    }
}

fn closes_raw_str(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// What a `#[cfg(...)]` attribute gates.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CfgKind {
    Test,
    Timing,
    Neutral,
}

/// Classifies the inner text of a `cfg(...)` attribute. `-` stays a
/// word character so `feature = "slow-tests"` never reads as `test`.
fn classify_cfg(inner: &str) -> CfgKind {
    let inner = inner.trim();
    if inner.starts_with("not") {
        return CfgKind::Neutral;
    }
    for w in inner.split(|c: char| !(c.is_alphanumeric() || c == '-' || c == '_')) {
        if w == "test" {
            return CfgKind::Test;
        }
        if w == "telemetry-timing" {
            return CfgKind::Timing;
        }
    }
    CfgKind::Neutral
}

/// Extracts the balanced-paren inner of the first `#[cfg(` on `raw`.
fn cfg_inner(raw: &str) -> Option<&str> {
    let start = raw.find("#[cfg(")? + "#[cfg(".len();
    let mut depth = 1;
    for (off, c) in raw[start..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&raw[start..start + off]);
                }
            }
            _ => {}
        }
    }
    None
}

/// The module name if the stripped line declares an inline module.
fn mod_decl_name(code: &str) -> Option<String> {
    let tokens: Vec<&str> = code.split_whitespace().collect();
    for (i, t) in tokens.iter().enumerate() {
        if *t == "mod" {
            let name = tokens.get(i + 1)?;
            let name: String = name
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
    }
    None
}

/// Pass 2: cfg-region and mod-path resolution via nesting depth.
fn assign_regions(stripped: Vec<StrippedLine>) -> Vec<LineInfo> {
    struct Region {
        kind: CfgKind,
        baseline: i64,
    }
    struct ModFrame {
        name: String,
        baseline: i64,
    }
    let mut depth: i64 = 0;
    let mut regions: Vec<Region> = Vec::new();
    let mut mods: Vec<ModFrame> = Vec::new();
    // Attributes waiting for the item they gate.
    let mut pending: Vec<CfgKind> = Vec::new();
    let mut pending_baseline: i64 = 0;
    // A `mod <name>` waiting for its `{` (cleared by `;`).
    let mut pending_mod: Option<(String, i64)> = None;

    let mut out = Vec::new();
    for sl in stripped {
        let mut saw_test = regions.iter().any(|r| r.kind == CfgKind::Test);
        let mut saw_timing = regions.iter().any(|r| r.kind == CfgKind::Timing);
        let module_path = mods
            .iter()
            .map(|m| m.name.as_str())
            .collect::<Vec<_>>()
            .join("::");

        // The stripped code proves a real attribute exists (a comment
        // can't reach it); the raw line still has the feature string
        // the classifier needs.
        if sl.code.contains("#[cfg(") {
            if pending.is_empty() {
                pending_baseline = depth;
            }
            pending.push(classify_cfg(cfg_inner(&sl.raw).unwrap_or("")));
        }
        if pending.contains(&CfgKind::Test) {
            saw_test = true;
        }
        if pending.contains(&CfgKind::Timing) {
            saw_timing = true;
        }

        if pending_mod.is_none() && !sl.code.contains("#[cfg(") {
            if let Some(name) = mod_decl_name(&sl.code) {
                pending_mod = Some((name, depth));
            }
        }

        for c in sl.code.chars() {
            match c {
                '{' | '(' | '[' => {
                    if c == '{' {
                        if !pending.is_empty() && depth == pending_baseline {
                            for kind in pending.drain(..) {
                                regions.push(Region {
                                    kind,
                                    baseline: depth,
                                });
                            }
                        }
                        if let Some((name, base)) = pending_mod.take() {
                            if depth == base {
                                mods.push(ModFrame {
                                    name,
                                    baseline: depth,
                                });
                            }
                        }
                    }
                    depth += 1;
                }
                '}' | ')' | ']' => {
                    depth -= 1;
                    regions.retain(|r| depth > r.baseline);
                    mods.retain(|m| depth > m.baseline);
                }
                ';' | ',' => {
                    if !pending.is_empty() && depth == pending_baseline {
                        // The attribute gated a braceless item (a use,
                        // a struct-literal field init, ...) ending here.
                        pending.clear();
                    }
                    if c == ';' {
                        pending_mod = None; // `mod name;` — out-of-line
                    }
                }
                _ => {}
            }
            if regions.iter().any(|r| r.kind == CfgKind::Test) {
                saw_test = true;
            }
            if regions.iter().any(|r| r.kind == CfgKind::Timing) {
                saw_timing = true;
            }
        }

        out.push(LineInfo {
            code: sl.code,
            raw: sl.raw,
            comment: sl.comment,
            in_test: saw_test,
            in_timing: saw_timing,
            module_path,
        });
    }
    out
}

/// The annotation marker. Rules are named inside `allow(...)`; the
/// justification after the separator is mandatory (enforced by the
/// rule engine, which reports bare annotations). The directive must
/// *start* its comment — prose that merely mentions the marker (like
/// this doc comment) is not an annotation.
pub const ALLOW_MARKER: &str = "decay-lint: allow(";

fn parse_allows(lines: &[LineInfo]) -> Vec<AllowSite> {
    let mut allows = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let n = idx + 1;
        // Strip the doc-comment sigil (`/` or `!` after the consumed
        // `//`) and leading space, then require the directive up front.
        let content = line.comment.trim_start_matches(['/', '!']).trim_start();
        if !content.starts_with(ALLOW_MARKER) {
            continue;
        }
        let after = &content[ALLOW_MARKER.len()..];
        let (inner, rest) = match after.find(')') {
            Some(close) => (&after[..close], &after[close + 1..]),
            None => (after, ""),
        };
        let rules: Vec<String> = inner
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let justification = rest
            .trim_start()
            .trim_start_matches(['—', '-', ':', ' '])
            .trim()
            .to_string();
        let target_line = if !line.is_code_blank() {
            n
        } else {
            // Attach to the next non-blank code line.
            lines[idx + 1..]
                .iter()
                .position(|l| !l.is_code_blank())
                .map(|off| n + 1 + off)
                .unwrap_or(n)
        };
        allows.push(AllowSite {
            line: n,
            target_line,
            rules,
            justification,
        });
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        let src =
            "let x = \"thread_rng\"; // Instant::now\nlet y = 1; /* SystemTime */ let z = 2;\n";
        let m = FileModel::lex("crates/core/src/x.rs", src);
        assert!(!m.line(1).code.contains("thread_rng"));
        assert!(!m.line(1).code.contains("Instant"));
        assert!(m.line(1).comment.contains("Instant::now"));
        assert!(m.line(2).code.contains("let z = 2;"));
        assert!(!m.line(2).code.contains("SystemTime"));
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let src = "let s = r#\"Instant::now()\"#;\nlet c = '\\n';\nlet l: &'static str = \"x\";\n";
        let m = FileModel::lex("crates/core/src/x.rs", src);
        assert!(!m.line(1).code.contains("Instant"));
        assert!(m.line(2).code.contains("let c ="));
        assert!(m.line(3).code.contains("'static"));
    }

    #[test]
    fn cfg_test_region_covers_the_block() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() {}\n}\nfn after() {}\n";
        let m = FileModel::lex("crates/core/src/x.rs", src);
        assert!(!m.line(1).in_test);
        assert!(m.line(2).in_test, "attribute line itself is gated");
        assert!(m.line(4).in_test);
        assert!(!m.line(6).in_test);
        assert_eq!(m.line(4).module_path, "tests");
    }

    #[test]
    fn timing_region_covers_fn_and_field_init() {
        let src = concat!(
            "#[cfg(feature = \"telemetry-timing\")]\n",
            "fn span_epoch() {\n",
            "    now();\n",
            "}\n",
            "fn build() -> T {\n",
            "    T {\n",
            "        #[cfg(feature = \"telemetry-timing\")]\n",
            "        at: now(),\n",
            "        other: 1,\n",
            "    }\n",
            "}\n",
        );
        let m = FileModel::lex("crates/core/src/x.rs", src);
        assert!(m.line(3).in_timing);
        assert!(!m.line(5).in_timing);
        assert!(m.line(8).in_timing, "field init is gated");
        assert!(!m.line(9).in_timing, "next field is not");
    }

    #[test]
    fn cfg_not_timing_is_not_a_timing_region() {
        let src = "#[cfg(not(feature = \"telemetry-timing\"))]\nfn fallback() {\n    x();\n}\n";
        let m = FileModel::lex("crates/core/src/x.rs", src);
        assert!(!m.line(3).in_timing);
    }

    #[test]
    fn slow_tests_feature_is_not_a_test_region() {
        let src = "#[cfg(feature = \"slow-tests\")]\nfn e2e() {\n    x();\n}\n";
        let m = FileModel::lex("crates/core/src/x.rs", src);
        assert!(!m.line(3).in_test);
    }

    #[test]
    fn string_line_continuation_keeps_line_numbers() {
        let src = "let s = \"first \\\n    second\";\nlet t = 1;\n";
        let m = FileModel::lex("crates/core/src/x.rs", src);
        assert_eq!(m.lines.len(), src.lines().count());
        assert!(m.line(3).code.contains("let t = 1;"));
    }

    #[test]
    fn marker_mentioned_mid_comment_is_not_an_annotation() {
        let src = "// see the decay-lint: allow(...) syntax in the README\nlet x = 1;\n";
        let m = FileModel::lex("crates/core/src/x.rs", src);
        assert!(m.allows.is_empty());
    }

    #[test]
    fn allow_annotations_parse_with_targets() {
        let src = concat!(
            "// decay-lint: allow(wall-clock) — report-only elapsed\n",
            "let t = now();\n",
            "let u = now(); // decay-lint: allow(wall-clock, ambient-entropy) — two rules\n",
            "// decay-lint: allow(wall-clock)\n",
            "let v = now();\n",
        );
        let m = FileModel::lex("crates/core/src/x.rs", src);
        assert_eq!(m.allows.len(), 3);
        assert_eq!(m.allows[0].target_line, 2);
        assert_eq!(m.allows[0].rules, vec!["wall-clock"]);
        assert!(m.allows[0].justification.contains("report-only"));
        assert_eq!(m.allows[1].target_line, 3);
        assert_eq!(m.allows[1].rules.len(), 2);
        assert_eq!(m.allows[2].target_line, 5);
        assert!(m.allows[2].justification.is_empty(), "bare allow");
    }
}
