//! The decay-lint rule engine: six determinism/concurrency rules over
//! lexed files, with per-site allow annotations.
//!
//! | rule | guards |
//! |------|--------|
//! | D1 `hash-iteration`   | no `HashMap`/`HashSet` in trace-affecting crates without an attested keyed-lookup-only annotation; iteration over them is always flagged |
//! | D2 `wall-clock`       | no `Instant::now` / `SystemTime` outside `telemetry-timing`-gated code or annotated report-only sites |
//! | D3 `ambient-entropy`  | no `thread_rng` / `rand::random` / `from_entropy` / `OsRng` anywhere — randomness flows from seeds |
//! | D4 `atomic-ordering`  | `Ordering::Relaxed` only in the telemetry sink; `epoch.rs`/`shard.rs` orderings must match the checked-in table |
//! | D5 `unsafe-safety`    | every `unsafe` carries a `// SAFETY:` comment |
//! | D6 `unordered-reduce` | iterator reductions in resolve/merge paths must be annotated shard-order-deterministic |
//!
//! Suppression: `// decay-lint: allow(<rule>) — <justification>` on the
//! violating line or the line above. The justification is mandatory; a
//! bare annotation is itself a violation (`allow-syntax`).

use crate::lexer::FileModel;

pub const RULE_HASH_ITERATION: &str = "hash-iteration";
pub const RULE_WALL_CLOCK: &str = "wall-clock";
pub const RULE_AMBIENT_ENTROPY: &str = "ambient-entropy";
pub const RULE_ATOMIC_ORDERING: &str = "atomic-ordering";
pub const RULE_UNSAFE_SAFETY: &str = "unsafe-safety";
pub const RULE_UNORDERED_REDUCE: &str = "unordered-reduce";
/// Meta-rule: malformed / unjustified / unknown-rule annotations.
pub const RULE_ALLOW_SYNTAX: &str = "allow-syntax";

/// Every rule an `allow(...)` may name.
pub const ALL_RULES: [&str; 7] = [
    RULE_HASH_ITERATION,
    RULE_WALL_CLOCK,
    RULE_AMBIENT_ENTROPY,
    RULE_ATOMIC_ORDERING,
    RULE_UNSAFE_SAFETY,
    RULE_UNORDERED_REDUCE,
    RULE_ALLOW_SYNTAX,
];

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub module_path: String,
    pub message: String,
    pub snippet: String,
}

/// One annotation, with whether it suppressed anything.
#[derive(Debug, Clone)]
pub struct AllowReport {
    pub path: String,
    pub line: usize,
    pub rules: Vec<String>,
    pub justification: String,
    pub used: bool,
}

/// The outcome of checking one file.
#[derive(Debug, Default)]
pub struct CheckResult {
    pub violations: Vec<Violation>,
    pub allows: Vec<AllowReport>,
}

/// One expected `(op, ordering)` multiset entry for an audited file.
#[derive(Debug, Clone)]
pub struct TableEntry {
    pub file: String,
    pub op: String,
    pub ordering: String,
    pub count: usize,
}

/// Scopes and the D4 ordering table.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose `src/` is trace-affecting for D1.
    pub d1_crates: Vec<String>,
    /// Crates exempt from D2 (report-only harnesses and this linter).
    pub d2_excluded_crates: Vec<String>,
    /// Files where `Ordering::Relaxed` is legitimate (telemetry sink).
    pub d4_relaxed_files: Vec<String>,
    /// The checked-in (file, op, ordering, count) audit table.
    pub d4_table: Vec<TableEntry>,
    /// Resolve/merge-path files for D6.
    pub d6_files: Vec<String>,
}

impl Config {
    /// The workspace's scopes, with an empty D4 table (load it with
    /// [`Config::parse_table`]).
    pub fn workspace() -> Config {
        Config {
            d1_crates: ["core", "engine", "channel", "sinr", "scenario"]
                .map(String::from)
                .to_vec(),
            d2_excluded_crates: ["bench", "lint"].map(String::from).to_vec(),
            d4_relaxed_files: vec!["crates/core/src/telemetry.rs".to_string()],
            d4_table: Vec::new(),
            d6_files: [
                "crates/engine/src/engine.rs",
                "crates/engine/src/shard.rs",
                "crates/channel/src/temporal.rs",
                "crates/channel/src/channel.rs",
                "crates/sinr/src/affectance.rs",
            ]
            .map(String::from)
            .to_vec(),
        }
    }

    /// Parses the ordering table: `<file> <op> <ordering> <count>` per
    /// line, `#` comments carrying the why.
    pub fn parse_table(&mut self, text: &str) -> Result<(), String> {
        for (n, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 4 {
                return Err(format!(
                    "atomic-orderings table line {}: expected `<file> <op> <ordering> <count>`, got {raw:?}",
                    n + 1
                ));
            }
            let count: usize = fields[3]
                .parse()
                .map_err(|_| format!("atomic-orderings table line {}: bad count", n + 1))?;
            self.d4_table.push(TableEntry {
                file: fields[0].to_string(),
                op: fields[1].to_string(),
                ordering: fields[2].to_string(),
                count,
            });
        }
        Ok(())
    }
}

/// How a file participates in the rule scopes.
#[derive(Debug, PartialEq)]
enum FileKind {
    /// `crates/<name>/src/**` (or the facade `src/`).
    CrateSrc(String),
    /// Integration tests, benches, examples: D3 only.
    Support,
}

fn classify(rel: &str) -> FileKind {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let mut parts = rest.splitn(2, '/');
        let krate = parts.next().unwrap_or("");
        if let Some(tail) = parts.next() {
            if tail.starts_with("src/") {
                return FileKind::CrateSrc(krate.to_string());
            }
        }
        return FileKind::Support;
    }
    if rel.starts_with("src/") {
        return FileKind::CrateSrc("beyond-geometry".to_string());
    }
    FileKind::Support
}

/// Byte offsets where `token` occurs in `code` with non-identifier
/// characters (or the line edge) on both sides.
fn token_positions(code: &str, token: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let end = at + token.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + token.len().max(1);
    }
    out
}

/// Runs every rule over one lexed file.
pub fn check_file(model: &FileModel, cfg: &Config) -> CheckResult {
    let kind = classify(&model.rel_path);
    let mut raw: Vec<Violation> = Vec::new();

    rule_ambient_entropy(model, &mut raw);
    if let FileKind::CrateSrc(krate) = &kind {
        if cfg.d1_crates.iter().any(|c| c == krate) {
            rule_hash_iteration(model, &mut raw);
        }
        if !cfg.d2_excluded_crates.iter().any(|c| c == krate) {
            rule_wall_clock(model, &mut raw);
        }
        rule_atomic_ordering(model, cfg, &mut raw);
        rule_unsafe_safety(model, &mut raw);
        if cfg.d6_files.iter().any(|f| f == &model.rel_path) {
            rule_unordered_reduce(model, &mut raw);
        }
    }

    // Apply allow annotations: a justified allow on the violating line
    // (or attached from the line above) suppresses a matching rule.
    let mut used = vec![false; model.allows.len()];
    let violations: Vec<Violation> = raw
        .into_iter()
        .filter(|v| {
            let mut suppressed = false;
            for (i, a) in model.allows.iter().enumerate() {
                if a.target_line == v.line
                    && a.rules.iter().any(|r| r == v.rule)
                    && !a.justification.is_empty()
                {
                    used[i] = true;
                    suppressed = true;
                }
            }
            !suppressed
        })
        .collect();

    let mut result = CheckResult {
        violations,
        allows: model
            .allows
            .iter()
            .zip(&used)
            .map(|(a, &used)| AllowReport {
                path: model.rel_path.clone(),
                line: a.line,
                rules: a.rules.clone(),
                justification: a.justification.clone(),
                used,
            })
            .collect(),
    };

    // Meta-rule: annotations must be well-formed and justified.
    for a in &model.allows {
        if a.justification.is_empty() {
            result.violations.push(violation(
                RULE_ALLOW_SYNTAX,
                model,
                a.line,
                "allow annotation without the mandatory justification (`— <why>`)".to_string(),
            ));
        }
        for r in &a.rules {
            if !ALL_RULES.contains(&r.as_str()) {
                result.violations.push(violation(
                    RULE_ALLOW_SYNTAX,
                    model,
                    a.line,
                    format!("allow annotation names unknown rule `{r}`"),
                ));
            }
        }
        if a.rules.is_empty() {
            result.violations.push(violation(
                RULE_ALLOW_SYNTAX,
                model,
                a.line,
                "allow annotation lists no rules".to_string(),
            ));
        }
    }

    result.violations.sort_by_key(|v| v.line);
    result
}

fn violation(rule: &'static str, model: &FileModel, line: usize, message: String) -> Violation {
    Violation {
        rule,
        path: model.rel_path.clone(),
        line,
        module_path: model.line(line).module_path.clone(),
        message,
        snippet: model.line(line).raw.trim().to_string(),
    }
}

// ---------------------------------------------------------------- D1

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "extract_if",
];

/// D1: hash containers in trace-affecting crates.
///
/// * Any `HashMap`/`HashSet` *type mention* (declaration, field,
///   signature) must carry an annotation attesting keyed-lookup-only
///   use — constructor paths (`HashMap::new`) and `use` imports ride on
///   the declaration's annotation.
/// * Iteration-order methods (`iter`, `keys`, `values`, `drain`, ...)
///   on a tracked binding, and `for _ in <tracked>` loops, are flagged
///   at the call site: hash order must never leak into a trace.
fn rule_hash_iteration(model: &FileModel, out: &mut Vec<Violation>) {
    let mut tracked: Vec<String> = Vec::new();

    for (idx, line) in model.lines.iter().enumerate() {
        if line.in_test || line.code.trim_start().starts_with("use ") {
            continue;
        }
        for ty in HASH_TYPES {
            for pos in token_positions(&line.code, ty) {
                let after = &line.code[pos + ty.len()..];
                if after.starts_with("::") {
                    continue; // constructor/assoc path; decl already flagged
                }
                out.push(violation(
                    RULE_HASH_ITERATION,
                    model,
                    idx + 1,
                    format!(
                        "`{ty}` in a trace-affecting crate: keyed lookup is fine, iteration \
                         order is not — annotate the declaration as lookup-only or use a \
                         `BTreeMap`/sorted keys"
                    ),
                ));
                if let Some(name) = binder_before(&line.code, pos) {
                    if !tracked.contains(&name) {
                        tracked.push(name);
                    }
                }
            }
        }
    }

    for (idx, line) in model.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for name in &tracked {
            for pos in token_positions(&line.code, name) {
                let rest = line.code[pos + name.len()..].trim_start();
                let Some(m) = rest.strip_prefix('.') else {
                    continue;
                };
                let method: String = m
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if ITER_METHODS.contains(&method.as_str()) {
                    out.push(violation(
                        RULE_HASH_ITERATION,
                        model,
                        idx + 1,
                        format!(
                            "iteration over hash container `{name}` (`.{method}`): hash order \
                             is nondeterministic across runs and must not reach a trace"
                        ),
                    ));
                }
            }
        }
        // `for x in &tracked { ... }`
        if let Some(in_pos) = line.code.find(" in ") {
            if line.code.contains("for ") {
                let expr = line.code[in_pos + 4..]
                    .split('{')
                    .next()
                    .unwrap_or("")
                    .trim()
                    .trim_start_matches('&')
                    .trim_start_matches("mut ")
                    .trim();
                let last = expr.rsplit('.').next().unwrap_or(expr);
                if !last.contains('(') && tracked.iter().any(|t| t == last) {
                    out.push(violation(
                        RULE_HASH_ITERATION,
                        model,
                        idx + 1,
                        format!(
                            "`for` loop over hash container `{last}`: order is nondeterministic"
                        ),
                    ));
                }
            }
        }
    }
}

/// The identifier bound at a `name: [&'a mut] HashMap<...>` or
/// `let [mut] name: HashMap<...>` declaration ending at `pos`.
fn binder_before(code: &str, pos: usize) -> Option<String> {
    let head = code[..pos].trim_end();
    // Strip reference/lifetime/mut noise between `:` and the type.
    let head = head
        .trim_end_matches(|c: char| c.is_alphanumeric() || c == '_' || c == '\'')
        .trim_end()
        .trim_end_matches('&')
        .trim_end();
    let head = head.strip_suffix(':')?.trim_end();
    let name: String = head
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if name.is_empty() || name == "mut" {
        None
    } else {
        Some(name)
    }
}

// ---------------------------------------------------------------- D2

/// D2: wall clock outside `telemetry-timing` regions or annotated
/// report-only sites.
fn rule_wall_clock(model: &FileModel, out: &mut Vec<Violation>) {
    for (idx, line) in model.lines.iter().enumerate() {
        if line.in_test || line.in_timing {
            continue;
        }
        if line.code.trim_start().starts_with("use ") {
            // Imports are harmless; call sites are what leak time.
            continue;
        }
        for token in ["Instant::now", "SystemTime"] {
            if !token_positions(&line.code, token).is_empty() {
                out.push(violation(
                    RULE_WALL_CLOCK,
                    model,
                    idx + 1,
                    format!(
                        "`{token}` outside `telemetry-timing`-gated code: wall clock must \
                         never influence a trace — gate it, or annotate a report-only site"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- D3

/// D3: ambient entropy, forbidden everywhere (tests, benches and
/// examples included) — every random draw flows from an explicit seed.
fn rule_ambient_entropy(model: &FileModel, out: &mut Vec<Violation>) {
    for (idx, line) in model.lines.iter().enumerate() {
        for token in ["thread_rng", "from_entropy", "OsRng", "getrandom"] {
            if !token_positions(&line.code, token).is_empty() {
                out.push(violation(
                    RULE_AMBIENT_ENTROPY,
                    model,
                    idx + 1,
                    format!("`{token}`: ambient entropy is forbidden — thread the run seed"),
                ));
            }
        }
        if line.code.contains("rand::random") {
            out.push(violation(
                RULE_AMBIENT_ENTROPY,
                model,
                idx + 1,
                "`rand::random`: ambient entropy is forbidden — thread the run seed".to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------- D4

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
const ATOMIC_OPS: [&str; 14] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// D4: the atomics-ordering audit.
///
/// * `Ordering::Relaxed` is reserved for the telemetry counter sink
///   (`Config::d4_relaxed_files`) — telemetry orders nothing, but a
///   relaxed atomic anywhere else is a correctness smell.
/// * Files listed in the checked-in table (`epoch.rs`, `shard.rs`) must
///   use exactly the `(op, ordering)` multiset the table records; any
///   drift — a new atomic, a weakened ordering — fails until the table
///   (and its written justification) is updated.
fn rule_atomic_ordering(model: &FileModel, cfg: &Config, out: &mut Vec<Violation>) {
    let audited: Vec<&TableEntry> = cfg
        .d4_table
        .iter()
        .filter(|e| e.file == model.rel_path)
        .collect();
    let mut seen: Vec<(String, String, usize)> = Vec::new(); // (op, ordering, line)

    for (idx, line) in model.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pos in token_positions(&line.code, "Ordering") {
            let after = &line.code[pos + "Ordering".len()..];
            let Some(rest) = after.strip_prefix("::") else {
                continue;
            };
            let Some(ordering) = ORDERINGS.iter().find(|o| {
                rest.starts_with(**o)
                    && !rest[o.len()..]
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
            }) else {
                continue;
            };
            let op = atomic_op_before(&line.code, pos);
            seen.push((op, ordering.to_string(), idx + 1));
            if *ordering == "Relaxed" && !cfg.d4_relaxed_files.iter().any(|f| f == &model.rel_path)
            {
                out.push(violation(
                    RULE_ATOMIC_ORDERING,
                    model,
                    idx + 1,
                    "`Ordering::Relaxed` outside the telemetry sink: relaxed atomics are \
                     reserved for order-free counters"
                        .to_string(),
                ));
            }
        }
    }

    if audited.is_empty() {
        return;
    }
    // Multiset comparison against the table.
    for entry in &audited {
        let got = seen
            .iter()
            .filter(|(op, ord, _)| *op == entry.op && *ord == entry.ordering)
            .count();
        if got != entry.count {
            let line = seen
                .iter()
                .find(|(op, ord, _)| *op == entry.op && *ord == entry.ordering)
                .map(|&(_, _, l)| l)
                .unwrap_or(1);
            out.push(violation(
                RULE_ATOMIC_ORDERING,
                model,
                line,
                format!(
                    "ordering audit: expected {} `{}` with `Ordering::{}`, found {} — update \
                     crates/lint/data/atomic-orderings.txt with a written why if intentional",
                    entry.count, entry.op, entry.ordering, got
                ),
            ));
        }
    }
    for (op, ord, line) in &seen {
        if !audited.iter().any(|e| e.op == *op && e.ordering == *ord) {
            out.push(violation(
                RULE_ATOMIC_ORDERING,
                model,
                *line,
                format!(
                    "ordering audit: `{op}` with `Ordering::{ord}` is not in the checked-in \
                     table — add it to crates/lint/data/atomic-orderings.txt with a written why"
                ),
            ));
        }
    }
}

/// The nearest atomic method call preceding an `Ordering` token.
fn atomic_op_before(code: &str, pos: usize) -> String {
    let head = &code[..pos];
    let mut best: Option<(usize, &str)> = None;
    for op in ATOMIC_OPS {
        let pat = format!(".{op}(");
        if let Some(at) = head.rfind(&pat) {
            if best.is_none_or(|(b, _)| at > b) {
                best = Some((at, op));
            }
        }
    }
    best.map(|(_, op)| op.to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

// ---------------------------------------------------------------- D5

/// D5: every `unsafe` (block, fn, impl) carries a `// SAFETY:` comment
/// on the same line or immediately above (attributes and blank lines
/// may intervene).
fn rule_unsafe_safety(model: &FileModel, out: &mut Vec<Violation>) {
    for (idx, line) in model.lines.iter().enumerate() {
        if line.in_test || token_positions(&line.code, "unsafe").is_empty() {
            continue;
        }
        if has_safety_comment(model, idx) {
            continue;
        }
        out.push(violation(
            RULE_UNSAFE_SAFETY,
            model,
            idx + 1,
            "`unsafe` without a `// SAFETY:` comment stating the invariant that makes it sound"
                .to_string(),
        ));
    }
}

fn has_safety_comment(model: &FileModel, idx: usize) -> bool {
    if model.lines[idx].comment.contains("SAFETY:") {
        return true;
    }
    // Walk up over the comment block / attributes directly above.
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &model.lines[j];
        let code = l.code.trim();
        let is_attr_only = code.starts_with("#[") && code.ends_with(']');
        if code.is_empty() || is_attr_only {
            if l.comment.contains("SAFETY:") {
                return true;
            }
            continue;
        }
        return false;
    }
    false
}

// ---------------------------------------------------------------- D6

/// D6: iterator reductions (`sum` / `fold` / `product`) in resolve/
/// merge-path files must be annotated shard-order-deterministic — the
/// merge contract fixes iteration order, and every float fold must say
/// which order it relies on. `fold(_, f64::min/max)` is exempt: min/max
/// are order-commutative.
fn rule_unordered_reduce(model: &FileModel, out: &mut Vec<Violation>) {
    for (idx, line) in model.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pat in [".sum()", ".product()"] {
            if line.code.contains(pat) {
                out.push(violation(
                    RULE_UNORDERED_REDUCE,
                    model,
                    idx + 1,
                    format!(
                        "`{pat}` in a resolve/merge path: annotate the reduction as \
                         shard-order-deterministic (who fixes the iteration order?)"
                    ),
                ));
            }
        }
        if let Some(pos) = line.code.find(".fold(") {
            let window: String = {
                let mut w = line.code[pos..].to_string();
                if let Some(next) = model.lines.get(idx + 1) {
                    w.push(' ');
                    w.push_str(&next.code);
                }
                w
            };
            if !window.contains("f64::min") && !window.contains("f64::max") {
                out.push(violation(
                    RULE_UNORDERED_REDUCE,
                    model,
                    idx + 1,
                    "`.fold(...)` in a resolve/merge path: annotate the reduction as \
                     shard-order-deterministic (min/max folds are exempt)"
                        .to_string(),
                ));
            }
        }
    }
}
