//! The `decay-lint` CLI.
//!
//! ```text
//! decay-lint [--root <dir>] [--check] [--json <path>] [--quiet] [--list-rules]
//! ```
//!
//! * `--root`  workspace root (default: walk up from the current
//!   directory to the first `Cargo.toml` + `crates/` pair)
//! * `--check` exit nonzero when violations exist (the CI mode)
//! * `--json`  write the `decay-lint-report-v1` artifact
//! * `--quiet` suppress the text report when clean
//! * `--list-rules` print the rule glossary and exit

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut check = false;
    let mut json: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--check" => check = true,
            "--json" => match args.next() {
                Some(path) => json = Some(PathBuf::from(path)),
                None => return usage("--json needs a path"),
            },
            "--quiet" | "-q" => quiet = true,
            "--list-rules" => {
                print!("{}", rule_glossary());
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("decay-lint: no workspace root found (looked for Cargo.toml + crates/)");
            return ExitCode::from(2);
        }
    };

    let report = match decay_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("decay-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("decay-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet || !report.violations.is_empty() {
        print!("{}", report.to_text());
    }
    if check && !report.violations.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("decay-lint: {err}");
    }
    eprintln!(
        "usage: decay-lint [--root <dir>] [--check] [--json <path>] [--quiet] [--list-rules]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn rule_glossary() -> String {
    [
        "D1 hash-iteration    no HashMap/HashSet in trace-affecting crates without a",
        "                     lookup-only annotation; iteration over them always flagged",
        "D2 wall-clock        no Instant::now/SystemTime outside telemetry-timing-gated",
        "                     code or annotated report-only sites",
        "D3 ambient-entropy   no thread_rng/rand::random/from_entropy/OsRng anywhere;",
        "                     all randomness flows from explicit seeds",
        "D4 atomic-ordering   Ordering::Relaxed only in the telemetry sink; epoch.rs/",
        "                     shard.rs orderings must match crates/lint/data/atomic-orderings.txt",
        "D5 unsafe-safety     every `unsafe` carries a `// SAFETY:` comment",
        "D6 unordered-reduce  iterator reductions in resolve/merge paths must be",
        "                     annotated shard-order-deterministic",
        "",
        "allow syntax: // decay-lint: allow(<rule>[, <rule>]) — <mandatory justification>",
    ]
    .join("\n")
        + "\n"
}
