//! `decay-lint`: the workspace determinism & concurrency static-
//! analysis pass.
//!
//! Every claim this reproduction makes — ζ(t) trajectories, PRR
//! series, golden trace digests — rests on runs being bit-identical
//! across backends, lane counts, and resume splits. That contract is
//! exercised dynamically by the proptest suites; this crate enforces
//! it *statically*, so a stray `HashMap` iteration or an ungated
//! `Instant::now` is caught at lint time instead of after a fuzz
//! divergence is minimized.
//!
//! See [`rules`] for the rule glossary (D1–D6), [`lexer`] for the
//! lightweight Rust lexer feeding them, and the README section
//! "Static analysis & the determinism contract" for how each rule maps
//! onto the bit-identical-trace guarantees.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use std::path::Path;

pub use lexer::FileModel;
pub use report::Report;
pub use rules::{check_file, Config, Violation};

/// Lints one in-memory source file — the fixture-test entry point.
pub fn lint_source(rel_path: &str, source: &str, cfg: &Config) -> rules::CheckResult {
    check_file(&FileModel::lex(rel_path, source), cfg)
}

/// Lints the workspace rooted at `root` with the checked-in config
/// (scopes + the committed atomics-ordering table).
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let mut cfg = Config::workspace();
    let table_path = root.join("crates/lint/data/atomic-orderings.txt");
    let table = std::fs::read_to_string(&table_path)
        .map_err(|e| format!("cannot read {}: {e}", table_path.display()))?;
    cfg.parse_table(&table)?;

    let files = walk::rust_sources(root)?;
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        let result = check_file(&FileModel::lex(&rel, &source), &cfg);
        report.violations.extend(result.violations);
        report.allows.extend(result.allows);
    }
    Ok(report)
}
