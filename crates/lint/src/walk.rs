//! Deterministic workspace file walker.
//!
//! Yields workspace-relative paths of every `.rs` file, sorted, so two
//! runs over the same tree produce byte-identical reports — the linter
//! holds itself to the determinism contract it enforces. `vendor/`
//! (offline dependency stand-ins) and build/VCS directories are
//! skipped.

use std::path::Path;

const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "node_modules"];

/// All workspace `.rs` files under `root`, relative, sorted.
pub fn rust_sources(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir)
            .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(relative(root, &path));
            }
        }
    }
    out.sort();
    Ok(out)
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
