//! Text and JSON rendering of lint results.
//!
//! The JSON artifact (`--json <path>`) is `decay-lint-report-v1`: a
//! stable machine-readable record CI uploads next to the job, so a
//! red lint step always leaves the full finding list behind.

use crate::rules::{AllowReport, Violation};

/// Aggregated results across the whole walk.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
    pub allows: Vec<AllowReport>,
}

impl Report {
    /// Human-readable rendering, grouped by file.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut last_file = "";
        for v in &self.violations {
            if v.path != last_file {
                if !last_file.is_empty() {
                    out.push('\n');
                }
                out.push_str(&v.path);
                out.push('\n');
                last_file = &v.path;
            }
            let module = if v.module_path.is_empty() {
                String::new()
            } else {
                format!(" (in {})", v.module_path)
            };
            out.push_str(&format!(
                "  {}:{} [{}]{} {}\n      > {}\n",
                v.path, v.line, v.rule, module, v.message, v.snippet
            ));
        }
        let unused: Vec<&AllowReport> = self.allows.iter().filter(|a| !a.used).collect();
        if !unused.is_empty() {
            out.push_str("\nnote: allow annotations that suppressed nothing (stale?):\n");
            for a in unused {
                out.push_str(&format!(
                    "  {}:{} allow({})\n",
                    a.path,
                    a.line,
                    a.rules.join(", ")
                ));
            }
        }
        out.push_str(&format!(
            "\n{} violation{} across {} file{} scanned; {} allow annotation{} ({} active)\n",
            self.violations.len(),
            plural(self.violations.len()),
            self.files_scanned,
            plural(self.files_scanned),
            self.allows.len(),
            plural(self.allows.len()),
            self.allows.iter().filter(|a| a.used).count(),
        ));
        out
    }

    /// The `decay-lint-report-v1` JSON artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"format\": \"decay-lint-report-v1\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"violation_count\": {},\n",
            self.violations.len()
        ));
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"module\": {}, \"message\": {}, \"snippet\": {}}}",
                json_str(v.rule),
                json_str(&v.path),
                v.line,
                json_str(&v.module_path),
                json_str(&v.message),
                json_str(&v.snippet),
            ));
        }
        out.push_str("\n  ],\n  \"allows\": [");
        for (i, a) in self.allows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let rules = a
                .rules
                .iter()
                .map(|r| json_str(r))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "\n    {{\"path\": {}, \"line\": {}, \"rules\": [{}], \"justification\": {}, \"used\": {}}}",
                json_str(&a.path),
                a.line,
                rules,
                json_str(&a.justification),
                a.used,
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Minimal JSON string escaping (the linter is dependency-free by
/// design, so it carries its own ten lines of escaping).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
