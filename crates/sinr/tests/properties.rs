//! Property-based tests for SINR invariants over random link deployments.

use decay_core::{metricity, DecaySpace, NodeId, QuasiMetric};
use decay_sinr::{
    is_link_set_separated, is_monotone, separation_of, separation_partition, signal_strengthen,
    sinr_feasible, AffectanceMatrix, Link, LinkId, LinkSet, PowerAssignment, SinrParams,
};
use proptest::prelude::*;

/// Random planar deployment: `m` links with senders/receivers in a box.
fn arb_deployment(m: usize) -> impl Strategy<Value = (DecaySpace, LinkSet)> {
    let coords = prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 2 * m);
    (coords, 1.5f64..4.0).prop_map(move |(pts, alpha)| {
        // Perturb duplicates deterministically so all nodes are distinct.
        let mut pts = pts;
        for i in 0..pts.len() {
            for j in 0..i {
                let dx = pts[i].0 - pts[j].0;
                let dy = pts[i].1 - pts[j].1;
                if (dx * dx + dy * dy).sqrt() < 1e-6 {
                    pts[i].0 += 0.01 * (i as f64 + 1.0);
                    pts[i].1 += 0.013 * (i as f64 + 1.0);
                }
            }
        }
        let space = DecaySpace::from_fn(pts.len(), |i, j| {
            let dx = pts[i].0 - pts[j].0;
            let dy = pts[i].1 - pts[j].1;
            (dx * dx + dy * dy).sqrt().powf(alpha).max(1e-12)
        })
        .expect("distinct points give positive decays");
        let links: Vec<Link> = (0..m)
            .map(|i| Link::new(NodeId::new(2 * i), NodeId::new(2 * i + 1)))
            .collect();
        let ls = LinkSet::new(&space, links).expect("valid links");
        (space, ls)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn affectance_feasibility_equals_sinr_feasibility(
        (space, links) in arb_deployment(5),
        noise in 0.0f64..0.0001,
    ) {
        let params = SinrParams::new(1.0, noise).unwrap();
        let powers = PowerAssignment::unit().powers(&space, &links).unwrap();
        let aff = AffectanceMatrix::build(&space, &links, &powers, &params).unwrap();
        let all: Vec<LinkId> = links.ids().collect();
        prop_assert_eq!(
            aff.is_feasible(&all),
            sinr_feasible(&space, &links, &powers, &params, &all)
        );
    }

    #[test]
    fn strengthened_classes_hit_target(
        (space, links) in arb_deployment(6),
        q in 1.5f64..6.0,
    ) {
        let params = SinrParams::default();
        let powers = PowerAssignment::unit().powers(&space, &links).unwrap();
        let aff = AffectanceMatrix::build(&space, &links, &powers, &params).unwrap();
        let all: Vec<LinkId> = links.ids().collect();
        if aff.feasibility_strength(&all) > 0.0 {
            // Strengthen whatever strength the set has to q.
            let feasible: Vec<LinkId> = all
                .iter()
                .copied()
                .filter(|&v| aff.noise_factor(v).is_finite())
                .collect();
            if let Ok(classes) = signal_strengthen(&aff, &feasible, q) {
                let mut seen: Vec<LinkId> = classes.iter().flatten().copied().collect();
                seen.sort();
                let mut expect = feasible.clone();
                expect.sort();
                prop_assert_eq!(seen, expect);
                for class in &classes {
                    prop_assert!(aff.is_k_feasible(class, q));
                }
            }
        }
    }

    #[test]
    fn separation_partition_output_is_separated(
        (space, links) in arb_deployment(6),
        eta in 0.5f64..4.0,
    ) {
        let zeta = metricity(&space).zeta_at_least_one();
        let quasi = QuasiMetric::from_space_with_exponent(&space, zeta);
        let all: Vec<LinkId> = links.ids().collect();
        let classes = separation_partition(&quasi, &links, &all, eta);
        let total: usize = classes.iter().map(Vec::len).sum();
        prop_assert_eq!(total, all.len());
        for class in &classes {
            prop_assert!(is_link_set_separated(&quasi, &links, class, eta));
            prop_assert!(separation_of(&quasi, &links, class) >= eta || class.len() < 2);
        }
    }

    #[test]
    fn oblivious_powers_are_monotone(
        (space, links) in arb_deployment(5),
        tau in 0.0f64..1.0,
    ) {
        let p = PowerAssignment::Oblivious { tau, scale: 1.0 }
            .powers(&space, &links)
            .unwrap();
        prop_assert!(is_monotone(&space, &links, &p, 1e-9));
    }

    #[test]
    fn subsets_of_feasible_sets_are_feasible(
        (space, links) in arb_deployment(6),
    ) {
        let params = SinrParams::default();
        let powers = PowerAssignment::unit().powers(&space, &links).unwrap();
        let aff = AffectanceMatrix::build(&space, &links, &powers, &params).unwrap();
        let all: Vec<LinkId> = links.ids().collect();
        if aff.is_feasible(&all) {
            // Dropping any one link preserves feasibility (interference
            // only decreases).
            for drop in &all {
                let sub: Vec<LinkId> =
                    all.iter().copied().filter(|v| v != drop).collect();
                prop_assert!(aff.is_feasible(&sub));
            }
        }
    }
}
