//! Error types for link-set construction and SINR computations.

use std::error::Error;
use std::fmt;

/// Errors for link sets and SINR machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum SinrError {
    /// A link endpoint was outside the decay space.
    EndpointOutOfRange {
        /// Index of the offending link.
        link: usize,
        /// Number of nodes in the space.
        nodes: usize,
    },
    /// A link's sender equals its receiver.
    SelfLoop {
        /// Index of the offending link.
        link: usize,
    },
    /// A power value was not finite and positive.
    InvalidPower {
        /// Index of the offending link.
        link: usize,
        /// The offending value.
        value: f64,
    },
    /// A power vector had the wrong length for the link set.
    PowerLengthMismatch {
        /// Number of links.
        links: usize,
        /// Number of powers supplied.
        powers: usize,
    },
    /// SINR threshold `beta` must be at least 1 (paper assumption).
    InvalidBeta {
        /// The offending value.
        value: f64,
    },
    /// Ambient noise must be finite and non-negative.
    InvalidNoise {
        /// The offending value.
        value: f64,
    },
    /// The input set was expected to be feasible (or `K`-feasible) but was
    /// not.
    NotFeasible {
        /// Worst in-affectance observed.
        worst_affectance: f64,
    },
}

impl fmt::Display for SinrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SinrError::EndpointOutOfRange { link, nodes } => {
                write!(
                    f,
                    "link {link} has an endpoint outside the {nodes}-node space"
                )
            }
            SinrError::SelfLoop { link } => {
                write!(f, "link {link} is a self-loop (sender equals receiver)")
            }
            SinrError::InvalidPower { link, value } => {
                write!(
                    f,
                    "power of link {link} must be positive and finite, got {value}"
                )
            }
            SinrError::PowerLengthMismatch { links, powers } => {
                write!(f, "expected {links} power values, got {powers}")
            }
            SinrError::InvalidBeta { value } => {
                write!(f, "sinr threshold beta must be >= 1, got {value}")
            }
            SinrError::InvalidNoise { value } => {
                write!(
                    f,
                    "ambient noise must be finite and non-negative, got {value}"
                )
            }
            SinrError::NotFeasible { worst_affectance } => {
                write!(
                    f,
                    "input set is not feasible (worst in-affectance {worst_affectance})"
                )
            }
        }
    }
}

impl Error for SinrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let errs = [
            SinrError::EndpointOutOfRange { link: 1, nodes: 4 }.to_string(),
            SinrError::SelfLoop { link: 0 }.to_string(),
            SinrError::InvalidPower {
                link: 2,
                value: -1.0,
            }
            .to_string(),
            SinrError::PowerLengthMismatch {
                links: 3,
                powers: 2,
            }
            .to_string(),
            SinrError::InvalidBeta { value: 0.5 }.to_string(),
            SinrError::InvalidNoise { value: -2.0 }.to_string(),
            SinrError::NotFeasible {
                worst_affectance: 3.0,
            }
            .to_string(),
        ];
        for e in errs {
            assert!(!e.is_empty());
            assert!(e.chars().next().unwrap().is_lowercase());
        }
    }
}
