//! # decay-sinr
//!
//! SINR machinery over decay spaces: links, power assignments, affectance,
//! feasibility, and the partition lemmas of *Beyond Geometry* (PODC 2014).
//!
//! The flow mirrors the paper's Section 2:
//!
//! 1. Build a [`decay_core::DecaySpace`] (measured, simulated or
//!    geometric).
//! 2. Declare a [`LinkSet`] of sender/receiver pairs and a
//!    [`PowerAssignment`] (uniform / oblivious / custom).
//! 3. Build an [`AffectanceMatrix`] under some [`SinrParams`] and query
//!    feasibility, `K`-feasibility, in/out-affectances, or raw SINR.
//! 4. Use [`signal_strengthen`] (Lemma B.1), link separation (Lemma B.2)
//!    and [`separation_partition`]/[`sparsify_feasible`] (Lemmas B.3/4.1)
//!    as algorithmic building blocks.
//!
//! # Examples
//!
//! ```
//! use decay_core::{DecaySpace, NodeId};
//! use decay_sinr::{
//!     AffectanceMatrix, Link, LinkId, LinkSet, PowerAssignment, SinrParams,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two parallel links far apart: feasible together.
//! let pos = [0.0_f64, 1.0, 10.0, 11.0];
//! let space = DecaySpace::from_fn(4, |i, j| (pos[i] - pos[j]).abs().powi(2))?;
//! let links = LinkSet::new(&space, vec![
//!     Link::new(NodeId::new(0), NodeId::new(1)),
//!     Link::new(NodeId::new(2), NodeId::new(3)),
//! ])?;
//! let powers = PowerAssignment::unit().powers(&space, &links)?;
//! let aff = AffectanceMatrix::build(&space, &links, &powers, &SinrParams::default())?;
//! let all: Vec<LinkId> = links.ids().collect();
//! assert!(aff.is_feasible(&all));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod affectance;
mod error;
mod inductive;
mod link;
mod partition;
mod power;
mod separation;
mod strengthen;

pub use affectance::{sinr, sinr_feasible, AffectanceMatrix, SinrParams};
pub use error::SinrError;
pub use inductive::{
    inductive_independence, sample_feasible_sets, CIndependence, ConflictGraph,
    EXACT_NEIGHBORHOOD_LIMIT,
};
pub use link::{Link, LinkId, LinkSet};
pub use partition::{separation_partition, sparsify_feasible};
pub use power::{is_monotone, PowerAssignment};
pub use separation::{
    is_link_separated_from, is_link_set_separated, link_distance, link_length, separation_of,
};
pub use strengthen::{signal_strengthen, strengthening_bound};
