//! Links and link sets (Section 2.1).
//!
//! A link `l_v = (s_v, r_v)` is an ordered sender/receiver pair of nodes in
//! a decay space. The *link decay* `f_vv = f(s_v, r_v)` plays the role the
//! link length plays in geometric SINR; the total order `≺` on links sorts
//! by non-decreasing link decay.

use std::fmt;

use decay_core::{DecaySpace, NodeId};
use serde::{Deserialize, Serialize};

use crate::error::SinrError;

/// Identifier of a link within a link set (a dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(usize);

impl LinkId {
    /// Creates a link id from a raw index.
    pub const fn new(index: usize) -> Self {
        LinkId(index)
    }

    /// The raw index of this link.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl From<usize> for LinkId {
    fn from(index: usize) -> Self {
        LinkId(index)
    }
}

/// A communication link: sender and receiver nodes in a decay space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Link {
    /// The sending node `s_v`.
    pub sender: NodeId,
    /// The receiving node `r_v`.
    pub receiver: NodeId,
}

impl Link {
    /// Creates a link from sender to receiver.
    pub const fn new(sender: NodeId, receiver: NodeId) -> Self {
        Link { sender, receiver }
    }

    /// The link decay `f_vv = f(s_v, r_v)` — the "length" of the link in
    /// decay terms.
    pub fn decay(&self, space: &DecaySpace) -> f64 {
        space.decay(self.sender, self.receiver)
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} -> {})", self.sender, self.receiver)
    }
}

/// An ordered collection of links over one decay space.
///
/// Construction validates that all endpoints are in range and that no link
/// is a self-loop (a self-loop has decay zero, i.e. infinite signal, which
/// the model excludes).
///
/// # Examples
///
/// ```
/// use decay_core::{DecaySpace, NodeId};
/// use decay_sinr::{Link, LinkSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = DecaySpace::from_fn(4, |i, j| {
///     ((i as f64) - (j as f64)).abs().powi(2)
/// })?;
/// let links = LinkSet::new(&space, vec![
///     Link::new(NodeId::new(0), NodeId::new(1)),
///     Link::new(NodeId::new(2), NodeId::new(3)),
/// ])?;
/// assert_eq!(links.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSet {
    links: Vec<Link>,
}

impl LinkSet {
    /// Creates a validated link set over the given space.
    ///
    /// # Errors
    ///
    /// Returns an error if any endpoint is out of range for the space, or
    /// if any link is a self-loop.
    pub fn new(space: &DecaySpace, links: Vec<Link>) -> Result<Self, SinrError> {
        for (i, l) in links.iter().enumerate() {
            if l.sender.index() >= space.len() || l.receiver.index() >= space.len() {
                return Err(SinrError::EndpointOutOfRange {
                    link: i,
                    nodes: space.len(),
                });
            }
            if l.sender == l.receiver {
                return Err(SinrError::SelfLoop { link: i });
            }
        }
        Ok(LinkSet { links })
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the set has no links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The link with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn link(&self, id: LinkId) -> Link {
        self.links[id.index()]
    }

    /// Iterator over `(id, link)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LinkId, Link)> + '_ {
        self.links
            .iter()
            .enumerate()
            .map(|(i, &l)| (LinkId::new(i), l))
    }

    /// All link ids.
    pub fn ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len()).map(LinkId::new)
    }

    /// The link decay `f_vv` of the given link.
    pub fn decay_of(&self, space: &DecaySpace, id: LinkId) -> f64 {
        self.link(id).decay(space)
    }

    /// Link ids sorted by non-decreasing link decay — the total order `≺`
    /// of Section 2.4 (ties broken by id for determinism).
    pub fn ids_by_decay(&self, space: &DecaySpace) -> Vec<LinkId> {
        let mut ids: Vec<LinkId> = self.ids().collect();
        ids.sort_by(|&a, &b| {
            self.decay_of(space, a)
                .partial_cmp(&self.decay_of(space, b))
                .unwrap()
                .then(a.index().cmp(&b.index()))
        });
        ids
    }

    /// View of the underlying links.
    pub fn as_slice(&self) -> &[Link] {
        &self.links
    }
}

impl fmt::Display for LinkSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LinkSet({} links)", self.links.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> DecaySpace {
        DecaySpace::from_fn(5, |i, j| ((i as f64) - (j as f64)).abs().powi(2)).unwrap()
    }

    #[test]
    fn rejects_out_of_range_endpoints() {
        let s = space();
        let err = LinkSet::new(&s, vec![Link::new(NodeId::new(0), NodeId::new(9))]).unwrap_err();
        assert!(matches!(err, SinrError::EndpointOutOfRange { link: 0, .. }));
    }

    #[test]
    fn rejects_self_loops() {
        let s = space();
        let err = LinkSet::new(&s, vec![Link::new(NodeId::new(2), NodeId::new(2))]).unwrap_err();
        assert!(matches!(err, SinrError::SelfLoop { link: 0 }));
    }

    #[test]
    fn decay_is_sender_to_receiver() {
        let s = space();
        let ls = LinkSet::new(&s, vec![Link::new(NodeId::new(0), NodeId::new(3))]).unwrap();
        assert_eq!(ls.decay_of(&s, LinkId::new(0)), 9.0);
    }

    #[test]
    fn order_by_decay() {
        let s = space();
        let ls = LinkSet::new(
            &s,
            vec![
                Link::new(NodeId::new(0), NodeId::new(4)), // decay 16
                Link::new(NodeId::new(0), NodeId::new(1)), // decay 1
                Link::new(NodeId::new(1), NodeId::new(3)), // decay 4
            ],
        )
        .unwrap();
        let order = ls.ids_by_decay(&s);
        assert_eq!(order, vec![LinkId::new(1), LinkId::new(2), LinkId::new(0)]);
    }

    #[test]
    fn display_formats() {
        let l = Link::new(NodeId::new(0), NodeId::new(1));
        assert_eq!(format!("{l}"), "(v0 -> v1)");
        assert_eq!(format!("{}", LinkId::new(2)), "l2");
    }

    #[test]
    fn iteration() {
        let s = space();
        let ls = LinkSet::new(
            &s,
            vec![
                Link::new(NodeId::new(0), NodeId::new(1)),
                Link::new(NodeId::new(2), NodeId::new(3)),
            ],
        )
        .unwrap();
        assert_eq!(ls.iter().count(), 2);
        assert_eq!(ls.ids().count(), 2);
        assert!(!ls.is_empty());
    }
}
