//! Separation partitions (Lemma B.3) and sparsity strengthening
//! (Lemma 4.1).
//!
//! Lemma B.3: a `τ`-separated set of links in a decay space whose
//! quasi-metric has doubling dimension `A′` can be partitioned into
//! `O((η/τ)^{A′})` sets, each `η`-separated. The construction is
//! first-fit coloring in non-increasing length order of the conflict graph
//! whose edges join pairs violating `η`-separation; the ordering is
//! `ρ`-inductive with `ρ = O((η/τ)^{A′})` by a packing argument.
//!
//! Lemma 4.1 composes Lemma B.1 (strengthen to `e²/β`-feasible), Lemma B.2
//! (such sets are `1/ζ`-separated) and Lemma B.3 (boost separation to `ζ`)
//! to turn any feasible set into `O(ζ²·2^{A′})` ζ-separated classes.

use decay_core::QuasiMetric;

use crate::affectance::AffectanceMatrix;
use crate::error::SinrError;
use crate::link::{LinkId, LinkSet};
use crate::separation::{is_link_set_separated, link_distance, link_length};
use crate::strengthen::signal_strengthen;

/// Partitions `set` into `η`-separated classes by first-fit coloring in
/// non-increasing link-length order (Lemma B.3).
///
/// Every returned class is `η`-separated by construction (conflict-graph
/// independence is exactly the separation predicate); the class count is
/// `O((η/τ)^{A′})` when `set` was `τ`-separated.
pub fn separation_partition(
    quasi: &QuasiMetric,
    links: &LinkSet,
    set: &[LinkId],
    eta: f64,
) -> Vec<Vec<LinkId>> {
    if set.is_empty() {
        return Vec::new();
    }
    // Conflict: the pair violates mutual eta-separation.
    let conflicts = |v: LinkId, w: LinkId| {
        let d = link_distance(quasi, links, v, w);
        let dvv = link_length(quasi, links, v);
        let dww = link_length(quasi, links, w);
        d < eta * dvv.max(dww)
    };
    // Non-increasing length order (rho-inductive per the packing argument).
    let mut order = set.to_vec();
    order.sort_by(|&a, &b| {
        link_length(quasi, links, b)
            .partial_cmp(&link_length(quasi, links, a))
            .unwrap()
            .then(a.index().cmp(&b.index()))
    });
    let mut classes: Vec<Vec<LinkId>> = Vec::new();
    for v in order {
        let mut placed = false;
        for class in classes.iter_mut() {
            if class.iter().all(|&w| !conflicts(v, w)) {
                class.push(v);
                placed = true;
                break;
            }
        }
        if !placed {
            classes.push(vec![v]);
        }
    }
    classes
}

/// Sparsity strengthening (Lemma 4.1): partitions a feasible set into
/// `ζ`-separated classes — `O(ζ²·2^{A′})` of them — by signal
/// strengthening to `e²/β` followed by separation partitioning.
///
/// # Errors
///
/// Returns [`SinrError::NotFeasible`] when some member cannot clear the
/// noise floor.
pub fn sparsify_feasible(
    aff: &AffectanceMatrix,
    quasi: &QuasiMetric,
    links: &LinkSet,
    set: &[LinkId],
    beta: f64,
) -> Result<Vec<Vec<LinkId>>, SinrError> {
    let zeta = quasi.zeta();
    let q = std::f64::consts::E.powi(2) / beta;
    let strengthened = signal_strengthen(aff, set, q)?;
    let mut out = Vec::new();
    for class in strengthened {
        // Lemma B.2 makes each class 1/zeta-separated; Lemma B.3 lifts the
        // separation to zeta.
        for sub in separation_partition(quasi, links, &class, zeta) {
            debug_assert!(is_link_set_separated(quasi, links, &sub, zeta));
            out.push(sub);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affectance::SinrParams;
    use crate::link::Link;
    use crate::power::PowerAssignment;
    use decay_core::{metricity, DecaySpace, NodeId};

    /// m parallel unit links spaced `gap` apart, geometric alpha = 2.
    fn setup(m: usize, gap: f64) -> (DecaySpace, LinkSet) {
        let mut pos = Vec::new();
        for i in 0..m {
            pos.push(i as f64 * gap);
            pos.push(i as f64 * gap + 1.0);
        }
        let s = DecaySpace::from_fn(pos.len(), |i, j| (pos[i] - pos[j]).abs().powi(2)).unwrap();
        let links: Vec<Link> = (0..m)
            .map(|i| Link::new(NodeId::new(2 * i), NodeId::new(2 * i + 1)))
            .collect();
        let ls = LinkSet::new(&s, links).unwrap();
        (s, ls)
    }

    #[test]
    fn separation_partition_classes_are_separated() {
        let (s, ls) = setup(10, 3.0);
        let zeta = metricity(&s).zeta_at_least_one();
        let q = QuasiMetric::from_space_with_exponent(&s, zeta);
        let set: Vec<LinkId> = ls.ids().collect();
        for eta in [1.0, 2.0, 4.0] {
            let classes = separation_partition(&q, &ls, &set, eta);
            let total: usize = classes.iter().map(Vec::len).sum();
            assert_eq!(total, set.len());
            for class in &classes {
                assert!(
                    is_link_set_separated(&q, &ls, class, eta),
                    "eta={eta}: class {class:?} not separated"
                );
            }
        }
    }

    #[test]
    fn larger_eta_needs_no_fewer_classes() {
        let (s, ls) = setup(12, 2.0);
        let q = QuasiMetric::from_space_with_exponent(&s, 2.0);
        let set: Vec<LinkId> = ls.ids().collect();
        let c2 = separation_partition(&q, &ls, &set, 2.0).len();
        let c8 = separation_partition(&q, &ls, &set, 8.0).len();
        assert!(c8 >= c2, "c8={c8} c2={c2}");
    }

    #[test]
    fn sparsify_feasible_produces_zeta_separated_classes() {
        let (s, ls) = setup(12, 6.0);
        let params = SinrParams::default();
        let powers = PowerAssignment::unit().powers(&s, &ls).unwrap();
        let aff = AffectanceMatrix::build(&s, &ls, &powers, &params).unwrap();
        let set: Vec<LinkId> = ls.ids().collect();
        assert!(aff.is_feasible(&set), "base set should be feasible");
        let zeta = metricity(&s).zeta_at_least_one();
        let quasi = QuasiMetric::from_space_with_exponent(&s, zeta);
        let classes = sparsify_feasible(&aff, &quasi, &ls, &set, params.beta()).unwrap();
        let total: usize = classes.iter().map(Vec::len).sum();
        assert_eq!(total, set.len());
        for class in &classes {
            assert!(is_link_set_separated(&quasi, &ls, class, zeta));
        }
        // Lemma 4.1 shape: class count bounded by O(zeta^2 * 2^{A'}); on a
        // line (A' ~ 1) with zeta = 2 a generous constant check suffices.
        assert!(
            classes.len() <= (zeta * zeta * 2.0 * 8.0).ceil() as usize,
            "classes = {}",
            classes.len()
        );
    }

    #[test]
    fn empty_set_partitions_trivially() {
        let (s, ls) = setup(2, 5.0);
        let q = QuasiMetric::from_space_with_exponent(&s, 2.0);
        assert!(separation_partition(&q, &ls, &[], 2.0).is_empty());
    }

    #[test]
    fn singleton_is_one_class() {
        let (s, ls) = setup(3, 5.0);
        let q = QuasiMetric::from_space_with_exponent(&s, 2.0);
        let classes = separation_partition(&q, &ls, &[LinkId::new(1)], 4.0);
        assert_eq!(classes, vec![vec![LinkId::new(1)]]);
    }
}
