//! Signal strengthening (Lemma B.1, from Halldórsson–Wattenhofer [35]).
//!
//! Any `p`-feasible set can be partitioned into at most `⌈2q/p⌉²` sets,
//! each `q`-feasible. The construction is the classic two-pass argmin
//! assignment:
//!
//! 1. Scan the links in a fixed order, keeping `k = ⌈2q/p⌉` groups;
//!    place each link in the group where its in-affectance from the links
//!    already placed is smallest. Since the groups partition the earlier
//!    links, the minimum is at most `(1/p)/k ≤ 1/(2q)`.
//! 2. Repartition each group the same way scanning in *reverse* order,
//!    bounding the in-affectance from later links by another `1/(2q)`.
//!
//! In-affectance from a subset only shrinks, so the pass-1 guarantee
//! survives pass 2 and every final class has total in-affectance at most
//! `1/q` at every member.

use crate::affectance::AffectanceMatrix;
use crate::error::SinrError;
use crate::link::LinkId;

/// Partitions a `p`-feasible set into at most `⌈2q/p⌉²` classes, each
/// `q`-feasible (Lemma B.1).
///
/// `p` is measured from the set itself (`p = 1 / worst in-affectance`);
/// pass `q > p/2` for the partition to be non-trivial (otherwise a single
/// class is returned).
///
/// # Errors
///
/// Returns [`SinrError::NotFeasible`] if some member of `set` cannot clear
/// the noise floor (`c_v` infinite), in which case no amount of
/// partitioning helps.
///
/// # Panics
///
/// Panics if `q` is not positive and finite.
pub fn signal_strengthen(
    aff: &AffectanceMatrix,
    set: &[LinkId],
    q: f64,
) -> Result<Vec<Vec<LinkId>>, SinrError> {
    assert!(
        q.is_finite() && q > 0.0,
        "target strength q must be positive"
    );
    if set.is_empty() {
        return Ok(Vec::new());
    }
    let p = aff.feasibility_strength(set);
    if p == 0.0 {
        let worst = set
            .iter()
            .map(|&v| aff.in_affectance_raw(set, v))
            .fold(0.0, f64::max);
        return Err(SinrError::NotFeasible {
            worst_affectance: worst,
        });
    }
    if p >= 2.0 * q {
        // Already far stronger than requested.
        return Ok(vec![set.to_vec()]);
    }
    // More groups than links degenerates to singletons, which are as
    // strong as partitioning can make the set — cap there to keep the
    // group count (and running time) proportional to the input.
    let k = ((2.0 * q / p).ceil() as usize).clamp(1, set.len());
    let pass1 = argmin_partition(aff, set, k, false);
    let mut classes = Vec::new();
    for class in pass1 {
        for sub in argmin_partition(aff, &class, k, true) {
            if !sub.is_empty() {
                classes.push(sub);
            }
        }
    }
    Ok(classes)
}

/// One argmin pass: scan `set` (reversed when `rev`), keep `k` groups, and
/// place each link in the group minimizing its in-affectance from that
/// group's current members.
fn argmin_partition(
    aff: &AffectanceMatrix,
    set: &[LinkId],
    k: usize,
    rev: bool,
) -> Vec<Vec<LinkId>> {
    let mut groups: Vec<Vec<LinkId>> = vec![Vec::new(); k.max(1)];
    let order: Vec<LinkId> = if rev {
        set.iter().rev().copied().collect()
    } else {
        set.to_vec()
    };
    for v in order {
        let gi = (0..groups.len())
            .min_by(|&a, &b| {
                aff.in_affectance(&groups[a], v)
                    .partial_cmp(&aff.in_affectance(&groups[b], v))
                    .unwrap()
            })
            .expect("at least one group");
        groups[gi].push(v);
    }
    groups
}

/// The number of classes Lemma B.1 guarantees: `⌈2q/p⌉²`.
pub fn strengthening_bound(p: f64, q: f64) -> usize {
    let k = (2.0 * q / p).ceil().max(1.0) as usize;
    k * k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affectance::SinrParams;
    use crate::link::{Link, LinkSet};
    use crate::power::PowerAssignment;
    use decay_core::{DecaySpace, NodeId};

    /// m parallel unit links spaced `gap` apart, alpha = 2, uniform power.
    fn setup(m: usize, gap: f64) -> (DecaySpace, LinkSet, AffectanceMatrix) {
        let mut pos = Vec::new();
        for i in 0..m {
            pos.push(i as f64 * gap);
            pos.push(i as f64 * gap + 1.0);
        }
        let s = DecaySpace::from_fn(pos.len(), |i, j| (pos[i] - pos[j]).abs().powi(2)).unwrap();
        let links: Vec<Link> = (0..m)
            .map(|i| Link::new(NodeId::new(2 * i), NodeId::new(2 * i + 1)))
            .collect();
        let ls = LinkSet::new(&s, links).unwrap();
        let powers = PowerAssignment::unit().powers(&s, &ls).unwrap();
        let aff = AffectanceMatrix::build(&s, &ls, &powers, &SinrParams::default()).unwrap();
        (s, ls, aff)
    }

    #[test]
    fn partition_classes_meet_target_strength() {
        let (_s, ls, aff) = setup(12, 4.0);
        let set: Vec<LinkId> = ls.ids().collect();
        let p = aff.feasibility_strength(&set);
        assert!(p >= 1.0, "base set should be feasible, p = {p}");
        for q in [2.0, 4.0, 8.0] {
            let classes = signal_strengthen(&aff, &set, q).unwrap();
            // Cover and disjointness.
            let mut seen: Vec<LinkId> = classes.iter().flatten().copied().collect();
            seen.sort();
            let mut expect = set.clone();
            expect.sort();
            assert_eq!(seen, expect, "classes must partition the set");
            // Each class q-feasible.
            for class in &classes {
                assert!(
                    aff.is_k_feasible(class, q),
                    "class not {q}-feasible: {class:?}"
                );
            }
            // Class count within the lemma bound.
            assert!(
                classes.len() <= strengthening_bound(p, q),
                "q={q}: {} classes > bound {}",
                classes.len(),
                strengthening_bound(p, q)
            );
        }
    }

    #[test]
    fn strong_sets_pass_through() {
        let (_s, ls, aff) = setup(3, 100.0);
        let set: Vec<LinkId> = ls.ids().collect();
        let classes = signal_strengthen(&aff, &set, 2.0).unwrap();
        assert_eq!(classes.len(), 1);
    }

    #[test]
    fn empty_set_yields_no_classes() {
        let (_s, _ls, aff) = setup(2, 10.0);
        assert!(signal_strengthen(&aff, &[], 4.0).unwrap().is_empty());
    }

    #[test]
    fn infeasible_noise_floor_is_rejected() {
        // One link drowned in noise.
        let pos = [0.0_f64, 5.0];
        let s = DecaySpace::from_fn(2, |i, j| (pos[i] - pos[j]).abs().powi(2)).unwrap();
        let ls = LinkSet::new(&s, vec![Link::new(NodeId::new(0), NodeId::new(1))]).unwrap();
        let powers = PowerAssignment::unit().powers(&s, &ls).unwrap();
        let aff =
            AffectanceMatrix::build(&s, &ls, &powers, &SinrParams::new(1.0, 1.0).unwrap()).unwrap();
        let err = signal_strengthen(&aff, &[LinkId::new(0)], 2.0).unwrap_err();
        assert!(matches!(err, SinrError::NotFeasible { .. }));
    }

    #[test]
    fn bound_formula() {
        assert_eq!(strengthening_bound(1.0, 2.0), 16);
        assert_eq!(strengthening_bound(2.0, 2.0), 4);
        assert_eq!(strengthening_bound(8.0, 2.0), 1);
    }
}
