//! Link separation in the induced quasi-metric (Section 2.4) and the
//! feasibility-implies-separation lemma (Lemma B.2).
//!
//! The quasi-distance between links `l_v`, `l_w` is the minimum over the
//! four endpoint pairs:
//!
//! ```text
//! d(l_v, l_w) = min(d(s_v, r_w), d(s_w, r_v), d(s_v, s_w), d(r_v, r_w)).
//! ```
//!
//! A link `l_v` is `η`-separated from a set `L` when
//! `d(l_v, l_w) ≥ η · d_vv` for every `l_w ∈ L`; a set is `η`-separated
//! when each member is `η`-separated from the rest. Lemma B.2: an
//! `e²/β`-feasible set under uniform power is `1/ζ`-separated.

use decay_core::QuasiMetric;

use crate::link::{LinkId, LinkSet};

/// The link quasi-distance `d(l_v, l_w)`: minimum over the four endpoint
/// pairs. For asymmetric spaces each endpoint pair contributes its smaller
/// direction.
pub fn link_distance(quasi: &QuasiMetric, links: &LinkSet, v: LinkId, w: LinkId) -> f64 {
    let lv = links.link(v);
    let lw = links.link(w);
    let a = quasi.pair_min(lv.sender, lw.receiver);
    let b = quasi.pair_min(lw.sender, lv.receiver);
    let c = quasi.pair_min(lv.sender, lw.sender);
    let d = quasi.pair_min(lv.receiver, lw.receiver);
    a.min(b).min(c).min(d)
}

/// The quasi-length `d_vv = d(s_v, r_v)` of a link.
pub fn link_length(quasi: &QuasiMetric, links: &LinkSet, v: LinkId) -> f64 {
    let lv = links.link(v);
    quasi.distance(lv.sender, lv.receiver)
}

/// Whether link `v` is `η`-separated from every link of `others`
/// (excluding itself if present): `d(l_v, l_w) ≥ η · d_vv`.
pub fn is_link_separated_from(
    quasi: &QuasiMetric,
    links: &LinkSet,
    v: LinkId,
    others: &[LinkId],
    eta: f64,
) -> bool {
    let dvv = link_length(quasi, links, v);
    others
        .iter()
        .filter(|&&w| w != v)
        .all(|&w| link_distance(quasi, links, v, w) >= eta * dvv)
}

/// Whether `set` is `η`-separated: each member is `η`-separated from the
/// rest.
pub fn is_link_set_separated(
    quasi: &QuasiMetric,
    links: &LinkSet,
    set: &[LinkId],
    eta: f64,
) -> bool {
    set.iter()
        .all(|&v| is_link_separated_from(quasi, links, v, set, eta))
}

/// The largest `η` for which `set` is `η`-separated (`+∞` for fewer than
/// two links).
pub fn separation_of(quasi: &QuasiMetric, links: &LinkSet, set: &[LinkId]) -> f64 {
    let mut eta = f64::INFINITY;
    for (k, &v) in set.iter().enumerate() {
        let dvv = link_length(quasi, links, v);
        for &w in &set[k + 1..] {
            let dww = link_length(quasi, links, w);
            let d = link_distance(quasi, links, v, w);
            eta = eta.min(d / dvv).min(d / dww);
        }
    }
    eta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affectance::{AffectanceMatrix, SinrParams};
    use crate::link::Link;
    use crate::power::PowerAssignment;
    use decay_core::{metricity, DecaySpace, NodeId};

    /// m parallel unit-length links spaced `gap` apart on a line, geometric
    /// decay with the given alpha.
    fn parallel_links(m: usize, gap: f64, alpha: f64) -> (DecaySpace, LinkSet) {
        let mut pos = Vec::new();
        for i in 0..m {
            let base = i as f64 * gap;
            pos.push(base); // sender
            pos.push(base + 1.0); // receiver
        }
        let s = DecaySpace::from_fn(pos.len(), |i, j| (pos[i] - pos[j]).abs().powf(alpha)).unwrap();
        let links: Vec<Link> = (0..m)
            .map(|i| Link::new(NodeId::new(2 * i), NodeId::new(2 * i + 1)))
            .collect();
        let ls = LinkSet::new(&s, links).unwrap();
        (s, ls)
    }

    #[test]
    fn link_distance_is_min_of_endpoint_pairs() {
        let (s, ls) = parallel_links(2, 5.0, 2.0);
        let q = QuasiMetric::from_space_with_exponent(&s, 2.0);
        // Closest endpoints: receiver 0 (at 1) and sender 1 (at 5): dist 4.
        let d = link_distance(&q, &ls, LinkId::new(0), LinkId::new(1));
        assert!((d - 4.0).abs() < 1e-9);
        assert!((link_length(&q, &ls, LinkId::new(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn separation_predicate_and_value_agree() {
        let (s, ls) = parallel_links(3, 6.0, 2.0);
        let q = QuasiMetric::from_space_with_exponent(&s, 2.0);
        let set: Vec<LinkId> = ls.ids().collect();
        let eta = separation_of(&q, &ls, &set);
        assert!((eta - 5.0).abs() < 1e-9, "eta = {eta}");
        assert!(is_link_set_separated(&q, &ls, &set, eta - 1e-9));
        assert!(!is_link_set_separated(&q, &ls, &set, eta + 0.1));
    }

    #[test]
    fn lemma_b2_feasible_implies_separated() {
        // Lemma B.2: an e^2/beta-feasible set under uniform power is
        // 1/zeta-separated. Sweep gaps; whenever the set reaches the
        // required feasibility strength, check the separation.
        let beta = 1.0;
        let strength = (std::f64::consts::E.powi(2)) / beta;
        for alpha in [2.0, 3.0] {
            for gap in [2.0, 4.0, 8.0, 16.0, 32.0] {
                let (s, ls) = parallel_links(4, gap, alpha);
                let zeta = metricity(&s).zeta_at_least_one();
                let q = QuasiMetric::from_space_with_exponent(&s, zeta);
                let powers = PowerAssignment::unit().powers(&s, &ls).unwrap();
                let a = AffectanceMatrix::build(
                    &s,
                    &ls,
                    &powers,
                    &SinrParams::noiseless(beta).unwrap(),
                )
                .unwrap();
                let set: Vec<LinkId> = ls.ids().collect();
                if a.is_k_feasible(&set, strength) {
                    assert!(
                        is_link_set_separated(&q, &ls, &set, 1.0 / zeta),
                        "alpha={alpha} gap={gap}: feasible but not 1/zeta-separated"
                    );
                }
            }
        }
    }

    #[test]
    fn small_sets_are_infinitely_separated() {
        let (s, ls) = parallel_links(1, 4.0, 2.0);
        let q = QuasiMetric::from_space_with_exponent(&s, 2.0);
        assert_eq!(separation_of(&q, &ls, &[LinkId::new(0)]), f64::INFINITY);
        assert!(is_link_set_separated(&q, &ls, &[LinkId::new(0)], 100.0));
    }
}
