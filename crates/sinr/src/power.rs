//! Power assignments (Section 2.4).
//!
//! A power assignment `P` gives each link a transmission power. The paper
//! works with *monotone* assignments: whenever `l_v ≺ l_w` (i.e.
//! `f_vv ≤ f_ww`), both `P_v ≤ P_w` (longer links use no less power) and
//! `P_w / f_ww ≤ P_v / f_vv` (longer links receive no more signal). This
//! captures the standard *oblivious* family `P_v ∝ f_vv^τ` for
//! `τ ∈ [0, 1]`: uniform power (`τ = 0`), mean power (`τ = 1/2`) and
//! linear power (`τ = 1`).

use decay_core::DecaySpace;
use serde::{Deserialize, Serialize};

use crate::error::SinrError;
use crate::link::LinkSet;

/// A rule assigning transmission powers to links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PowerAssignment {
    /// Every sender uses the same power.
    Uniform {
        /// The common transmission power.
        power: f64,
    },
    /// Oblivious power `P_v = scale * f_vv^tau`.
    ///
    /// `tau = 0` is uniform, `tau = 1/2` is mean power, `tau = 1` is linear
    /// power; all `tau ∈ [0, 1]` are monotone.
    Oblivious {
        /// Exponent `τ` applied to the link decay.
        tau: f64,
        /// Multiplicative scale (the power of a unit-decay link).
        scale: f64,
    },
    /// Arbitrary per-link powers, e.g. produced by a power-control
    /// algorithm.
    Custom(Vec<f64>),
}

impl PowerAssignment {
    /// Uniform power 1 — the paper's default for Algorithm 1 and the
    /// hardness constructions.
    pub fn unit() -> Self {
        PowerAssignment::Uniform { power: 1.0 }
    }

    /// Linear power with the given scale: `P_v = scale * f_vv`, making
    /// every link receive the same signal strength.
    pub fn linear(scale: f64) -> Self {
        PowerAssignment::Oblivious { tau: 1.0, scale }
    }

    /// Mean power with the given scale: `P_v = scale * sqrt(f_vv)`.
    pub fn mean(scale: f64) -> Self {
        PowerAssignment::Oblivious { tau: 0.5, scale }
    }

    /// Evaluates the assignment to a per-link power vector.
    ///
    /// # Errors
    ///
    /// Returns an error if a computed or supplied power is not positive and
    /// finite, or if a custom vector has the wrong length.
    pub fn powers(&self, space: &DecaySpace, links: &LinkSet) -> Result<Vec<f64>, SinrError> {
        let m = links.len();
        let out: Vec<f64> = match self {
            PowerAssignment::Uniform { power } => vec![*power; m],
            PowerAssignment::Oblivious { tau, scale } => links
                .ids()
                .map(|id| scale * links.decay_of(space, id).powf(*tau))
                .collect(),
            PowerAssignment::Custom(v) => {
                if v.len() != m {
                    return Err(SinrError::PowerLengthMismatch {
                        links: m,
                        powers: v.len(),
                    });
                }
                v.clone()
            }
        };
        for (i, &p) in out.iter().enumerate() {
            if !(p.is_finite() && p > 0.0) {
                return Err(SinrError::InvalidPower { link: i, value: p });
            }
        }
        Ok(out)
    }
}

/// Whether a concrete power vector is *monotone* on the given links
/// (Section 2.4): for `f_vv ≤ f_ww`, both `P_v ≤ P_w` and
/// `P_w / f_ww ≤ P_v / f_vv`, up to relative tolerance `tol`.
pub fn is_monotone(space: &DecaySpace, links: &LinkSet, powers: &[f64], tol: f64) -> bool {
    let order = links.ids_by_decay(space);
    for (k, &v) in order.iter().enumerate() {
        for &w in &order[k + 1..] {
            let (pv, pw) = (powers[v.index()], powers[w.index()]);
            let (fv, fw) = (links.decay_of(space, v), links.decay_of(space, w));
            if pv > pw * (1.0 + tol) {
                return false;
            }
            if pw / fw > (pv / fv) * (1.0 + tol) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;
    use decay_core::NodeId;

    fn setup() -> (DecaySpace, LinkSet) {
        let s = DecaySpace::from_fn(6, |i, j| ((i as f64) - (j as f64)).abs().powi(2)).unwrap();
        let ls = LinkSet::new(
            &s,
            vec![
                Link::new(NodeId::new(0), NodeId::new(1)), // decay 1
                Link::new(NodeId::new(0), NodeId::new(3)), // decay 9
                Link::new(NodeId::new(1), NodeId::new(5)), // decay 16
            ],
        )
        .unwrap();
        (s, ls)
    }

    #[test]
    fn uniform_powers() {
        let (s, ls) = setup();
        let p = PowerAssignment::unit().powers(&s, &ls).unwrap();
        assert_eq!(p, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn linear_powers_equalize_received_signal() {
        let (s, ls) = setup();
        let p = PowerAssignment::linear(2.0).powers(&s, &ls).unwrap();
        assert_eq!(p, vec![2.0, 18.0, 32.0]);
        // Received signal P_v / f_vv identical across links.
        for (i, id) in ls.ids().enumerate() {
            assert!((p[i] / ls.decay_of(&s, id) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn oblivious_family_is_monotone() {
        let (s, ls) = setup();
        for tau in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let p = PowerAssignment::Oblivious { tau, scale: 1.0 }
                .powers(&s, &ls)
                .unwrap();
            assert!(is_monotone(&s, &ls, &p, 1e-12), "tau = {tau}");
        }
    }

    #[test]
    fn super_linear_power_is_not_monotone() {
        let (s, ls) = setup();
        let p = PowerAssignment::Oblivious {
            tau: 1.5,
            scale: 1.0,
        }
        .powers(&s, &ls)
        .unwrap();
        assert!(!is_monotone(&s, &ls, &p, 1e-12));
    }

    #[test]
    fn decreasing_power_is_not_monotone() {
        let (s, ls) = setup();
        let p = vec![3.0, 2.0, 1.0];
        assert!(!is_monotone(&s, &ls, &p, 1e-12));
    }

    #[test]
    fn custom_validates_length_and_positivity() {
        let (s, ls) = setup();
        assert!(matches!(
            PowerAssignment::Custom(vec![1.0]).powers(&s, &ls),
            Err(SinrError::PowerLengthMismatch { .. })
        ));
        assert!(matches!(
            PowerAssignment::Custom(vec![1.0, -1.0, 1.0]).powers(&s, &ls),
            Err(SinrError::InvalidPower { link: 1, .. })
        ));
    }

    #[test]
    fn mean_power_is_geometric_midpoint() {
        let (s, ls) = setup();
        let p = PowerAssignment::mean(1.0).powers(&s, &ls).unwrap();
        assert!((p[1] - 3.0).abs() < 1e-12); // sqrt(9)
    }
}
