//! Inductive independence and C-independence — the systematic decay-space
//! parameters the paper's introduction highlights.
//!
//! Section 1 notes that *inductive independence* [45, 38] "has heralded a
//! more systematic approach to SINR analysis, and can by itself be seen as
//! parameter of the decay space", and that the same holds for
//! *C-independence* [1, 12] under uniform power. Observation 4.2 then uses
//! bounds on inductive independence to transfer a long list of results
//! (spectrum auctions, dynamic packet scheduling, distributed scheduling).
//! This module makes both parameters measurable on any decay space:
//!
//! * [`inductive_independence`] — for the decay order `≺`, the largest
//!   symmetric affectance `Σ_{w ∈ S, v ≺ w} (a_v(w) + a_w(v))` any link
//!   `v` receives from the later part of a feasible set `S`. In GEO-SINR
//!   metrics this is `2^{O(α)}`; in decay spaces the same argument gives
//!   `2^{O(ζ)}` (experiment E22 measures it).
//! * [`ConflictGraph`] / [`ConflictGraph::c_independence`] — the pairwise
//!   conflict graph under uniform power, and the largest *independent* set
//!   of links that all conflict with one link. Bounded C-independence is
//!   the property that drives the regret-minimization capacity results
//!   ([1], extended in [12]).
//!
//! Maximizing over all feasible sets is itself NP-hard, so the inductive
//! independence estimator takes an explicit collection of feasible sets
//! (exact on that collection) and [`sample_feasible_sets`] provides a
//! deterministic randomized generator of maximal feasible sets to feed it.
//! The result is a certified *lower* bound on the true parameter.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::affectance::AffectanceMatrix;
use crate::link::LinkId;

/// A symmetric pairwise conflict graph over links.
///
/// Two links conflict when their mutual (capped) affectance
/// `a_v(w) + a_w(v)` reaches `threshold` — at the default threshold 1 a
/// conflicting pair is (essentially) never simultaneously feasible, which
/// is the conflict notion the C-independence literature [1, 12] uses for
/// uniform power.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictGraph {
    m: usize,
    /// Row-major adjacency; symmetric, irreflexive.
    adj: Vec<bool>,
}

/// The C-independence of a conflict graph with its witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CIndependence {
    /// The parameter: the largest independent subset of some closed
    /// neighborhood's *open* neighborhood (max over vertices).
    pub c: usize,
    /// The vertex whose neighborhood attains it.
    pub witness_vertex: LinkId,
    /// The independent set inside that neighborhood.
    pub witness_set: Vec<LinkId>,
    /// Whether every neighborhood was solved exactly (small enough for
    /// branch and bound) or some fell back to a greedy lower bound.
    pub exact: bool,
}

/// Neighborhood size up to which the C-independence search is exact.
pub const EXACT_NEIGHBORHOOD_LIMIT: usize = 28;

impl ConflictGraph {
    /// Builds the conflict graph from an affectance matrix: edge iff
    /// `a_v(w) + a_w(v) >= threshold` (capped affectances).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive.
    pub fn from_affectance(aff: &AffectanceMatrix, threshold: f64) -> Self {
        assert!(threshold > 0.0, "conflict threshold must be positive");
        let m = aff.len();
        let mut adj = vec![false; m * m];
        for v in 0..m {
            for w in (v + 1)..m {
                let lv = LinkId::new(v);
                let lw = LinkId::new(w);
                let mutual = aff.affectance(lv, lw) + aff.affectance(lw, lv);
                if mutual >= threshold {
                    adj[v * m + w] = true;
                    adj[w * m + v] = true;
                }
            }
        }
        ConflictGraph { m, adj }
    }

    /// Number of links (vertices).
    pub fn len(&self) -> usize {
        self.m
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Whether `v` and `w` conflict.
    #[inline]
    pub fn conflicts(&self, v: LinkId, w: LinkId) -> bool {
        self.adj[v.index() * self.m + w.index()]
    }

    /// Number of links conflicting with `v`.
    pub fn degree(&self, v: LinkId) -> usize {
        (0..self.m)
            .filter(|&w| self.adj[v.index() * self.m + w])
            .count()
    }

    /// Total number of conflict edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().filter(|&&b| b).count() / 2
    }

    /// Whether the given links are pairwise conflict-free.
    pub fn is_independent(&self, set: &[LinkId]) -> bool {
        for (i, &v) in set.iter().enumerate() {
            for &w in &set[i + 1..] {
                if self.conflicts(v, w) {
                    return false;
                }
            }
        }
        true
    }

    /// The links conflicting with `v`, in id order.
    pub fn neighborhood(&self, v: LinkId) -> Vec<LinkId> {
        (0..self.m)
            .filter(|&w| self.adj[v.index() * self.m + w])
            .map(LinkId::new)
            .collect()
    }

    /// First-fit coloring in the given order; returns per-link colors.
    /// Links of equal color are pairwise conflict-free — the classical
    /// conflict-graph scheduler the SINR-vs-conflict-graph comparisons
    /// [60, 61] study.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of all links.
    pub fn first_fit_coloring(&self, order: &[LinkId]) -> Vec<usize> {
        assert_eq!(order.len(), self.m, "order must cover every link");
        let mut color = vec![usize::MAX; self.m];
        for &v in order {
            let mut used: Vec<usize> = (0..self.m)
                .filter(|&w| self.adj[v.index() * self.m + w] && color[w] != usize::MAX)
                .map(|w| color[w])
                .collect();
            used.sort_unstable();
            used.dedup();
            let mut c = 0;
            for u in used {
                if u == c {
                    c += 1;
                } else if u > c {
                    break;
                }
            }
            assert!(
                color[v.index()] == usize::MAX,
                "order must not repeat links"
            );
            color[v.index()] = c;
        }
        assert!(
            color.iter().all(|&c| c != usize::MAX),
            "order must cover every link"
        );
        color
    }

    /// The C-independence: the maximum, over links `v`, of the largest
    /// independent set contained in `v`'s neighborhood. Exact for
    /// neighborhoods of at most [`EXACT_NEIGHBORHOOD_LIMIT`] vertices,
    /// greedy (lower bound) beyond; the `exact` flag reports which.
    pub fn c_independence(&self) -> CIndependence {
        let mut best = CIndependence {
            c: 0,
            witness_vertex: LinkId::new(0),
            witness_set: Vec::new(),
            exact: true,
        };
        for v in 0..self.m {
            let nbhd = self.neighborhood(LinkId::new(v));
            let (set, exact) = if nbhd.len() <= EXACT_NEIGHBORHOOD_LIMIT {
                (self.max_independent_in(&nbhd), true)
            } else {
                (self.greedy_independent_in(&nbhd), false)
            };
            best.exact &= exact;
            if set.len() > best.c {
                best.c = set.len();
                best.witness_vertex = LinkId::new(v);
                best.witness_set = set;
            }
        }
        best
    }

    /// Exact maximum independent set within `cands` by branch and bound.
    fn max_independent_in(&self, cands: &[LinkId]) -> Vec<LinkId> {
        let mut best: Vec<LinkId> = Vec::new();
        let mut current: Vec<LinkId> = Vec::new();
        self.mis_recurse(cands, 0, &mut current, &mut best);
        best
    }

    fn mis_recurse(
        &self,
        cands: &[LinkId],
        from: usize,
        current: &mut Vec<LinkId>,
        best: &mut Vec<LinkId>,
    ) {
        if current.len() + (cands.len() - from) <= best.len() {
            return; // cannot beat the incumbent
        }
        if from == cands.len() {
            if current.len() > best.len() {
                *best = current.clone();
            }
            return;
        }
        let v = cands[from];
        // Branch 1: take v if compatible.
        if current.iter().all(|&w| !self.conflicts(v, w)) {
            current.push(v);
            self.mis_recurse(cands, from + 1, current, best);
            current.pop();
        }
        // Branch 2: skip v.
        self.mis_recurse(cands, from + 1, current, best);
    }

    /// Greedy independent set within `cands` (minimum-degree-first).
    fn greedy_independent_in(&self, cands: &[LinkId]) -> Vec<LinkId> {
        let mut order: Vec<LinkId> = cands.to_vec();
        order.sort_by_key(|&v| self.degree(v));
        let mut out: Vec<LinkId> = Vec::new();
        for v in order {
            if out.iter().all(|&w| !self.conflicts(v, w)) {
                out.push(v);
            }
        }
        out
    }
}

/// The empirical inductive independence of a link collection: the maximum
/// over the provided feasible sets `S` and links `v` of
/// `Σ_{w ∈ S : v ≺ w} (a_v(w) + a_w(v))`, where `≺` is the given order
/// (canonically [`crate::LinkSet::ids_by_decay`]).
///
/// The returned value is exact for the supplied collection and therefore a
/// lower bound on the parameter over all feasible sets; grow the
/// collection (e.g. with [`sample_feasible_sets`]) to tighten it.
///
/// # Panics
///
/// Panics if `order` does not cover every link of the matrix.
pub fn inductive_independence(
    aff: &AffectanceMatrix,
    order: &[LinkId],
    feasible_sets: &[Vec<LinkId>],
) -> f64 {
    let m = aff.len();
    assert_eq!(order.len(), m, "order must cover every link");
    // rank[v] = position of v in the order.
    let mut rank = vec![0usize; m];
    for (pos, &v) in order.iter().enumerate() {
        rank[v.index()] = pos;
    }
    let mut worst = 0.0_f64;
    for set in feasible_sets {
        for v in order {
            let v = *v;
            let sum: f64 = set
                .iter()
                .filter(|&&w| w != v && rank[w.index()] > rank[v.index()])
                .map(|&w| aff.affectance(v, w) + aff.affectance(w, v))
                .sum();
            worst = worst.max(sum);
        }
    }
    worst
}

/// Samples maximal feasible sets by first-fit over uniformly random link
/// permutations: deterministic in `seed`, always returns `samples` sets,
/// each feasible and maximal (no remaining link can be added).
pub fn sample_feasible_sets(aff: &AffectanceMatrix, samples: usize, seed: u64) -> Vec<Vec<LinkId>> {
    let m = aff.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(samples);
    let mut ids: Vec<LinkId> = (0..m).map(LinkId::new).collect();
    for _ in 0..samples {
        ids.shuffle(&mut rng);
        let mut set: Vec<LinkId> = Vec::new();
        for &v in &ids {
            set.push(v);
            if !aff.is_feasible(&set) {
                set.pop();
            }
        }
        out.push(set);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affectance::SinrParams;
    use crate::link::{Link, LinkSet};
    use crate::power::PowerAssignment;
    use decay_core::{DecaySpace, NodeId};

    /// `k` parallel unit links with sender spacing `gap` on a line,
    /// geometric decay `alpha = 2`.
    fn parallel_links(k: usize, gap: f64) -> (DecaySpace, LinkSet) {
        let mut pos = Vec::with_capacity(2 * k);
        for i in 0..k {
            pos.push(i as f64 * gap); // sender
            pos.push(i as f64 * gap + 1.0); // receiver
        }
        let space = DecaySpace::from_fn(2 * k, |i, j| (pos[i] - pos[j]).abs().powi(2)).unwrap();
        let links = LinkSet::new(
            &space,
            (0..k)
                .map(|i| Link::new(NodeId::new(2 * i), NodeId::new(2 * i + 1)))
                .collect(),
        )
        .unwrap();
        (space, links)
    }

    fn matrix(space: &DecaySpace, links: &LinkSet) -> AffectanceMatrix {
        let powers = PowerAssignment::unit().powers(space, links).unwrap();
        AffectanceMatrix::build(space, links, &powers, &SinrParams::default()).unwrap()
    }

    #[test]
    fn dense_cluster_is_fully_conflicting() {
        let (s, ls) = parallel_links(4, 1.2);
        let aff = matrix(&s, &ls);
        let g = ConflictGraph::from_affectance(&aff, 1.0);
        // Adjacent links at gap 1.2 interfere strongly.
        assert!(g.conflicts(LinkId::new(0), LinkId::new(1)));
        assert!(g.edge_count() >= 3);
        assert!(!g.is_independent(&[LinkId::new(0), LinkId::new(1)]));
    }

    #[test]
    fn far_links_do_not_conflict() {
        let (s, ls) = parallel_links(3, 50.0);
        let aff = matrix(&s, &ls);
        let g = ConflictGraph::from_affectance(&aff, 1.0);
        assert_eq!(g.edge_count(), 0);
        let all: Vec<LinkId> = ls.ids().collect();
        assert!(g.is_independent(&all));
        let ci = g.c_independence();
        assert_eq!(ci.c, 0);
        assert!(ci.exact);
    }

    #[test]
    fn c_independence_of_a_star_conflict_pattern() {
        // One long link whose receiver sits amid several mutually-distant
        // short links: the short links conflict with the long one but not
        // with each other.
        //
        // Geometry: short links at x = 0, 100, 200 (length 1); long link
        // sends from x = 1000 to a receiver at x = 100.4 (decay ~ huge),
        // so every short sender wrecks it.
        let mut pos: Vec<f64> = Vec::new();
        for c in [0.0, 100.0, 200.0] {
            pos.push(c);
            pos.push(c + 1.0);
        }
        pos.push(1000.0); // long sender (node 6)
        pos.push(100.4); // long receiver (node 7)
        let s = DecaySpace::from_fn(8, |i, j| (pos[i] - pos[j]).abs().powi(2)).unwrap();
        let ls = LinkSet::new(
            &s,
            vec![
                Link::new(NodeId::new(0), NodeId::new(1)),
                Link::new(NodeId::new(2), NodeId::new(3)),
                Link::new(NodeId::new(4), NodeId::new(5)),
                Link::new(NodeId::new(6), NodeId::new(7)),
            ],
        )
        .unwrap();
        let aff = matrix(&s, &ls);
        let g = ConflictGraph::from_affectance(&aff, 1.0);
        let ci = g.c_independence();
        assert_eq!(ci.witness_vertex, LinkId::new(3));
        assert_eq!(ci.c, 3, "three mutually-free short links all conflict");
        assert!(ci.exact);
        assert!(g.is_independent(&ci.witness_set));
    }

    #[test]
    fn first_fit_coloring_is_proper_and_compact() {
        let (s, ls) = parallel_links(6, 1.5);
        let aff = matrix(&s, &ls);
        let g = ConflictGraph::from_affectance(&aff, 1.0);
        let order: Vec<LinkId> = ls.ids().collect();
        let colors = g.first_fit_coloring(&order);
        for v in 0..6 {
            for w in (v + 1)..6 {
                if g.conflicts(LinkId::new(v), LinkId::new(w)) {
                    assert_ne!(colors[v], colors[w], "{v} vs {w}");
                }
            }
        }
        let max_color = colors.iter().copied().max().unwrap();
        assert!(max_color < g.len());
    }

    #[test]
    #[should_panic(expected = "order must cover every link")]
    fn coloring_rejects_partial_orders() {
        let (s, ls) = parallel_links(3, 2.0);
        let aff = matrix(&s, &ls);
        let g = ConflictGraph::from_affectance(&aff, 1.0);
        g.first_fit_coloring(&[LinkId::new(0)]);
    }

    #[test]
    fn sampled_sets_are_feasible_and_maximal() {
        let (s, ls) = parallel_links(8, 2.5);
        let aff = matrix(&s, &ls);
        let sets = sample_feasible_sets(&aff, 20, 3);
        assert_eq!(sets.len(), 20);
        for set in &sets {
            assert!(aff.is_feasible(set));
            // Maximality: no link outside can join.
            for v in ls.ids() {
                if set.contains(&v) {
                    continue;
                }
                let mut bigger = set.clone();
                bigger.push(v);
                assert!(!aff.is_feasible(&bigger), "set was not maximal");
            }
        }
        // Determinism.
        assert_eq!(sets, sample_feasible_sets(&aff, 20, 3));
    }

    #[test]
    fn inductive_independence_is_monotone_in_the_collection() {
        let (s, ls) = parallel_links(8, 3.0);
        let aff = matrix(&s, &ls);
        let order = ls.ids_by_decay(&s);
        let sets = sample_feasible_sets(&aff, 30, 5);
        let small = inductive_independence(&aff, &order, &sets[..5]);
        let large = inductive_independence(&aff, &order, &sets);
        assert!(large >= small);
        // Feasibility caps the in-part at 1 and the out-part at |S|;
        // sanity: finite and non-negative.
        assert!(large.is_finite());
        assert!(small >= 0.0);
    }

    #[test]
    fn inductive_independence_empty_collection_is_zero() {
        let (s, ls) = parallel_links(3, 3.0);
        let aff = matrix(&s, &ls);
        let order = ls.ids_by_decay(&s);
        assert_eq!(inductive_independence(&aff, &order, &[]), 0.0);
    }

    #[test]
    fn conflict_threshold_tightens_the_graph() {
        let (s, ls) = parallel_links(5, 2.0);
        let aff = matrix(&s, &ls);
        let loose = ConflictGraph::from_affectance(&aff, 0.05);
        let tight = ConflictGraph::from_affectance(&aff, 1.0);
        assert!(loose.edge_count() >= tight.edge_count());
    }
}
