//! SINR, affectance and feasibility (Sections 2.1 and 2.4).
//!
//! The *affectance* of link `l_w` on link `l_v` under power assignment `P`
//! normalizes the interference of `w`'s sender at `v`'s receiver by `v`'s
//! received signal:
//!
//! ```text
//! a_w(v) = min(1, c_v · (P_w / f_wv) · (f_vv / P_v)),   a_v(v) = 0,
//! ```
//!
//! where `c_v = β / (1 − β·N / S_v) > β` folds in the ambient noise `N` and
//! `S_v = P_v / f_vv` is the received signal. A set `S` is *feasible* when
//! every member's in-affectance `a_S(v) = Σ_{w∈S} a_w(v)` is at most 1 —
//! equivalent to every member meeting `SINR ≥ β` — and `K`-feasible when
//! `a_S(v) ≤ 1/K` (see DESIGN.md reading note 3).

use decay_core::DecaySpace;
use serde::{Deserialize, Serialize};

use crate::error::SinrError;
use crate::link::{LinkId, LinkSet};

/// Physical-layer parameters: SINR threshold and ambient noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SinrParams {
    beta: f64,
    noise: f64,
}

impl SinrParams {
    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// Returns an error unless `beta >= 1` (the paper's hardware
    /// assumption) and `noise` is finite and non-negative.
    pub fn new(beta: f64, noise: f64) -> Result<Self, SinrError> {
        if !(beta.is_finite() && beta >= 1.0) {
            return Err(SinrError::InvalidBeta { value: beta });
        }
        if !(noise.is_finite() && noise >= 0.0) {
            return Err(SinrError::InvalidNoise { value: noise });
        }
        Ok(SinrParams { beta, noise })
    }

    /// Noiseless parameters with the given threshold.
    ///
    /// # Errors
    ///
    /// Returns an error unless `beta >= 1`.
    pub fn noiseless(beta: f64) -> Result<Self, SinrError> {
        Self::new(beta, 0.0)
    }

    /// The SINR threshold `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The ambient noise `N`.
    pub fn noise(&self) -> f64 {
        self.noise
    }
}

impl Default for SinrParams {
    /// `β = 1`, no noise: the cleanest theoretical setting.
    fn default() -> Self {
        SinrParams {
            beta: 1.0,
            noise: 0.0,
        }
    }
}

/// Precomputed pairwise affectances for one (space, links, powers, params)
/// combination.
///
/// Building the matrix is `O(m²)`; all queries afterwards are `O(1)` per
/// pair or `O(|S|)` per sum.
#[derive(Debug, Clone, PartialEq)]
pub struct AffectanceMatrix {
    m: usize,
    /// Row-major: `a[w * m + v] = a_w(v)` (capped at 1, the paper's form).
    a: Vec<f64>,
    /// Row-major uncapped affectances `c_v · I_wv / S_v`; sums of these are
    /// exactly equivalent to the SINR threshold.
    raw: Vec<f64>,
    /// Per-link noise factor `c_v`; infinite when the link cannot meet the
    /// threshold even without interference.
    c: Vec<f64>,
}

impl AffectanceMatrix {
    /// Builds the affectance matrix.
    ///
    /// # Errors
    ///
    /// Returns an error if `powers` has the wrong length or contains a
    /// non-positive value.
    pub fn build(
        space: &DecaySpace,
        links: &LinkSet,
        powers: &[f64],
        params: &SinrParams,
    ) -> Result<Self, SinrError> {
        let m = links.len();
        if powers.len() != m {
            return Err(SinrError::PowerLengthMismatch {
                links: m,
                powers: powers.len(),
            });
        }
        for (i, &p) in powers.iter().enumerate() {
            if !(p.is_finite() && p > 0.0) {
                return Err(SinrError::InvalidPower { link: i, value: p });
            }
        }
        let beta = params.beta();
        let noise = params.noise();
        // Noise factor c_v = beta / (1 - beta * N / S_v); infinite when the
        // signal cannot clear the noise floor at threshold.
        let mut c = vec![0.0; m];
        for (i, id) in links.ids().enumerate() {
            let fvv = links.decay_of(space, id);
            let s_v = powers[i] / fvv;
            let denom = 1.0 - beta * noise / s_v;
            c[i] = if denom > 0.0 {
                beta / denom
            } else {
                f64::INFINITY
            };
        }
        let mut a = vec![0.0; m * m];
        let mut raw = vec![0.0; m * m];
        for (wi, wid) in links.ids().enumerate() {
            let lw = links.link(wid);
            for (vi, vid) in links.ids().enumerate() {
                if wi == vi {
                    continue;
                }
                let lv = links.link(vid);
                let fvv = lv.decay(space);
                let fwv = space.decay(lw.sender, lv.receiver);
                let r = if fwv == 0.0 {
                    f64::INFINITY
                } else {
                    c[vi] * (powers[wi] / fwv) * (fvv / powers[vi])
                };
                raw[wi * m + vi] = r;
                a[wi * m + vi] = r.min(1.0);
            }
        }
        Ok(AffectanceMatrix { m, a, raw, c })
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Whether the matrix is over an empty link set.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// The affectance `a_w(v)` of link `w` on link `v` (capped at 1, the
    /// paper's definition).
    #[inline]
    pub fn affectance(&self, w: LinkId, v: LinkId) -> f64 {
        self.a[w.index() * self.m + v.index()]
    }

    /// The uncapped affectance `c_v · I_wv / S_v`. Within feasible sets it
    /// coincides with [`Self::affectance`]; sums of uncapped values encode
    /// the SINR threshold exactly.
    #[inline]
    pub fn raw_affectance(&self, w: LinkId, v: LinkId) -> f64 {
        self.raw[w.index() * self.m + v.index()]
    }

    /// Uncapped in-affectance `Σ_{w ∈ set} raw a_w(v)`.
    pub fn in_affectance_raw(&self, set: &[LinkId], v: LinkId) -> f64 {
        // decay-lint: allow(unordered-reduce) — deterministic: `set`
        // is a caller-ordered slice, so the f64 sum order is fixed by the
        // slice order, identically on every backend and lane count.
        set.iter().map(|&w| self.raw_affectance(w, v)).sum()
    }

    /// The noise factor `c_v` of link `v` (infinite when the link cannot
    /// meet the threshold alone).
    pub fn noise_factor(&self, v: LinkId) -> f64 {
        self.c[v.index()]
    }

    /// In-affectance `a_S(v) = Σ_{w ∈ set} a_w(v)`.
    pub fn in_affectance(&self, set: &[LinkId], v: LinkId) -> f64 {
        // decay-lint: allow(unordered-reduce) — deterministic: `set`
        // is a caller-ordered slice, so the f64 sum order is fixed by the
        // slice order, identically on every backend and lane count.
        set.iter().map(|&w| self.affectance(w, v)).sum()
    }

    /// Out-affectance `a_v(S) = Σ_{w ∈ set} a_v(w)`.
    pub fn out_affectance(&self, v: LinkId, set: &[LinkId]) -> f64 {
        // decay-lint: allow(unordered-reduce) — deterministic: `set`
        // is a caller-ordered slice, so the f64 sum order is fixed by the
        // slice order, identically on every backend and lane count.
        set.iter().map(|&w| self.affectance(v, w)).sum()
    }

    /// The worst in-affectance over members of `set` (0 for empty sets).
    /// A set is feasible iff this is at most 1 and every member clears the
    /// noise floor.
    pub fn worst_in_affectance(&self, set: &[LinkId]) -> f64 {
        set.iter()
            .map(|&v| self.in_affectance(set, v))
            .fold(0.0, f64::max)
    }

    /// Whether `set` is feasible: every member has finite noise factor and
    /// in-affectance at most 1 (with tiny tolerance for float noise).
    pub fn is_feasible(&self, set: &[LinkId]) -> bool {
        self.is_k_feasible(set, 1.0)
    }

    /// Whether `set` is `K`-feasible: uncapped in-affectance at most `1/K`
    /// (for `K = 1` this is exactly `SINR ≥ β` for every member).
    ///
    /// # Panics
    ///
    /// Panics if `k` is not positive.
    pub fn is_k_feasible(&self, set: &[LinkId], k: f64) -> bool {
        assert!(k > 0.0, "feasibility strength K must be positive");
        set.iter().all(|&v| {
            self.c[v.index()].is_finite() && self.in_affectance_raw(set, v) <= 1.0 / k + 1e-12
        })
    }

    /// The largest `K` such that `set` is `K`-feasible, `+∞` for sets with
    /// no interference at all. Returns 0 when some member cannot clear the
    /// noise floor.
    pub fn feasibility_strength(&self, set: &[LinkId]) -> f64 {
        if set.iter().any(|&v| !self.c[v.index()].is_finite()) {
            return 0.0;
        }
        let worst = set
            .iter()
            .map(|&v| self.in_affectance_raw(set, v))
            .fold(0.0, f64::max);
        if worst == 0.0 {
            f64::INFINITY
        } else {
            1.0 / worst
        }
    }
}

/// The raw SINR of link `v` when exactly the links in `active` transmit
/// (Equation 1). `v` must be a member of `active`; its own sender is
/// excluded from the interference sum.
///
/// # Panics
///
/// Panics if `powers` has the wrong length.
pub fn sinr(
    space: &DecaySpace,
    links: &LinkSet,
    powers: &[f64],
    params: &SinrParams,
    active: &[LinkId],
    v: LinkId,
) -> f64 {
    assert_eq!(powers.len(), links.len(), "power vector length mismatch");
    let lv = links.link(v);
    let signal = powers[v.index()] / lv.decay(space);
    let mut interference = params.noise();
    for &w in active {
        if w == v {
            continue;
        }
        let lw = links.link(w);
        interference += powers[w.index()] / space.decay(lw.sender, lv.receiver);
    }
    if interference == 0.0 {
        f64::INFINITY
    } else {
        signal / interference
    }
}

/// Whether every link in `active` meets the SINR threshold when all of
/// `active` transmit simultaneously.
pub fn sinr_feasible(
    space: &DecaySpace,
    links: &LinkSet,
    powers: &[f64],
    params: &SinrParams,
    active: &[LinkId],
) -> bool {
    active
        .iter()
        .all(|&v| sinr(space, links, powers, params, active, v) >= params.beta() * (1.0 - 1e-12))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;
    use crate::power::PowerAssignment;
    use decay_core::NodeId;

    /// Two parallel links on a line: senders at 0 and d, receivers at
    /// 1 and d+1; geometric decay with alpha = 2.
    fn parallel_pair(d: f64) -> (DecaySpace, LinkSet) {
        let pos = [0.0, 1.0, d, d + 1.0];
        let s = DecaySpace::from_fn(4, |i, j| (pos[i] - pos[j]).abs().powi(2)).unwrap();
        let ls = LinkSet::new(
            &s,
            vec![
                Link::new(NodeId::new(0), NodeId::new(1)),
                Link::new(NodeId::new(2), NodeId::new(3)),
            ],
        )
        .unwrap();
        (s, ls)
    }

    fn matrix(space: &DecaySpace, links: &LinkSet, params: &SinrParams) -> AffectanceMatrix {
        let powers = PowerAssignment::unit().powers(space, links).unwrap();
        AffectanceMatrix::build(space, links, &powers, params).unwrap()
    }

    #[test]
    fn far_links_are_feasible_close_links_are_not() {
        let params = SinrParams::default();
        let ids = [LinkId::new(0), LinkId::new(1)];

        let (s, ls) = parallel_pair(10.0);
        let a = matrix(&s, &ls, &params);
        assert!(a.is_feasible(&ids));

        // d = 2: the interfering sender sits at decay exactly equal to the
        // signal, SINR = beta exactly -> feasible at the threshold.
        let (s, ls) = parallel_pair(2.0);
        let a = matrix(&s, &ls, &params);
        assert!(a.is_feasible(&ids));

        // d = 1.8: interference exceeds the signal, infeasible. Note the
        // capped affectance would report a sum of exactly 1 here; the raw
        // (SINR-exact) sum correctly rejects the set.
        let (s, ls) = parallel_pair(1.8);
        let a = matrix(&s, &ls, &params);
        assert!(!a.is_feasible(&ids));
        assert!(a.worst_in_affectance(&ids) <= 1.0);
        assert!(a.in_affectance_raw(&ids, LinkId::new(0)) > 1.0);
    }

    #[test]
    fn noiseless_noise_factor_is_beta() {
        let params = SinrParams::noiseless(1.5).unwrap();
        let (s, ls) = parallel_pair(5.0);
        let a = matrix(&s, &ls, &params);
        assert_eq!(a.noise_factor(LinkId::new(0)), 1.5);
    }

    #[test]
    fn affectance_matches_sinr_threshold() {
        // For uncapped affectances, a_S(v) <= 1 iff SINR_v >= beta.
        let params = SinrParams::new(1.0, 0.01).unwrap();
        for d in [3.0, 4.0, 6.0, 12.0] {
            let (s, ls) = parallel_pair(d);
            let powers = PowerAssignment::unit().powers(&s, &ls).unwrap();
            let a = AffectanceMatrix::build(&s, &ls, &powers, &params).unwrap();
            let ids = [LinkId::new(0), LinkId::new(1)];
            let by_affectance = a.is_feasible(&ids);
            let by_sinr = sinr_feasible(&s, &ls, &powers, &params, &ids);
            assert_eq!(by_affectance, by_sinr, "d = {d}");
        }
    }

    #[test]
    fn singleton_below_noise_floor_is_infeasible() {
        // Signal 1/9; noise 1: SINR = 1/9 < 1.
        let params = SinrParams::new(1.0, 1.0).unwrap();
        let pos = [0.0_f64, 3.0];
        let s = DecaySpace::from_fn(2, |i, j| (pos[i] - pos[j]).abs().powi(2)).unwrap();
        let ls = LinkSet::new(&s, vec![Link::new(NodeId::new(0), NodeId::new(1))]).unwrap();
        let a = matrix(&s, &ls, &params);
        assert!(!a.noise_factor(LinkId::new(0)).is_finite());
        assert!(!a.is_feasible(&[LinkId::new(0)]));
        assert_eq!(a.feasibility_strength(&[LinkId::new(0)]), 0.0);
    }

    #[test]
    fn self_affectance_is_zero() {
        let (s, ls) = parallel_pair(5.0);
        let a = matrix(&s, &ls, &SinrParams::default());
        assert_eq!(a.affectance(LinkId::new(0), LinkId::new(0)), 0.0);
    }

    #[test]
    fn rearrangement_identity() {
        // sum_v a_S(v) == sum_v a_v(S) (both count every ordered pair).
        let (s, ls) = parallel_pair(4.0);
        let a = matrix(&s, &ls, &SinrParams::default());
        let set: Vec<LinkId> = ls.ids().collect();
        let sum_in: f64 = set.iter().map(|&v| a.in_affectance(&set, v)).sum();
        let sum_out: f64 = set.iter().map(|&v| a.out_affectance(v, &set)).sum();
        assert!((sum_in - sum_out).abs() < 1e-12);
    }

    #[test]
    fn k_feasibility_nests() {
        let (s, ls) = parallel_pair(20.0);
        let a = matrix(&s, &ls, &SinrParams::default());
        let ids: Vec<LinkId> = ls.ids().collect();
        let strength = a.feasibility_strength(&ids);
        assert!(strength > 1.0);
        assert!(a.is_k_feasible(&ids, strength * 0.999));
        assert!(!a.is_k_feasible(&ids, strength * 1.1));
    }

    #[test]
    fn empty_set_is_feasible_with_infinite_strength() {
        let (s, ls) = parallel_pair(5.0);
        let a = matrix(&s, &ls, &SinrParams::default());
        assert!(a.is_feasible(&[]));
        assert_eq!(a.feasibility_strength(&[]), f64::INFINITY);
    }

    #[test]
    fn sinr_with_no_interference_is_infinite_when_noiseless() {
        let (s, ls) = parallel_pair(5.0);
        let powers = PowerAssignment::unit().powers(&s, &ls).unwrap();
        let v = LinkId::new(0);
        let val = sinr(&s, &ls, &powers, &SinrParams::default(), &[v], v);
        assert!(val.is_infinite());
    }

    #[test]
    fn params_validation() {
        assert!(SinrParams::new(0.5, 0.0).is_err());
        assert!(SinrParams::new(1.0, -1.0).is_err());
        assert!(SinrParams::new(f64::NAN, 0.0).is_err());
        assert!(SinrParams::new(2.0, 0.5).is_ok());
    }

    #[test]
    fn capped_affectance_never_exceeds_one() {
        let (s, ls) = parallel_pair(1.5);
        let a = matrix(&s, &ls, &SinrParams::default());
        for w in ls.ids() {
            for v in ls.ids() {
                assert!(a.affectance(w, v) <= 1.0);
            }
        }
    }
}
