//! # beyond-geometry
//!
//! A from-scratch Rust reproduction of *Beyond Geometry: Towards Fully
//! Realistic Wireless Models* (Bodlaender & Halldórsson, PODC 2014,
//! arXiv:1402.5003): decay spaces and their parameters, SINR machinery,
//! capacity algorithms, hardness constructions, an indoor propagation
//! simulator, a slot-synchronous network simulator, and distributed
//! protocols.
//!
//! This facade re-exports the workspace crates under stable module names;
//! depend on the individual crates for finer-grained builds.
//!
//! | Module | Contents |
//! |---|---|
//! | [`core`] | decay spaces, metricity `ζ`, `φ`, quasi-metrics, dimensions, fading `γ`, independence/guards |
//! | [`sinr`] | links, powers, affectance, feasibility, partition lemmas |
//! | [`spaces`] | geometric/random/special/adversarial space generators |
//! | [`envsim`] | indoor propagation + RSSI measurement simulator |
//! | [`capacity`] | Algorithm 1, greedy baselines, exact optimum, amicability, scheduling |
//! | [`netsim`] | slot-synchronous SINR network simulator |
//! | [`engine`] | discrete-event engine: lazy million-node backends, churn, checkpointing |
//! | [`channel`] | time-varying gain fields: mobility, shadowing, fading, trace replay, ζ(t) monitoring |
//! | [`distributed`] | regret capacity game, randomized local broadcast (slot + event-driven) |
//! | [`scenario`] | declarative JSON scenario specs, metrics, golden-trace digests |
//!
//! # Quickstart
//!
//! ```
//! use beyond_geometry::prelude::*;
//!
//! // Simulate an office, measure its decay space, run capacity on it.
//! let scenario = OfficeConfig::default().build();
//! let zeta = metricity(&scenario.truth).zeta_at_least_one();
//! assert!(zeta > 1.0);
//! ```

pub use decay_capacity as capacity;
pub use decay_channel as channel;
pub use decay_core as core;
pub use decay_distributed as distributed;
pub use decay_engine as engine;
pub use decay_envsim as envsim;
pub use decay_netsim as netsim;
pub use decay_scenario as scenario;
pub use decay_sinr as sinr;
pub use decay_spaces as spaces;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use decay_capacity::{
        aggregation_tree, algorithm1, arrival_order, conflict_schedule_report, greedy_affectance,
        max_feasible_subset, max_weight_feasible_subset, online_capacity, run_auction,
        schedule_aggregation, schedule_by_capacity, weighted_greedy, ArrivalOrder, AuctionConfig,
        CapacityResult, OnlineRule, EXACT_CAPACITY_LIMIT, EXACT_WEIGHTED_LIMIT,
    };
    pub use decay_channel::{
        AdaptiveContention, FadingConfig, GainTrace, MetricityMonitor, MobilityConfig,
        MobilityModel, ShadowingConfig, TemporalAdapter, TemporalBackend, TemporalChannel,
        TraceChannel, ZetaSample,
    };
    pub use decay_core::{
        assouad_dimension_fit, fading_parameter, independence_dimension, metricity, phi_metricity,
        DecayError, DecaySpace, NodeId, QuasiMetric,
    };
    pub use decay_distributed::{
        adversarial_regret_game, regret_capacity_game, run_coloring, run_contention,
        run_contention_event, run_dominating_set, run_local_broadcast, run_local_broadcast_event,
        run_multi_broadcast, run_queueing, AdversarialConfig, BroadcastConfig, ColoringConfig,
        ContentionConfig, DominatingConfig, EventBroadcastConfig, EventContentionConfig,
        MultiBroadcastConfig, QueueingConfig, RegretConfig,
    };
    pub use decay_engine::{
        apply_directives, drive_controlled, drive_probed, drive_until, ChurnConfig, Controller,
        DecayBackend, DenseBackend, Directive, Engine, EngineConfig, EventBehavior, JamSchedule,
        LatencyModel, LazyBackend, NodeCtx, PauseCtx, Probe, PrrWindowSample, SlotAdapter,
        TiledBackend, Tunable, WindowedPrr,
    };
    pub use decay_envsim::{Device, FloorPlan, MeasurementModel, OfficeConfig, PropagationModel};
    pub use decay_netsim::{
        compare_decays, infer_decay_from_prr, run_probe_campaign, Action, FaultPlan, NodeBehavior,
        PrrTracker, ReceptionModel, Simulator, SlotContext,
    };
    pub use decay_scenario::{
        chrome_trace_json, runlog, AdaptiveSpec, BackendSpec, ChannelSpec, CompiledScenario,
        DigestProbe, MetricsProbe, MetricsReport, MobilitySpec, MonitorSpec, ProtocolSpec, RunLog,
        RunOptions, RunSession, ScenarioCache, ScenarioReport, ScenarioRunner, ScenarioSpec,
        SessionStep, TopologySpec, TraceDigest,
    };
    pub use decay_sinr::{
        inductive_independence, sample_feasible_sets, AffectanceMatrix, ConflictGraph, Link,
        LinkId, LinkSet, PowerAssignment, SinrParams,
    };
    pub use decay_spaces::{
        geometric_space, random_link_deployment, random_points, two_line_instance,
        unit_decay_instance, Graph,
    };
}
