//! Multi-message gossip broadcast surviving crash faults, with coloring
//! and contention resolution as warm-ups — the Section 3.3 protocol
//! family running on the slot-synchronous SINR simulator.
//!
//! ```text
//! cargo run --release --example resilient_gossip
//! ```

use beyond_geometry::distributed::run_multi_broadcast_with_faults;
use beyond_geometry::prelude::*;
use beyond_geometry::spaces::line_points;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 14;
    let space = geometric_space(&line_points(n, 1.0), 2.0)?;
    // Noise limits direct range, so distant nodes need relays.
    let params = SinrParams::new(1.0, 0.01)?;

    // 1. Distributed coloring: nodes agree on conflict-free colors.
    let coloring = run_coloring(
        &space,
        &SinrParams::default(),
        &ColoringConfig {
            f_max: 4.0,
            seed: 2,
            ..Default::default()
        },
    );
    println!(
        "coloring: Δ = {}, colors used = {}, slots = {}, proper = {}",
        coloring.max_degree, coloring.colors_used, coloring.slots, coloring.completed,
    );

    // 2. Contention resolution: every link delivers one packet.
    let (lspace, links, _) = random_link_deployment(10, 40.0, 2.6, 5)?;
    let powers = PowerAssignment::unit().powers(&lspace, &links)?;
    let aff = AffectanceMatrix::build(&lspace, &links, &powers, &SinrParams::default())?;
    let contention = run_contention(&aff, &ContentionConfig::default());
    println!(
        "contention: {} links delivered in {} slots ({} transmissions)",
        contention.delivered(),
        contention.slots_used,
        contention.transmissions,
    );

    // 3. Gossip under faults: two messages from opposite ends, two nodes
    //    crashed forever, two more down for the first 3000 slots.
    let sources = [NodeId::new(0), NodeId::new(n - 1)];
    let plan = FaultPlan::none()
        .with_crash(NodeId::new(4), 0)
        .with_outage(NodeId::new(7), 0, 3000);
    let report = run_multi_broadcast_with_faults(
        &space,
        &params,
        &sources,
        &MultiBroadcastConfig::default(),
        &plan,
    );
    println!(
        "gossip with faults: completed = {} in {} slots, coverage {:.2}",
        report.completed,
        report.slots,
        report.coverage(),
    );
    Ok(())
}
