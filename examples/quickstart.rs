//! Quickstart: build a decay space, inspect its parameters, and run the
//! paper's Algorithm 1 on a random link deployment.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use beyond_geometry::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A decay space: here geometric path loss over random points, the
    //    setting where the metricity zeta equals the path-loss alpha.
    let (space, links, _positions) = random_link_deployment(14, 80.0, 2.8, 42)?;
    println!("space: {space}");

    // 2. The paper's parameters.
    let m = metricity(&space);
    let p = phi_metricity(&space);
    let a = assouad_dimension_fit(&space, &[2.0, 4.0, 8.0]);
    println!(
        "zeta      = {:.3}   (paper: equals alpha = 2.8 in GEO-SINR)",
        m.zeta
    );
    println!("phi       = {:.3}   (paper: phi <= zeta)", p.phi);
    println!("assouad A = {:.3}   (fading space iff A < 1)", a.dimension);

    // 3. SINR machinery: uniform power, affectance, feasibility.
    let params = SinrParams::default();
    let powers = PowerAssignment::unit().powers(&space, &links)?;
    let aff = AffectanceMatrix::build(&space, &links, &powers, &params)?;
    let quasi = QuasiMetric::from_space_with_exponent(&space, m.zeta_at_least_one());

    // 4. Capacity: Algorithm 1 versus the general-metric greedy and the
    //    exact optimum.
    let alg1 = algorithm1(&space, &links, &quasi, &aff, None);
    let greedy = greedy_affectance(&space, &links, &aff, None);
    let all: Vec<LinkId> = links.ids().collect();
    let opt = max_feasible_subset(&aff, &all, EXACT_CAPACITY_LIMIT);
    println!(
        "capacity: optimum = {}, algorithm 1 = {}, greedy[30] = {}",
        opt.len(),
        alg1.size(),
        greedy.size()
    );
    assert!(aff.is_feasible(&alg1.selected));

    // 5. Schedule every link into feasible slots.
    let schedule = schedule_by_capacity(&aff, &all, |rem| {
        algorithm1(&space, &links, &quasi, &aff, Some(rem)).selected
    });
    println!(
        "scheduling: all {} links in {} feasible slots",
        schedule.scheduled(),
        schedule.len()
    );
    Ok(())
}
