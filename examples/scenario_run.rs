//! Run a declarative scenario from a JSON spec file.
//!
//! ```text
//! cargo run --release --example scenario_run                           # shipped demo spec
//! cargo run --release --example scenario_run -- scenarios/ring_announce_rayleigh.json
//! cargo run --release --example scenario_run -- my_spec.json --json    # machine-readable report
//! ```
//!
//! The same spec produces a bit-identical trace digest on every decay
//! backend and across checkpoint/resume cycles — this driver prints the
//! digest so you can pin it (see `tests/golden/`).

use beyond_geometry::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let as_json = args.iter().any(|a| a == "--json");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "scenarios/line_broadcast_storm.json".to_string());

    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read spec {path}: {e}"))?;
    let spec = ScenarioSpec::from_json_str(&text)?;
    println!("loaded {path}: scenario \"{}\"\n", spec.name);

    let runner = ScenarioRunner::new(spec)?;
    let report = runner.run()?;
    if as_json {
        print!("{}", report.to_json().pretty());
    } else {
        println!("{report}");
    }

    // The reproducibility contract in action: re-running on a different
    // backend leaves the digest untouched.
    let cross = runner.run_on(BackendSpec::Dense)?;
    assert_eq!(cross.digest, report.digest, "cross-backend digest drift");
    println!("\ncross-checked on the dense backend: digests identical");
    Ok(())
}
