//! Run a declarative scenario from a JSON spec file.
//!
//! ```text
//! cargo run --release --example scenario_run                           # shipped demo spec
//! cargo run --release --example scenario_run -- scenarios/drift_mobility_storm.json
//! cargo run --release --example scenario_run -- my_spec.json --json    # machine-readable report
//! cargo run --release --example scenario_run -- my_spec.json --metrics-json out.json
//! cargo run --release --example scenario_run -- my_spec.json --runlog run.runlog
//! cargo run --release --example scenario_run -- my_spec.json --flight-dump flight.txt
//! cargo run --release --features telemetry-timing --example scenario_run -- \
//!     my_spec.json --trace-out trace.json
//! ```
//!
//! The same spec produces a bit-identical trace digest on every decay
//! backend and across checkpoint/resume cycles — this driver prints the
//! digest so you can pin it (see `tests/golden/`). Output flags:
//!
//! - `--metrics-json <path>` writes the full JSON metrics report
//!   (latency histogram, PRR, ζ(t) series for monitored channels,
//!   counters) for downstream tooling.
//! - `--runlog <path>` streams the run as `decay-runlog-v1` NDJSON —
//!   one typed record per pause-grid sample; inspect with
//!   `runlog_cat`. The stream is bit-identical across backends and
//!   thread counts (default builds).
//! - `--trace-out <path>` writes per-shard phase spans as Chrome Trace
//!   Event JSON, loadable in Perfetto (`ui.perfetto.dev`) or
//!   `chrome://tracing`. Spans need `--features telemetry-timing`;
//!   without it the file holds an empty timeline.
//! - `--flight-dump <path>` writes the flight recorder's final ring
//!   buffers (always on run end; also on engine errors, where it is
//!   the post-mortem).

use beyond_geometry::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let as_json = args.iter().any(|a| a == "--json");
    const PATH_FLAGS: [&str; 4] = ["--metrics-json", "--runlog", "--trace-out", "--flight-dump"];
    let path_flag = |name: &str| -> Result<Option<String>, String> {
        args.iter()
            .position(|a| a == name)
            .map(|i| {
                args.get(i + 1)
                    .filter(|v| !v.starts_with("--"))
                    .cloned()
                    .ok_or(format!("{name} needs a file path argument"))
            })
            .transpose()
    };
    let metrics_path = path_flag("--metrics-json")?;
    let runlog_path = path_flag("--runlog")?;
    let trace_path = path_flag("--trace-out")?;
    let flight_path = path_flag("--flight-dump")?;
    let path = {
        let mut positional = Vec::new();
        let mut skip_next = false;
        for a in &args {
            if skip_next {
                skip_next = false;
                continue;
            }
            if PATH_FLAGS.contains(&a.as_str()) {
                skip_next = true;
            } else if !a.starts_with("--") {
                positional.push(a.clone());
            }
        }
        positional
            .into_iter()
            .next()
            .unwrap_or_else(|| "scenarios/line_broadcast_storm.json".to_string())
    };

    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read spec {path}: {e}"))?;
    let spec = ScenarioSpec::from_json_str(&text)?;
    println!("loaded {path}: scenario \"{}\"\n", spec.name);

    let runner = ScenarioRunner::new(spec)?;
    let mut runlog_file = runlog_path
        .as_ref()
        .map(std::fs::File::create)
        .transpose()
        .map_err(|e| format!("cannot create runlog file: {e}"))?;
    let mut flight_file = flight_path
        .as_ref()
        .map(std::fs::File::create)
        .transpose()
        .map_err(|e| format!("cannot create flight-dump file: {e}"))?;
    let mut spans = Vec::new();
    let report = runner.run_with_options(
        RunOptions {
            runlog: runlog_file
                .as_mut()
                .map(|f| f as &mut (dyn std::io::Write + Send)),
            flight_dump: flight_file
                .as_mut()
                .map(|f| f as &mut (dyn std::io::Write + Send)),
            trace_spans: trace_path.is_some().then_some(&mut spans),
            ..RunOptions::default()
        },
        &mut [],
    )?;
    if as_json {
        print!("{}", report.to_json().pretty());
    } else {
        println!("{report}");
    }
    if let Some(out) = metrics_path {
        std::fs::write(&out, report.metrics.to_json().pretty())
            .map_err(|e| format!("cannot write metrics to {out}: {e}"))?;
        println!("\nmetrics report written to {out}");
    }
    if let Some(out) = runlog_path {
        println!("runlog written to {out} ({} format)", runlog::RUNLOG_FORMAT);
    }
    if let Some(out) = flight_path {
        println!("flight-recorder dump written to {out}");
    }
    if let Some(out) = trace_path {
        std::fs::write(&out, chrome_trace_json(&spans))
            .map_err(|e| format!("cannot write trace to {out}: {e}"))?;
        if spans.is_empty() {
            println!("trace written to {out} (0 spans — rebuild with --features telemetry-timing)");
        } else {
            println!("trace written to {out} ({} spans)", spans.len());
        }
    }

    // The reproducibility contract in action: re-running on a different
    // backend leaves the digest untouched.
    let cross = runner.run_on(BackendSpec::Dense)?;
    assert_eq!(cross.digest, report.digest, "cross-backend digest drift");
    println!("\ncross-checked on the dense backend: digests identical");
    Ok(())
}
