//! Run a declarative scenario from a JSON spec file.
//!
//! ```text
//! cargo run --release --example scenario_run                           # shipped demo spec
//! cargo run --release --example scenario_run -- scenarios/drift_mobility_storm.json
//! cargo run --release --example scenario_run -- my_spec.json --json    # machine-readable report
//! cargo run --release --example scenario_run -- my_spec.json --metrics-json out.json
//! ```
//!
//! The same spec produces a bit-identical trace digest on every decay
//! backend and across checkpoint/resume cycles — this driver prints the
//! digest so you can pin it (see `tests/golden/`). `--metrics-json
//! <path>` additionally writes the full JSON metrics report (latency
//! histogram, PRR, ζ(t) series for monitored channels, counters) to a
//! file for downstream tooling.

use beyond_geometry::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let as_json = args.iter().any(|a| a == "--json");
    let metrics_path = args
        .iter()
        .position(|a| a == "--metrics-json")
        .map(|i| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .ok_or("--metrics-json needs a file path argument")
        })
        .transpose()?;
    let path = {
        let mut positional = Vec::new();
        let mut skip_next = false;
        for a in &args {
            if skip_next {
                skip_next = false;
                continue;
            }
            if a == "--metrics-json" {
                skip_next = true;
            } else if !a.starts_with("--") {
                positional.push(a.clone());
            }
        }
        positional
            .into_iter()
            .next()
            .unwrap_or_else(|| "scenarios/line_broadcast_storm.json".to_string())
    };

    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read spec {path}: {e}"))?;
    let spec = ScenarioSpec::from_json_str(&text)?;
    println!("loaded {path}: scenario \"{}\"\n", spec.name);

    let runner = ScenarioRunner::new(spec)?;
    let report = runner.run()?;
    if as_json {
        print!("{}", report.to_json().pretty());
    } else {
        println!("{report}");
    }
    if let Some(out) = metrics_path {
        std::fs::write(&out, report.metrics.to_json().pretty())
            .map_err(|e| format!("cannot write metrics to {out}: {e}"))?;
        println!("\nmetrics report written to {out}");
    }

    // The reproducibility contract in action: re-running on a different
    // backend leaves the digest untouched.
    let cross = runner.run_on(BackendSpec::Dense)?;
    assert_eq!(cross.digest, report.digest, "cross-backend digest drift");
    println!("\ncross-checked on the dense backend: digests identical");
    Ok(())
}
