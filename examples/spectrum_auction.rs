//! Secondary spectrum auction over a decay space: greedy winner
//! determination with critical-value payments ([38, 37] in the paper's
//! transfer list, carried to decay spaces by Observation 4.2).
//!
//! ```text
//! cargo run --release --example spectrum_auction
//! ```

use beyond_geometry::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Bidders are links in a random deployment; valuations grow with link
    // length (long links are hard to serve AND valuable — the interesting
    // tension).
    let (space, links, _) = random_link_deployment(12, 60.0, 2.8, 7)?;
    let powers = PowerAssignment::unit().powers(&space, &links)?;
    let aff = AffectanceMatrix::build(&space, &links, &powers, &SinrParams::default())?;
    let bids: Vec<f64> = links
        .ids()
        .map(|v| 1.0 + links.decay_of(&space, v).ln().max(0.0))
        .collect();

    for channels in [1usize, 2, 3] {
        let outcome = run_auction(&aff, &bids, &AuctionConfig { channels });
        println!("--- {channels} channel(s) ---");
        println!(
            "winners: {} of {}   welfare {:.2}   revenue {:.2}",
            outcome.winners.len(),
            links.len(),
            outcome.welfare,
            outcome.revenue(),
        );
        for (ch, set) in outcome.allocation.iter().enumerate() {
            let ids: Vec<String> = set.iter().map(|v| v.to_string()).collect();
            println!("  channel {ch}: [{}]", ids.join(", "));
        }
        for &w in &outcome.winners {
            println!(
                "  {} bids {:.2}, pays {:.2} (critical value)",
                w,
                bids[w.index()],
                outcome.payments[w.index()],
            );
        }
    }

    // Compare single-channel welfare against the exact optimum.
    let all: Vec<LinkId> = links.ids().collect();
    let opt = max_weight_feasible_subset(&aff, &all, &bids, EXACT_WEIGHTED_LIMIT);
    let opt_w: f64 = opt.iter().map(|v| bids[v.index()]).sum();
    let got = run_auction(&aff, &bids, &AuctionConfig { channels: 1 }).welfare;
    println!("\nexact 1-channel optimum: {opt_w:.2}; greedy auction achieves {got:.2}");
    Ok(())
}
