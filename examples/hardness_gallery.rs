//! A tour of the paper's adversarial constructions: what breaks, and what
//! the metricity parameters say about it.
//!
//! ```text
//! cargo run --release --example hardness_gallery
//! ```

use beyond_geometry::core::{assouad_dimension_fit, independence_at, zeta_upper_bound};
use beyond_geometry::prelude::*;
use beyond_geometry::spaces::{phi_gap_space, star_nodes, star_space, welzl_space};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("--- Theorem 3: unit-decay instances (capacity == MAX INDEPENDENT SET) ---");
    let g = Graph::gnp(14, 0.5, 3);
    let inst = unit_decay_instance(&g)?;
    let zeta = metricity(&inst.space).zeta;
    println!(
        "n = {}, zeta = {zeta:.3} (<= lg 2n = {:.3}), optimum capacity = MIS = {}",
        g.len(),
        (2.0 * g.len() as f64).log2(),
        inst.optimum()
    );
    let params = SinrParams::default();
    let powers = PowerAssignment::unit().powers(&inst.space, &inst.links)?;
    let aff = AffectanceMatrix::build(&inst.space, &inst.links, &powers, &params)?;
    let quasi = QuasiMetric::from_space_with_exponent(&inst.space, zeta.max(1.0));
    let alg = algorithm1(&inst.space, &inst.links, &quasi, &aff, None);
    println!(
        "algorithm 1 finds {} — a 2^zeta-ish gap is unavoidable here (Theorem 3)",
        alg.size()
    );

    println!(
        "\n--- Theorem 6: two-line instances (bounded growth, linear phi, still MIS-hard) ---"
    );
    let inst2 = two_line_instance(&g, 2.0, 0.25)?;
    let p = phi_metricity(&inst2.space);
    let a = assouad_dimension_fit(&inst2.space, &[2.0, 4.0, 8.0]);
    println!(
        "varphi = {:.1} (= O(n)), assouad fit = {:.2} (doubling), independence dim = {}",
        p.varphi,
        a.dimension,
        independence_dimension(&inst2.space).dimension()
    );
    println!("optimum capacity still equals MIS = {}", inst2.optimum());

    println!("\n--- Section 4.2: the phi-vs-zeta gap family ---");
    for q in [1e3, 1e6, 1e12] {
        let s = phi_gap_space(q);
        println!(
            "q = 1e{:>2}: varphi = {:.3} (bounded), zeta = {:.2} (grows like log q / log log q)",
            q.log10() as i32,
            phi_metricity(&s).varphi,
            metricity(&s).zeta
        );
    }

    println!("\n--- Section 3.4: the star (unbounded doubling dim, benign interference) ---");
    for k in [8usize, 64] {
        let r = 2.0;
        let s = star_space(k, r)?;
        let (_, near, far) = star_nodes(k);
        let mut nodes = vec![near];
        nodes.extend(far);
        let sub = s.restrict(&nodes)?;
        let fv = beyond_geometry::core::fading_value(&sub, NodeId::new(0), r);
        println!(
            "k = {k:>3}: interference at x_-1 = {:.4} vs signal {:.4} (ratio ~1/k)",
            fv.value / r,
            1.0 / r
        );
    }

    println!("\n--- Welzl's construction: doubling dim 1, unbounded independence ---");
    let w = welzl_space(10, 0.25);
    println!(
        "n = 12 nodes: independence w.r.t. v_-1 = {} (= n+1), zeta = {:.3}, zeta cap = {:.2}",
        independence_at(&w, NodeId::new(0)).dimension(),
        metricity(&w).zeta,
        zeta_upper_bound(&w)
    );
    Ok(())
}
