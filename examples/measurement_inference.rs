//! Decay-space inference from packet reception rates (paper Section 2.2:
//! decays "can also be inferred by packet reception rates").
//!
//! Pipeline: ground-truth space → Rayleigh-faded probe campaign → PRR
//! matrix → inverted decay estimates → compare parameters and capacity
//! decisions against the truth.
//!
//! ```text
//! cargo run --release --example measurement_inference
//! ```

use beyond_geometry::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ground truth: a random deployment, rescaled so that probe PRRs are
    // informative for the chosen noise floor (median decay ~ 1/noise).
    let (raw, links, _) = random_link_deployment(10, 40.0, 2.6, 21)?;
    let mut decays: Vec<f64> = raw.ordered_pairs().map(|(_, _, f)| f).collect();
    decays.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = decays[decays.len() / 2];
    let noise = 0.3;
    let truth = raw.scaled(1.0 / (median * noise));
    let params = SinrParams::new(1.0, noise)?;

    println!("truth: {truth}");
    println!("zeta(truth) = {:.3}\n", metricity(&truth).zeta);

    for rounds in [100usize, 1000, 5000] {
        let prr = run_probe_campaign(&truth, &params, ReceptionModel::Rayleigh, rounds, 1.0, 3);
        let outcome = infer_decay_from_prr(&prr, 1.0, &params)?;
        let report = compare_decays(&truth, &outcome.space, &outcome.unreliable_pairs());
        println!(
            "{rounds:>5} probes: mean |log10 err| {:.4}  corr {:.4}  zeta {:.3}  censored {}",
            report.mean_abs_log10_error,
            report.log_correlation,
            metricity(&outcome.space).zeta,
            outcome.censored.len(),
        );
        // Do capacity decisions transfer? Run the same greedy on both.
        let p = SinrParams::default();
        let powers = PowerAssignment::unit().powers(&truth, &links)?;
        let aff_truth = AffectanceMatrix::build(&truth, &links, &powers, &p)?;
        let aff_inf = AffectanceMatrix::build(&outcome.space, &links, &powers, &p)?;
        let sel_truth = greedy_affectance(&truth, &links, &aff_truth, None).selected;
        let sel_inf = greedy_affectance(&outcome.space, &links, &aff_inf, None).selected;
        let overlap = sel_truth.iter().filter(|v| sel_inf.contains(v)).count();
        println!(
            "       greedy capacity: truth {} links, inferred {} links, overlap {}",
            sel_truth.len(),
            sel_inf.len(),
            overlap,
        );
    }
    Ok(())
}
