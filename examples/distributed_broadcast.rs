//! Randomized local broadcast over three very different decay spaces:
//! free-space geometry, an indoor office, and a measured (noisy,
//! censored) reconstruction — the distributed-algorithm half of the
//! paper's program (Section 3).
//!
//! ```text
//! cargo run --release --example distributed_broadcast
//! ```

use beyond_geometry::core::fading_parameter;
use beyond_geometry::distributed::neighborhood_sizes;
use beyond_geometry::prelude::*;
use beyond_geometry::spaces::{grid_points, line_points};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = SinrParams::default();

    println!("--- geometric baselines ---");
    for (name, space, f_max) in [
        (
            "line  alpha=3",
            geometric_space(&line_points(16, 1.0), 3.0)?,
            8.0,
        ),
        (
            "grid  alpha=3",
            geometric_space(&grid_points(4, 1.0), 3.0)?,
            8.0,
        ),
    ] {
        report(name, &space, f_max, &params);
    }

    println!("\n--- indoor office (simulated measurement campaign) ---");
    let sc = OfficeConfig {
        rooms_x: 2,
        rooms_y: 2,
        motes_per_room: 3,
        seed: 7,
        ..Default::default()
    }
    .build();
    // Neighborhood = links up to ~3 rooms of path loss; pick a decay
    // budget between the median and max so neighborhoods are non-trivial.
    let f_max = 10f64.powf(7.0); // 70 dB path-loss budget
    report("office truth  ", &sc.truth, f_max, &params);
    report("office measured", &sc.measured.space, f_max, &params);
    println!("(the protocol needs no geometry — only the decay matrix)");
    Ok(())
}

fn report(name: &str, space: &DecaySpace, f_max: f64, params: &SinrParams) {
    let delta = neighborhood_sizes(space, f_max)
        .into_iter()
        .max()
        .unwrap_or(0);
    let gamma = fading_parameter(space, (f_max).min(4.0)).value;
    let out = run_local_broadcast(
        space,
        params,
        &BroadcastConfig {
            neighborhood_decay: f_max,
            seed: 11,
            max_slots: 200_000,
            ..Default::default()
        },
    );
    match out.completed_in {
        Some(slots) => println!(
            "{name}: Delta = {delta:>2}, gamma ~ {gamma:>6.2}, p = {:.3} -> complete in {slots} slots",
            out.probability
        ),
        None => println!(
            "{name}: Delta = {delta:>2}, gamma ~ {gamma:>6.2} -> incomplete ({:.1}% coverage)",
            100.0 * out.coverage
        ),
    }
}
