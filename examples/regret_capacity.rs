//! Distributed capacity by no-regret learning (the [14]/[1] family the
//! paper's Theorem 4 upgrades to `ζ^{O(1)}` guarantees in bounded-growth
//! decay spaces).
//!
//! Links independently learn transmit probabilities by multiplicative
//! weights; we watch throughput converge toward the centralized optimum.
//!
//! ```text
//! cargo run --release --example regret_capacity
//! ```

use beyond_geometry::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A congested deployment: 12 links of length 1-3 in a 25 m box.
    let (space, links, _) =
        beyond_geometry::spaces::bounded_length_deployment(12, 25.0, 1.0, 3.0, 3.0, 9)?;
    let params = SinrParams::default();
    let powers = PowerAssignment::unit().powers(&space, &links)?;
    let aff = AffectanceMatrix::build(&space, &links, &powers, &params)?;
    let all: Vec<LinkId> = links.ids().collect();
    let opt = max_feasible_subset(&aff, &all, EXACT_CAPACITY_LIMIT);
    println!(
        "centralized optimum: {} of {} links",
        opt.len(),
        links.len()
    );

    for rounds in [200usize, 1000, 5000] {
        let out = regret_capacity_game(
            &aff,
            &RegretConfig {
                rounds,
                seed: 17,
                ..Default::default()
            },
        );
        println!(
            "after {rounds:>5} rounds: avg throughput {:.2}, best feasible round {} ({}% of OPT)",
            out.converged_throughput,
            out.best_feasible.len(),
            (100.0 * out.best_feasible.len() as f64 / opt.len().max(1) as f64).round()
        );
    }

    // The learned probabilities are interpretable: links that made it into
    // the steady-state feasible pattern saturate near 1, blocked links
    // near the exploration floor.
    let out = regret_capacity_game(
        &aff,
        &RegretConfig {
            rounds: 5000,
            seed: 17,
            ..Default::default()
        },
    );
    let (mut on, mut off) = (0, 0);
    for p in &out.final_probabilities {
        if *p > 0.5 {
            on += 1;
        } else {
            off += 1;
        }
    }
    println!("steady state: {on} links mostly-on, {off} links mostly-off");
    Ok(())
}
