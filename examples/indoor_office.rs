//! Indoor office walkthrough: the paper's motivating scenario.
//!
//! Builds an office floor plan with attenuating walls, deploys motes,
//! simulates propagation (walls + correlated shadowing + hardware
//! offsets), "measures" the decay space the way a testbed would (RSSI
//! quantization, sensitivity censoring), and compares the geometric
//! fiction against decay-space reality.
//!
//! ```text
//! cargo run --release --example indoor_office
//! ```

use beyond_geometry::envsim::distance_decay_correlation;
use beyond_geometry::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4x2 office of 8 m rooms, 3 motes per room, some walls thick.
    let scenario = OfficeConfig {
        rooms_x: 4,
        rooms_y: 2,
        motes_per_room: 3,
        wall_loss_db: 8.0,
        directional_fraction: 0.25,
        seed: 2026,
        ..Default::default()
    }
    .build();
    println!(
        "office: {} motes, {} walls",
        scenario.len(),
        scenario.plan.walls().len()
    );

    // The headline experimental phenomenon: distance stops predicting
    // decay once walls and shadowing enter.
    let corr = distance_decay_correlation(&scenario.positions, &scenario.truth);
    println!("log-distance vs log-decay correlation: {corr:.3} (free space would be ~1.0)");

    // Yet the decay space itself stays perfectly usable:
    let zeta_truth = metricity(&scenario.truth).zeta;
    let zeta_measured = metricity(&scenario.measured.space).zeta;
    println!("zeta(truth) = {zeta_truth:.2}, zeta(measured) = {zeta_measured:.2}");
    println!(
        "measurement error = {:.2} dB over {} censored pairs",
        scenario.measurement_error_db(),
        scenario.measured.censored.len()
    );

    // Build links between random mote pairs in different rooms and
    // compare capacity on the measured space vs the ground truth.
    let n = scenario.len();
    let mut link_vec = Vec::new();
    for k in 0..8 {
        let s = (k * 5) % n;
        let r = (s + 7) % n;
        if s != r {
            link_vec.push(Link::new(NodeId::new(s), NodeId::new(r)));
        }
    }
    let links = LinkSet::new(&scenario.truth, link_vec)?;
    let params = SinrParams::new(1.0, 1e-9)?;
    for (name, space) in [
        ("truth", &scenario.truth),
        ("measured", &scenario.measured.space),
    ] {
        let powers = PowerAssignment::unit().powers(space, &links)?;
        let aff = AffectanceMatrix::build(space, &links, &powers, &params)?;
        let zeta = metricity(space).zeta_at_least_one();
        let quasi = QuasiMetric::from_space_with_exponent(space, zeta);
        let cap = algorithm1(space, &links, &quasi, &aff, None);
        println!(
            "capacity on {name:>8}: algorithm 1 selects {} of {} links",
            cap.size(),
            links.len()
        );
    }
    println!("(measured-space decisions track ground truth: the decay abstraction is robust)");
    Ok(())
}
