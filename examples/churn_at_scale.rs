//! Large-scale churn demo: event-driven local broadcast on a 250k-node
//! lazy decay space with nodes continuously leaving and rejoining, a
//! mid-run checkpoint serialized to bytes, and a resumed engine verified
//! against the original — all on a space whose dense matrix would be
//! half a terabyte.
//!
//! ```text
//! cargo run --release --example churn_at_scale
//! ```

use beyond_geometry::engine::{Checkpoint, ChurnConfig, Engine, LazyBackend};
use beyond_geometry::prelude::*;

const N: usize = 250_000;

/// α = 2 path loss on a unit-spaced line, evaluated on demand: the
/// engine never materializes the 250k × 250k decay matrix.
fn backend() -> LazyBackend {
    LazyBackend::from_fn(N, |i, j| {
        let d = (i as f64) - (j as f64);
        d * d
    })
    .with_neighbor_hint(|i, reach| {
        let w = reach.sqrt().ceil() as usize;
        (i.saturating_sub(w)..=(i + w).min(N - 1)).collect()
    })
}

fn config() -> EventBroadcastConfig {
    EventBroadcastConfig {
        neighborhood_decay: 4.0,
        probability: Some(0.004),
        reach_decay: Some(100.0),
        top_k: Some(4),
        churn: Some(ChurnConfig {
            interval: 1,
            leave_prob: 0.25,
            join_prob: 0.75,
        }),
        seed: 2024,
        ..Default::default()
    }
}

fn main() {
    let params = SinrParams::default();
    println!(
        "building a {N}-node lazy decay space (dense would be {:.0} GB) ...",
        (N as f64).powi(2) * 8.0 / 1e9
    );
    let (mut engine, required) =
        beyond_geometry::distributed::build_broadcast_engine(backend(), &params, &config())
            .expect("valid config");
    let required_pairs: usize = required.iter().map(Vec::len).sum();
    println!("local broadcast: {required_pairs} required (sender, neighbor) pairs, churn on\n");

    let mut snapshot_bytes: Option<Vec<u8>> = None;
    for phase in 1..=4u64 {
        let until = phase * 50;
        engine.run_until(until);
        let stats = engine.stats();
        println!(
            "tick {until:>4}: {:>9} events, {:>8} tx, {:>8} delivered, \
             {:>5} left / {:>5} rejoined, {:>6} queued",
            stats.events,
            stats.transmissions,
            stats.deliveries,
            stats.churn_leaves,
            stats.churn_joins,
            engine.queued_events(),
        );
        if phase == 2 {
            // Snapshot mid-run, through the byte codec (real persistence).
            let bytes = engine.checkpoint().to_bytes();
            println!("          checkpoint taken: {} bytes", bytes.len());
            snapshot_bytes = Some(bytes);
        }
    }

    // Resume the checkpoint in a fresh engine and verify it converges to
    // the exact same state as the engine that never stopped.
    let bytes = snapshot_bytes.expect("checkpoint taken at phase 2");
    let snapshot: Checkpoint<beyond_geometry::distributed::EventBroadcaster> =
        Checkpoint::from_bytes(&bytes).expect("decodes");
    let mut resumed = Engine::restore(backend(), snapshot).expect("restores");
    resumed.run_until(engine.now());
    assert_eq!(
        resumed.trace_hash(),
        engine.trace_hash(),
        "resumed run diverged from the uninterrupted one"
    );
    assert_eq!(resumed.stats(), engine.stats());
    println!(
        "\nresumed from byte checkpoint to tick {} -> bit-identical trace (hash {:#018x})",
        resumed.now(),
        resumed.trace_hash()
    );

    let covered: usize = required
        .iter()
        .enumerate()
        .map(|(u, rs)| {
            rs.iter()
                .filter(|&&z| {
                    engine
                        .behavior(z)
                        .has_heard(beyond_geometry::core::NodeId::new(u))
                })
                .count()
        })
        .sum();
    println!(
        "coverage after {} ticks of permanent churn: {:.1}% of {} pairs",
        engine.now(),
        100.0 * covered as f64 / required_pairs as f64,
        required_pairs
    );
}
