//! Large-scale churn demo: event-driven local broadcast on a 250k-node
//! lazy decay space with nodes continuously leaving and rejoining, a
//! mid-run checkpoint serialized to bytes, and a resumed engine verified
//! against the original — all on a space whose dense matrix would be
//! half a terabyte. Progress reporting rides the probe API: the phase
//! log is just a [`Probe`] on the drive loop's pause grid.
//!
//! ```text
//! cargo run --release --example churn_at_scale
//! EXAMPLES_QUICK=1 cargo run --release --example churn_at_scale   # CI-sized
//! ```

use beyond_geometry::engine::{Checkpoint, ChurnConfig, Engine, LazyBackend};
use beyond_geometry::prelude::*;

/// Logs one progress line per pause — the hand-rolled per-phase
/// printing this example once interleaved with its own drive loop.
struct PhaseLog;

impl Probe for PhaseLog {
    fn on_pause(&mut self, ctx: &PauseCtx<'_>) {
        println!(
            "tick {:>4}: {:>9} events, {:>8} tx, {:>8} delivered, \
             {:>5} left / {:>5} rejoined",
            ctx.tick,
            ctx.stats.events,
            ctx.stats.transmissions,
            ctx.stats.deliveries,
            ctx.stats.churn_leaves,
            ctx.stats.churn_joins,
        );
    }
}

/// α = 2 path loss on a unit-spaced line, evaluated on demand: the
/// engine never materializes the n × n decay matrix.
fn backend(n: usize) -> LazyBackend {
    LazyBackend::from_fn(n, |i, j| {
        let d = (i as f64) - (j as f64);
        d * d
    })
    .with_neighbor_hint(move |i, reach| {
        let w = reach.sqrt().ceil() as usize;
        (i.saturating_sub(w)..=(i + w).min(n - 1)).collect()
    })
}

fn config() -> EventBroadcastConfig {
    EventBroadcastConfig {
        neighborhood_decay: 4.0,
        probability: Some(0.004),
        reach_decay: Some(100.0),
        top_k: Some(4),
        churn: Some(ChurnConfig {
            interval: 1,
            leave_prob: 0.25,
            join_prob: 0.75,
        }),
        seed: 2024,
        ..Default::default()
    }
}

fn main() {
    let quick = std::env::var("EXAMPLES_QUICK").is_ok_and(|v| v == "1");
    let n: usize = if quick { 20_000 } else { 250_000 };
    let params = SinrParams::default();
    println!(
        "building a {n}-node lazy decay space (dense would be {:.0} GB) ...",
        (n as f64).powi(2) * 8.0 / 1e9
    );
    let (mut engine, required) =
        beyond_geometry::distributed::build_broadcast_engine(backend(n), &params, &config())
            .expect("valid config");
    let required_pairs: usize = required.iter().map(Vec::len).sum();
    println!("local broadcast: {required_pairs} required (sender, neighbor) pairs, churn on\n");

    // Two probed phases around a mid-run checkpoint: the PhaseLog probe
    // prints each 50-tick pause, and the byte-serialized snapshot is
    // restored below into a fresh engine.
    let mut log = PhaseLog;
    drive_probed(&mut engine, 100, 50, &mut [&mut log]);
    let bytes = engine.checkpoint().to_bytes();
    println!("          checkpoint taken: {} bytes", bytes.len());
    drive_probed(&mut engine, 200, 50, &mut [&mut log]);

    // Resume the checkpoint in a fresh engine and verify it converges to
    // the exact same state as the engine that never stopped.
    let snapshot: Checkpoint<beyond_geometry::distributed::EventBroadcaster> =
        Checkpoint::from_bytes(&bytes).expect("decodes");
    let mut resumed = Engine::restore(backend(n), snapshot).expect("restores");
    resumed.run_until(engine.now());
    assert_eq!(
        resumed.trace_hash(),
        engine.trace_hash(),
        "resumed run diverged from the uninterrupted one"
    );
    assert_eq!(resumed.stats(), engine.stats());
    println!(
        "\nresumed from byte checkpoint to tick {} -> bit-identical trace (hash {:#018x})",
        resumed.now(),
        resumed.trace_hash()
    );

    let covered: usize = required
        .iter()
        .enumerate()
        .map(|(u, rs)| {
            rs.iter()
                .filter(|&&z| {
                    engine
                        .behavior(z)
                        .has_heard(beyond_geometry::core::NodeId::new(u))
                })
                .count()
        })
        .sum();
    println!(
        "coverage after {} ticks of permanent churn: {:.1}% of {} pairs",
        engine.now(),
        100.0 * covered as f64 / required_pairs as f64,
        required_pairs
    );
}
