//! A drifting channel end to end: mobility + correlated shadowing +
//! block Rayleigh fading over a 5k-node line, observed entirely through
//! the composable probe API — live ζ(t) monitoring and windowed PRR as
//! plug-in probes on one shared drive loop — plus a bit-identical
//! gain-trace replay.
//!
//! ```text
//! cargo run --release --example channel_drift
//! EXAMPLES_QUICK=1 cargo run --release --example channel_drift   # CI-sized
//! ```
//!
//! What to look for in the output:
//!
//! 1. `ζ(t)` *moves* — the paper's metricity constant becomes a
//!    trajectory once the gain matrix drifts. The monitor is just a
//!    [`Probe`] now: no hand-rolled sampling loop.
//! 2. Per-window delivery yield swings as fades and mobility open and
//!    close links — the drift a lifetime average would flatten,
//!    captured by the [`WindowedPrr`] probe.
//! 3. The exported gain trace replays the small-scale run with the exact
//!    same trace hash: measured channels are replayable artifacts.

use beyond_geometry::prelude::*;
use rand::Rng;

/// Gossip behavior: listen, transmit at geometric intervals.
#[derive(Clone)]
struct Gossiper;

impl EventBehavior for Gossiper {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.listen();
        let gap = 1 + rand::Rng::gen_range(ctx.rng, 0..40u64);
        ctx.wake_in(gap);
    }
    fn on_wake(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.transmit(1.0, ctx.node.index() as u64);
        ctx.listen();
        let gap = 1 + ctx.rng.gen_range(0..40u64);
        ctx.wake_in(gap);
    }
}

fn line_backend(n: usize) -> LazyBackend {
    LazyBackend::from_fn(n, |i, j| ((i as f64) - (j as f64)).abs().powi(2))
}

fn stormy_channel(n: usize, block: u64) -> TemporalChannel {
    TemporalChannel::new(
        line_backend(n),
        beyond_geometry::spaces::line_points(n, 1.0),
        2.0,
        block,
    )
    .with_mobility(MobilityConfig {
        model: MobilityModel::RandomWaypoint {
            speed: 0.6,
            pause: 1,
        },
        seed: 9,
    })
    .with_shadowing(ShadowingConfig {
        sigma_db: 5.0,
        corr_dist: 25.0,
        time_corr: 0.8,
        seed: 4,
    })
    .with_fading(FadingConfig { seed: 11 })
}

fn run(n: usize, block: u64, horizon: u64) -> u64 {
    let backend = TemporalAdapter::new(stormy_channel(n, block));
    let config = EngineConfig {
        reach_decay: Some(64.0),
        top_k: Some(6),
        ..EngineConfig::default()
    };
    let behaviors = (0..n).map(|_| Gossiper).collect();
    let mut engine =
        Engine::new(backend, behaviors, SinrParams::default(), config, 7).expect("engine builds");

    // The whole observation story is two probes on one shared loop:
    // the ζ(t) monitor and the windowed-PRR tracker see the identical
    // pause stream the scenario runner's probes would.
    let window = 64;
    let mut monitor = MetricityMonitor::new(window, 24);
    let mut prr = WindowedPrr::new(n, window, 8);
    drive_probed(&mut engine, horizon, window, &mut [&mut monitor, &mut prr]);

    println!(
        "{n} nodes, coherence block {block}: {} events, {} deliveries",
        engine.stats().events,
        engine.stats().deliveries
    );
    println!("  ζ(t) trajectory (the static line would pin ζ = α = 2):");
    for s in monitor.samples() {
        println!(
            "    tick {:>5}: ζ = {:>7.3}, φ = {:>7.3}",
            s.tick, s.zeta, s.phi
        );
    }
    println!("  deliveries per {window}-tick window (drift the lifetime PRR hides):");
    let spark: Vec<String> = prr
        .samples()
        .iter()
        .map(|w| w.deliveries.to_string())
        .collect();
    println!("    [{}]", spark.join(", "));
    engine.trace_hash()
}

fn main() {
    let quick = std::env::var("EXAMPLES_QUICK").is_ok_and(|v| v == "1");
    // The headline run: 5k nodes never materialize a 25M-entry matrix,
    // and the channel drifts under them (CI shrinks it to smoke size).
    if quick {
        run(500, 32, 256);
    } else {
        run(5_000, 32, 512);
    }

    // Trace replay at demo scale: capture the generative channel,
    // round-trip it through JSON, and reproduce the run bit for bit.
    let n = 24;
    let horizon = 512u64;
    let channel = stormy_channel(n, 32);
    let trace = GainTrace::capture(&channel, horizon / 32 + 1);
    let json = trace.to_json_string();
    println!(
        "\nexported {} gain frames ({} bytes of JSON) for the {n}-node run",
        trace.frames().len(),
        json.len()
    );

    let run_over = |backend: TemporalAdapter| {
        let behaviors = (0..n).map(|_| Gossiper).collect();
        let mut engine = Engine::new(
            backend,
            behaviors,
            SinrParams::default(),
            EngineConfig::default(),
            7,
        )
        .expect("engine builds");
        engine.run_until(horizon);
        engine.trace_hash()
    };
    let original = run_over(TemporalAdapter::new(channel));
    let reimported = GainTrace::from_json_str(&json).expect("trace parses");
    let replayed = run_over(TemporalAdapter::new(TraceChannel::new(reimported)));
    assert_eq!(original, replayed, "trace replay must be bit-identical");
    println!("replayed from JSON: trace hash {original:#018x} reproduced bit-for-bit");
}
