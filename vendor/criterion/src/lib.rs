//! Offline stand-in for `criterion`.
//!
//! The container has no crates.io access, so this crate reimplements the
//! bench API surface the workspace uses — groups, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, the
//! `criterion_group!`/`criterion_main!` macros — with plain wall-clock
//! measurement: a warm-up iteration, then `sample_size` timed iterations
//! reporting mean time per iteration (and throughput when declared). No
//! statistics, outlier analysis, or HTML reports.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Names one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, e.g. `algorithm1/12`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Just a parameter, e.g. `12`.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Passed to the closure being benchmarked.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call outside the measurement.
        black_box(routine());
        #[allow(clippy::disallowed_methods)] // report-only harness timing
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = if bencher.iters > 0 {
            bencher.elapsed / (bencher.iters as u32)
        } else {
            Duration::ZERO
        };
        let mut line = format!("{}/{id}: {per_iter:?}/iter", self.name);
        if let Some(tp) = self.throughput {
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                match tp {
                    Throughput::Elements(n) => {
                        line.push_str(&format!(" ({:.0} elem/s)", n as f64 / secs));
                    }
                    Throughput::Bytes(n) => {
                        line.push_str(&format!(" ({:.0} B/s)", n as f64 / secs));
                    }
                }
            }
        }
        println!("{line}");
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Benchmarks `f` with an input value under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 5), &5u64, |b, &k| {
            b.iter(|| (0..100u64).map(|x| x * k).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(demo_benches, sample_bench);

    #[test]
    fn group_runner_runs() {
        demo_benches();
    }
}
