//! Offline stand-in for `serde_derive`.
//!
//! This container has no crates.io access, so the real serde cannot be
//! vendored. The sibling `serde` stub blanket-implements its marker
//! traits for every type; these derive macros therefore only need to
//! *accept* the `#[derive(Serialize, Deserialize)]` syntax (including
//! `#[serde(...)]` helper attributes) and emit nothing. Swapping the
//! real serde back in is a two-line change in the workspace manifest.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]`; the impl comes from the stub's
/// blanket implementation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]`; the impl comes from the stub's
/// blanket implementation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
