//! Offline stand-in for `serde`.
//!
//! The container that grows this repository has no crates.io access, so
//! the real serde cannot be used. This stub keeps every `use serde::...`
//! and `#[derive(Serialize, Deserialize)]` in the codebase compiling —
//! the traits are markers, blanket-implemented for all types, and the
//! derive macros (from the sibling `serde_derive` stub) emit nothing.
//!
//! Nothing actually serializes through this stub. Code that needs real
//! persistence in this environment uses a hand-rolled codec (see
//! `decay_engine`'s checkpoint byte format); code that only *declares*
//! serializability compiles unchanged and will serialize for real the
//! moment the workspace manifest points back at genuine serde.

/// Marker for serializable types (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types (blanket-implemented).
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Serialization-side items.
pub mod ser {
    pub use super::Serialize;
}

/// Deserialization-side items.
pub mod de {
    pub use super::Deserialize;

    /// Marker for owned-deserializable types (blanket-implemented).
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}
}

pub use serde_derive::{Deserialize, Serialize};
