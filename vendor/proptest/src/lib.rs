//! Offline stand-in for `proptest`.
//!
//! The container has no crates.io access, so this crate reimplements the
//! subset of proptest the workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! the [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! and `prop::collection::vec`. Cases are generated from a deterministic
//! per-test seed; there is no shrinking — a failure reports the case
//! number and message instead of a minimized input.

use std::fmt;
use std::ops::Range;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case ended without passing.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input; the case is skipped.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// The deterministic case generator (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x6A09_E667_F3BC_C909,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree;
/// `sample_value` directly produces one value.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// A strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// A strategy for `Vec`s of exactly `len` elements.
        pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// The strategy returned by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                (0..self.len)
                    .map(|_| self.element.sample_value(rng))
                    .collect()
            }
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines property tests. Accepts the real proptest surface the
/// workspace uses: an optional `#![proptest_config(...)]` header and
/// `fn name(pattern in strategy, ...) { body }` items with attributes.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                // Deterministic per-test base seed from the test name.
                let mut __base: u64 = 0xcbf29ce484222325;
                for __b in stringify!($name).bytes() {
                    __base ^= __b as u64;
                    __base = __base.wrapping_mul(0x100000001b3);
                }
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::new(
                        __base.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(__case as u64)),
                    );
                    $(let $pat = $crate::Strategy::sample_value(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest '{}' failed at case {}/{}: {}",
                                stringify!($name), __case, __config.cases, __msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), __l, __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = &$left;
        let __r = &$right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Skips the current case when its inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -3i32..3, f in 0.5f64..2.0) {
            prop_assert!(x < 10);
            prop_assert!((-3..3).contains(&y));
            prop_assert!((0.5..2.0).contains(&f), "f out of range: {f}");
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec(1.0f64..2.0, 8).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 8);
        }

        #[test]
        fn tuples_and_assume((a, b) in (0u64..100, 0u64..100)) {
            prop_assume!(a != b);
            prop_assert!(a < 100 && b < 100);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut r1 = super::TestRng::new(9);
        let mut r2 = super::TestRng::new(9);
        assert_eq!(
            (0..8).map(|_| r1.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| r2.next_u64()).collect::<Vec<_>>()
        );
    }
}
