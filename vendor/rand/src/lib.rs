//! Offline stand-in for `rand` 0.8.
//!
//! The container has no crates.io access, so this crate reimplements the
//! exact API surface the workspace uses — [`Rng`], [`RngCore`],
//! [`SeedableRng`], [`rngs::StdRng`], [`seq::SliceRandom`] — with a real
//! generator behind it (xoshiro256++, seeded via splitmix64). It is a
//! working PRNG, not a mock: draws are uniform and deterministic in the
//! seed, which is all the simulators and tests rely on. The *stream* of
//! values differs from genuine `StdRng` (ChaCha12), so swapping real
//! rand back in will change concrete simulation traces but no contracts.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced here).
pub struct Error(());

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand::Error")
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, fallibly.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with uniform range sampling (`Rng::gen_range`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Draws uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws from the standard distribution (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, RA>(&mut self, range: RA) -> T
    where
        T: SampleUniform,
        RA: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as StandardSample>::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` (expanded via splitmix64).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ in this stand-in (the real
    /// crate uses ChaCha12; same API, different stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..16).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..16).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn ranges_are_in_bounds_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(0..10);
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "counts {counts:?}");
        }
        for _ in 0..1000 {
            let f: f64 = rng.gen_range(2.5..3.5);
            assert!((2.5..3.5).contains(&f));
            let g: f64 = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&g));
            let i: u64 = rng.gen_range(5..=7);
            assert!((5..=7).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }

    #[test]
    fn dyn_rng_core_supports_rng_methods() {
        let mut rng = StdRng::seed_from_u64(6);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let u: f64 = dyn_rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&u));
    }
}
