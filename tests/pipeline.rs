//! End-to-end integration: floor plan → decay space → parameters →
//! capacity → scheduling → distributed protocols, across crates.

use beyond_geometry::core::{
    assouad_dimension_fit, fading_parameter, phi_metricity, zeta_upper_bound,
};
use beyond_geometry::envsim::distance_decay_correlation;
use beyond_geometry::prelude::*;

fn office_scenario() -> beyond_geometry::envsim::OfficeScenario {
    OfficeConfig {
        rooms_x: 3,
        rooms_y: 2,
        motes_per_room: 3,
        wall_loss_db: 8.0,
        seed: 99,
        ..Default::default()
    }
    .build()
}

#[test]
fn office_to_parameters_pipeline() {
    let sc = office_scenario();
    let m = metricity(&sc.truth);
    assert!(m.zeta > 1.0, "indoor zeta should exceed 1, got {}", m.zeta);
    assert!(m.zeta <= zeta_upper_bound(&sc.truth) + 1e-9);
    // phi <= zeta (Section 4.2).
    let p = phi_metricity(&sc.truth);
    assert!(p.varphi <= 2f64.powf(m.zeta) * (1.0 + 1e-9));
    // Quasi-metric at zeta satisfies the triangle inequality.
    let quasi = QuasiMetric::from_space_with_exponent(&sc.truth, m.zeta_at_least_one());
    assert!(quasi.triangle_violation() <= 1e-9);
    // Indoor decorrelation below free-space levels.
    let corr = distance_decay_correlation(&sc.positions, &sc.truth);
    assert!(corr < 0.97, "corr = {corr}");
}

#[test]
fn office_capacity_and_scheduling_pipeline() {
    let sc = office_scenario();
    let n = sc.len();
    // Links between motes across the office.
    let mut link_vec = Vec::new();
    for k in 0..10usize {
        let s = (3 * k + 1) % n;
        let r = (3 * k + 8) % n;
        if s != r {
            link_vec.push(Link::new(NodeId::new(s), NodeId::new(r)));
        }
    }
    let links = LinkSet::new(&sc.truth, link_vec).expect("valid links");
    let params = SinrParams::default();
    let powers = PowerAssignment::unit().powers(&sc.truth, &links).unwrap();
    let aff = AffectanceMatrix::build(&sc.truth, &links, &powers, &params).unwrap();
    let zeta = metricity(&sc.truth).zeta_at_least_one();
    let quasi = QuasiMetric::from_space_with_exponent(&sc.truth, zeta);

    // Every algorithm must return feasible sets.
    let a1 = algorithm1(&sc.truth, &links, &quasi, &aff, None);
    assert!(aff.is_feasible(&a1.selected));
    let gr = greedy_affectance(&sc.truth, &links, &aff, None);
    assert!(aff.is_feasible(&gr.selected));
    // Exact optimum dominates both.
    let all: Vec<LinkId> = links.ids().collect();
    let opt = max_feasible_subset(&aff, &all, EXACT_CAPACITY_LIMIT);
    assert!(opt.len() >= a1.size());
    assert!(opt.len() >= gr.size());
    // Scheduling covers everything in feasible slots.
    let sched = schedule_by_capacity(&aff, &all, |rem| {
        algorithm1(&sc.truth, &links, &quasi, &aff, Some(rem)).selected
    });
    assert_eq!(sched.scheduled() + sched.dropped.len(), all.len());
    for slot in &sched.slots {
        assert!(aff.is_feasible(slot));
    }
}

#[test]
fn office_broadcast_pipeline() {
    let sc = office_scenario();
    let report = run_local_broadcast(
        &sc.truth,
        &SinrParams::default(),
        &BroadcastConfig {
            neighborhood_decay: 1e7, // 70 dB budget
            seed: 3,
            max_slots: 300_000,
            ..Default::default()
        },
    );
    assert!(
        report.completed_in.is_some(),
        "broadcast incomplete at coverage {}",
        report.coverage
    );
    // Fading parameter of the office at a moderate scale is finite and
    // sane (it feeds the round-complexity analyses).
    let g = fading_parameter(&sc.truth, 1e4);
    assert!(g.value.is_finite());
}

#[test]
fn measured_space_supports_same_pipeline_as_truth() {
    let sc = office_scenario();
    for space in [&sc.truth, &sc.measured.space] {
        let m = metricity(space);
        assert!(m.zeta > 0.0);
        let a = assouad_dimension_fit(space, &[2.0, 4.0]);
        assert!(a.dimension >= 0.0);
        let quasi = QuasiMetric::from_space_with_exponent(space, m.zeta_at_least_one());
        assert!(quasi.triangle_violation() <= 1e-9);
    }
}

#[test]
fn regret_game_on_measured_office_links() {
    let sc = office_scenario();
    let n = sc.len();
    let link_vec: Vec<Link> = (0..6)
        .map(|k| Link::new(NodeId::new((2 * k) % n), NodeId::new((2 * k + 5) % n)))
        .collect();
    let links = LinkSet::new(&sc.measured.space, link_vec).unwrap();
    let params = SinrParams::default();
    let powers = PowerAssignment::unit()
        .powers(&sc.measured.space, &links)
        .unwrap();
    let aff = AffectanceMatrix::build(&sc.measured.space, &links, &powers, &params).unwrap();
    let out = regret_capacity_game(
        &aff,
        &RegretConfig {
            rounds: 800,
            seed: 5,
            ..Default::default()
        },
    );
    assert!(aff.is_feasible(&out.best_feasible));
    assert_eq!(out.success_history.len(), 800);
}
