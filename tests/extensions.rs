//! Cross-crate integration tests for the second-wave systems: reception
//! models and PRR inference (netsim), independence parameters (sinr),
//! online capacity / conflict graphs / auctions (capacity), and the new
//! distributed protocols, composed through the facade crate.

use beyond_geometry::distributed::{
    run_multi_broadcast_with_faults, AvailabilityModel, ContentionStrategy, JammingModel,
};
use beyond_geometry::prelude::*;
use beyond_geometry::spaces::line_points;

fn deployment(
    m: usize,
    alpha: f64,
    seed: u64,
) -> (DecaySpace, LinkSet, QuasiMetric, AffectanceMatrix) {
    let (space, links, _) =
        beyond_geometry::spaces::bounded_length_deployment(m, 30.0, 1.0, 3.0, alpha, seed).unwrap();
    let zeta = metricity(&space).zeta_at_least_one();
    let quasi = QuasiMetric::from_space_with_exponent(&space, zeta);
    let powers = PowerAssignment::unit().powers(&space, &links).unwrap();
    let aff = AffectanceMatrix::build(&space, &links, &powers, &SinrParams::default()).unwrap();
    (space, links, quasi, aff)
}

#[test]
fn prr_inference_preserves_capacity_decisions() {
    // Full measurement pipeline: truth -> probes -> inferred space ->
    // capacity algorithm agreement (the paper's promise that measured
    // decay spaces are algorithmically usable).
    let (raw, links, _, _) = deployment(8, 2.5, 31);
    let mut decays: Vec<f64> = raw.ordered_pairs().map(|(_, _, f)| f).collect();
    decays.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let truth = raw.scaled(1.0 / (decays[decays.len() / 2] * 0.3));
    let probe_params = SinrParams::new(1.0, 0.3).unwrap();
    let prr = run_probe_campaign(
        &truth,
        &probe_params,
        ReceptionModel::Rayleigh,
        4000,
        1.0,
        3,
    );
    let outcome = infer_decay_from_prr(&prr, 1.0, &probe_params).unwrap();
    let report = compare_decays(&truth, &outcome.space, &outcome.unreliable_pairs());
    assert!(report.mean_abs_log10_error < 0.1, "{report:?}");
    assert!(report.log_correlation > 0.9, "{report:?}");

    let p = SinrParams::default();
    let powers = PowerAssignment::unit().powers(&truth, &links).unwrap();
    let aff_truth = AffectanceMatrix::build(&truth, &links, &powers, &p).unwrap();
    let aff_inf = AffectanceMatrix::build(&outcome.space, &links, &powers, &p).unwrap();
    let sel_truth = greedy_affectance(&truth, &links, &aff_truth, None).selected;
    let sel_inf = greedy_affectance(&outcome.space, &links, &aff_inf, None).selected;
    // The inferred space must reproduce the truth's greedy selection size
    // within one link.
    assert!(
        (sel_truth.len() as i64 - sel_inf.len() as i64).abs() <= 1,
        "truth {} vs inferred {}",
        sel_truth.len(),
        sel_inf.len()
    );
}

#[test]
fn online_capacity_is_sandwiched_by_offline_bounds() {
    let (space, links, quasi, aff) = deployment(12, 3.0, 17);
    let all: Vec<LinkId> = links.ids().collect();
    let opt = max_feasible_subset(&aff, &all, EXACT_CAPACITY_LIMIT).len();
    for rule in [OnlineRule::GreedyFeasible, OnlineRule::BudgetedAdmission] {
        for order in [
            ArrivalOrder::ById,
            ArrivalOrder::DecreasingDecay,
            ArrivalOrder::Random { seed: 4 },
        ] {
            let arr = arrival_order(&space, &links, order);
            let res = online_capacity(&links, &quasi, &aff, &arr, rule);
            assert!(aff.is_feasible(&res.accepted), "{rule:?}/{order:?}");
            assert!(res.size() <= opt, "online beat the exact optimum");
            assert!(res.size() >= 1, "accepted nothing on {rule:?}/{order:?}");
        }
    }
}

#[test]
fn auction_welfare_is_bounded_by_weighted_optimum() {
    let (_, links, _, aff) = deployment(10, 2.5, 23);
    let all: Vec<LinkId> = links.ids().collect();
    let bids: Vec<f64> = (0..links.len()).map(|i| 1.0 + (i % 4) as f64).collect();
    let opt = max_weight_feasible_subset(&aff, &all, &bids, EXACT_WEIGHTED_LIMIT);
    let opt_w: f64 = opt.iter().map(|v| bids[v.index()]).sum();
    let out = run_auction(&aff, &bids, &AuctionConfig { channels: 1 });
    assert!(out.welfare <= opt_w + 1e-9, "auction beat the optimum");
    assert!(out.welfare > 0.0);
    assert!(out.revenue() <= out.welfare + 1e-9);
}

#[test]
fn conflict_graph_and_inductive_independence_compose() {
    let (space, links, _, aff) = deployment(12, 3.0, 29);
    let graph = ConflictGraph::from_affectance(&aff, 1.0);
    let ci = graph.c_independence();
    assert!(ci.c <= links.len());
    let order = links.ids_by_decay(&space);
    let sets = sample_feasible_sets(&aff, 25, 2);
    let rho = inductive_independence(&aff, &order, &sets);
    assert!(rho.is_finite() && rho >= 0.0);
    // Conflict-graph scheduling end to end.
    let report = conflict_schedule_report(&space, &links, &aff, 1.0);
    for slot in &report.repaired.slots {
        assert!(aff.is_feasible(slot));
    }
    let scheduled: usize = report.repaired.scheduled();
    assert_eq!(scheduled + report.repaired.dropped.len(), links.len());
}

#[test]
fn contention_resolution_meets_schedule_bound() {
    let (space, links, _, aff) = deployment(10, 3.0, 37);
    let all: Vec<LinkId> = links.ids().collect();
    let sched = schedule_by_capacity(&aff, &all, |rem| {
        greedy_affectance(&space, &links, &aff, Some(rem)).selected
    });
    let report = run_contention(
        &aff,
        &beyond_geometry::distributed::ContentionConfig {
            strategy: ContentionStrategy::Fixed { p: 0.1 },
            max_slots: 50_000,
            seed: 3,
        },
    );
    assert!(report.all_delivered);
    // Loose sanity bound: distributed completion within a few hundred
    // times the centralized schedule length (theory: O(T log n) whp).
    assert!(
        report.slots_used <= 500 * sched.len().max(1),
        "slots {} vs schedule {}",
        report.slots_used,
        sched.len()
    );
}

#[test]
fn coloring_and_gossip_share_a_space() {
    let space = geometric_space(&line_points(12, 1.0), 2.0).unwrap();
    let coloring = run_coloring(
        &space,
        &SinrParams::default(),
        &ColoringConfig {
            f_max: 4.0,
            seed: 3,
            ..Default::default()
        },
    );
    assert!(coloring.completed);
    let adj = beyond_geometry::distributed::mutual_neighbor_graph(&space, 4.0);
    assert!(beyond_geometry::distributed::is_proper_coloring(
        &adj,
        &coloring.colors
    ));
    let gossip = run_multi_broadcast(
        &space,
        &SinrParams::new(1.0, 0.01).unwrap(),
        &[NodeId::new(0), NodeId::new(11)],
        &MultiBroadcastConfig::default(),
    );
    assert!(gossip.completed);
}

#[test]
fn gossip_survives_crashes_of_non_sources() {
    let space = geometric_space(&line_points(12, 1.0), 2.0).unwrap();
    let plan = FaultPlan::none()
        .with_crash(NodeId::new(5), 0)
        .with_outage(NodeId::new(8), 0, 2000);
    let report = run_multi_broadcast_with_faults(
        &space,
        &SinrParams::new(1.0, 0.01).unwrap(),
        &[NodeId::new(0)],
        &MultiBroadcastConfig::default(),
        &plan,
    );
    assert!(report.completed);
    // The permanently crashed node learned nothing.
    assert_eq!(report.known_counts[5], 0);
    // The temporarily-down node recovered and learned the message.
    assert_eq!(report.known_counts[8], 1);
}

#[test]
fn crashed_source_blocks_completion() {
    let space = geometric_space(&line_points(8, 1.0), 2.0).unwrap();
    let plan = FaultPlan::none().with_crash(NodeId::new(0), 0);
    let report = run_multi_broadcast_with_faults(
        &space,
        &SinrParams::default(),
        &[NodeId::new(0)],
        &MultiBroadcastConfig {
            max_slots: 500,
            ..Default::default()
        },
        &plan,
    );
    assert!(!report.completed, "a dead source cannot spread its message");
}

#[test]
fn adversarial_regret_composes_with_capacity_ground_truth() {
    let (_, _, _, aff) = deployment(8, 3.0, 41);
    let out = adversarial_regret_game(
        &aff,
        &AdversarialConfig {
            jamming: JammingModel::Random {
                round_prob: 0.2,
                link_prob: 0.5,
            },
            availability: AvailabilityModel::Random { prob: 0.8 },
            ..Default::default()
        },
    );
    assert!(aff.is_feasible(&out.best_feasible));
    let all: Vec<LinkId> = (0..aff.len()).map(LinkId::new).collect();
    let opt = max_feasible_subset(&aff, &all, EXACT_CAPACITY_LIMIT).len();
    assert!(out.best_feasible.len() <= opt);
}

#[test]
fn rayleigh_netsim_thresholding_shape() {
    // End-to-end reproduction of the capture assumption: with a 3 dB
    // margin the Rayleigh PRR must clearly exceed the PRR at a -3 dB
    // margin (near-thresholding).
    let run = |d: f64| -> f64 {
        struct Pair;
        impl NodeBehavior for Pair {
            fn on_slot(&mut self, ctx: &mut SlotContext<'_>) -> Action {
                match ctx.node.index() {
                    0 | 2 => Action::Transmit {
                        power: 1.0,
                        message: ctx.node.index() as u64,
                    },
                    _ => Action::Listen,
                }
            }
        }
        let pos = [(0.0, 0.0), (1.0, 0.0), (1.0 + d, 0.0)];
        let space = geometric_space(&pos, 2.0).unwrap();
        let mut sim = Simulator::new(
            space,
            (0..3).map(|_| Pair).collect(),
            SinrParams::default(),
            5,
        )
        .unwrap();
        sim.set_reception_model(ReceptionModel::Rayleigh);
        let mut hits = 0;
        for _ in 0..2000 {
            hits += sim
                .step()
                .deliveries
                .iter()
                .filter(|dv| dv.from == NodeId::new(0) && dv.to == NodeId::new(1))
                .count();
        }
        hits as f64 / 2000.0
    };
    let low = run(0.707); // margin ~ -3 dB
    let high = run(1.41); // margin ~ +3 dB
    assert!(low < 0.45, "low-margin PRR {low}");
    assert!(high > 0.55, "high-margin PRR {high}");
}
