//! Smoke test: every registered experiment runs and none reports a
//! violated claim. This is the executable version of EXPERIMENTS.md.

use decay_bench::experiments;

#[test]
fn all_experiments_run_without_violations() {
    for exp in experiments::all() {
        let table = (exp.run)();
        assert_eq!(table.id, exp.id);
        assert!(!table.rows.is_empty(), "{} produced no rows", exp.id);
        assert!(
            !table.verdict.contains("VIOLATED"),
            "{} reports a violation: {}",
            exp.id,
            table.verdict
        );
        // Tables render and serialize.
        assert!(!table.to_string().is_empty());
        assert!(table.to_csv().lines().count() == table.rows.len() + 1);
    }
}

#[test]
fn experiment_ids_are_unique() {
    let mut ids: Vec<&str> = experiments::all().iter().map(|e| e.id).collect();
    let before = ids.len();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), before);
}
