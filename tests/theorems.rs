//! Integration tests pinning the paper's theorem-level guarantees across
//! crate boundaries.

use beyond_geometry::capacity::amicable_core;
use beyond_geometry::core::{assouad_dimension_fit, fading_parameter, theorem2_bound};
use beyond_geometry::prelude::*;
use beyond_geometry::sinr::{is_link_set_separated, signal_strengthen, sparsify_feasible};
use beyond_geometry::spaces::{grid_points, line_points};

fn geo_instance(alpha: f64, seed: u64) -> (DecaySpace, LinkSet, QuasiMetric, AffectanceMatrix) {
    let (space, links, _) =
        beyond_geometry::spaces::bounded_length_deployment(12, 30.0, 1.0, 3.0, alpha, seed)
            .unwrap();
    let zeta = metricity(&space).zeta_at_least_one();
    let quasi = QuasiMetric::from_space_with_exponent(&space, zeta);
    let powers = PowerAssignment::unit().powers(&space, &links).unwrap();
    let aff = AffectanceMatrix::build(&space, &links, &powers, &SinrParams::default()).unwrap();
    (space, links, quasi, aff)
}

#[test]
fn proposition1_transfer_is_exact() {
    // Capacity decisions on D equal decisions on the quasi-metric
    // reconstruction of D at exponent zeta.
    for seed in 0..4u64 {
        let (space, links, quasi, aff) = geo_instance(2.5, seed);
        let rebuilt = quasi.to_decay_space(quasi.zeta());
        let powers = PowerAssignment::unit().powers(&rebuilt, &links).unwrap();
        let aff2 =
            AffectanceMatrix::build(&rebuilt, &links, &powers, &SinrParams::default()).unwrap();
        let quasi2 = QuasiMetric::from_space_with_exponent(&rebuilt, quasi.zeta());
        let r1 = algorithm1(&space, &links, &quasi, &aff, None);
        let r2 = algorithm1(&rebuilt, &links, &quasi2, &aff2, None);
        assert_eq!(r1.selected, r2.selected, "seed {seed}");
    }
}

#[test]
fn theorem2_bound_on_fading_grid() {
    let space = geometric_space(&grid_points(4, 1.0), 3.0).unwrap();
    let fit = assouad_dimension_fit(&space, &[2.0, 4.0, 8.0, 16.0]);
    assert!(fit.dimension < 1.0, "grid at alpha 3 should be fading");
    let bound = theorem2_bound(fit.constant.max(1.0), fit.dimension).unwrap();
    for r in [1.0, 2.0, 4.0, 8.0] {
        let g = fading_parameter(&space, r);
        assert!(g.value <= bound, "gamma({r}) = {} > bound {bound}", g.value);
    }
}

#[test]
fn lemma_pipeline_b1_b2_b3() {
    // Strengthen -> separated -> partitioned: the full Lemma 4.1 chain.
    for alpha in [2.0, 3.0] {
        let (_space, links, quasi, aff) = geo_instance(alpha, 7);
        let all: Vec<LinkId> = links.ids().collect();
        let viable: Vec<LinkId> = all
            .iter()
            .copied()
            .filter(|&v| aff.noise_factor(v).is_finite())
            .collect();
        // B.1: classes meet the strength target.
        let strength = std::f64::consts::E.powi(2);
        let classes = signal_strengthen(&aff, &viable, strength).unwrap();
        for class in &classes {
            assert!(aff.is_k_feasible(class, strength));
            // B.2: such classes are 1/zeta-separated.
            assert!(is_link_set_separated(
                &quasi,
                &links,
                class,
                1.0 / quasi.zeta()
            ));
        }
        // 4.1: full sparsification gives zeta-separated classes.
        let feasible: Vec<LinkId> = {
            let g = greedy_affectance(&_space, &links, &aff, None);
            g.selected
        };
        let sparse = sparsify_feasible(&aff, &quasi, &links, &feasible, 1.0).unwrap();
        let total: usize = sparse.iter().map(Vec::len).sum();
        assert_eq!(total, feasible.len());
        for class in &sparse {
            assert!(is_link_set_separated(&quasi, &links, class, quasi.zeta()));
        }
    }
}

#[test]
fn theorem4_core_is_lightly_affected_by_everyone() {
    let (space, links, quasi, aff) = geo_instance(3.0, 11);
    let feasible = greedy_affectance(&space, &links, &aff, None).selected;
    let all: Vec<LinkId> = links.ids().collect();
    let rep = amicable_core(&space, &links, &quasi, &aff, &feasible, &all, 1.0).unwrap();
    // Constant c = (1 + 2e^2) D with D <= 6 in the plane (kissing number).
    let cap = (1.0 + 2.0 * std::f64::consts::E.powi(2)) * 6.0;
    assert!(rep.worst_out_affectance <= cap);
    assert!(rep.shrinkage.is_finite());
}

#[test]
fn theorem3_and_6_instances_are_mis_equivalent() {
    let g = Graph::gnp(10, 0.4, 13);
    let mis = g.max_independent_set().len();
    for inst in [
        unit_decay_instance(&g).unwrap(),
        two_line_instance(&g, 2.0, 0.25).unwrap(),
    ] {
        let powers = PowerAssignment::unit()
            .powers(&inst.space, &inst.links)
            .unwrap();
        let aff =
            AffectanceMatrix::build(&inst.space, &inst.links, &powers, &SinrParams::default())
                .unwrap();
        let all: Vec<LinkId> = inst.links.ids().collect();
        let cap = max_feasible_subset(&aff, &all, EXACT_CAPACITY_LIMIT);
        assert_eq!(cap.len(), mis, "capacity must equal MIS");
    }
}

#[test]
fn algorithm1_beats_trivial_lower_bound_on_lines() {
    // On well-separated parallel links Algorithm 1 takes everything; as
    // density doubles its output degrades gracefully, never to zero.
    for links_count in [4usize, 8, 16] {
        let mut pos = Vec::new();
        for i in 0..links_count {
            pos.push((i as f64 * 4.0, 0.0));
            pos.push((i as f64 * 4.0 + 1.0, 0.0));
        }
        let space = geometric_space(&pos, 3.0).unwrap();
        let link_vec: Vec<Link> = (0..links_count)
            .map(|i| Link::new(NodeId::new(2 * i), NodeId::new(2 * i + 1)))
            .collect();
        let links = LinkSet::new(&space, link_vec).unwrap();
        let zeta = metricity(&space).zeta_at_least_one();
        let quasi = QuasiMetric::from_space_with_exponent(&space, zeta);
        let powers = PowerAssignment::unit().powers(&space, &links).unwrap();
        let aff = AffectanceMatrix::build(&space, &links, &powers, &SinrParams::default()).unwrap();
        let res = algorithm1(&space, &links, &quasi, &aff, None);
        assert!(
            res.size() * 4 >= links_count,
            "selected {} of {links_count}",
            res.size()
        );
    }
}

#[test]
fn line_alpha_one_is_not_fading_but_line_alpha_three_is() {
    let thin = geometric_space(&line_points(24, 1.0), 0.8).unwrap();
    let thick = geometric_space(&line_points(24, 1.0), 3.0).unwrap();
    assert!(!beyond_geometry::core::is_fading_space(&thin));
    assert!(beyond_geometry::core::is_fading_space(&thick));
}
